//! EagleEye: a from-scratch Rust reproduction of the ASPLOS'24 paper
//! "EagleEye: Nanosatellite constellation design for high-coverage,
//! high-resolution sensing" (Cheng, Denby, McCleary, Lucia).
//!
//! This facade crate re-exports the workspace under one roof:
//!
//! * [`core`] — clustering, actuation-aware scheduling, coverage
//!   evaluation (the paper's contribution).
//! * [`ilp`] — the MILP solver substrate (simplex + branch-and-bound).
//! * [`orbit`] — TLEs, J2/SGP4 propagation, ground tracks, layouts.
//! * [`geo`] — geodesy, great circles, tangent frames, spatial index.
//! * [`sim`] — energy, battery, and radio-link models.
//! * [`datasets`] — the four synthetic evaluation workloads.
//! * [`detect`] — the analytic ML detector behaviour model.
//! * [`obs`] — opt-in metrics/tracing (`EAGLEEYE_TRACE=1`).
//! * [`harden`] — crash-safe run layer: checkpoint/resume, deadline
//!   watchdog with anytime degradation, supervised retry/quarantine,
//!   and the `EAGLEEYE_CRASH` fault-injection hook.
//!
//! See the repository README for a walkthrough, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Example
//!
//! ```no_run
//! use eagleeye::core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
//! use eagleeye::datasets::Workload;
//!
//! let ships = Workload::ShipDetection.generate_scaled(0.1, 7_200.0, 7);
//! let eval = CoverageEvaluator::new(&ships, CoverageOptions::default());
//! let report = eval.evaluate(&ConstellationConfig::eagleeye(2, 1))?;
//! println!("{:.1}% coverage", 100.0 * report.coverage_fraction());
//! # Ok::<(), eagleeye::core::CoreError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use eagleeye_core as core;
pub use eagleeye_datasets as datasets;
pub use eagleeye_detect as detect;
pub use eagleeye_geo as geo;
pub use eagleeye_harden as harden;
pub use eagleeye_ilp as ilp;
pub use eagleeye_obs as obs;
pub use eagleeye_orbit as orbit;
pub use eagleeye_sim as sim;
