//! `eagleeye` — command-line front end for the EagleEye constellation
//! library.
//!
//! Subcommands:
//!
//! * `coverage` — run the coverage evaluator on a workload/configuration.
//! * `schedule` — schedule a synthetic frame and print the capture plan.
//! * `energy`   — per-orbit energy budget for a satellite role.
//! * `orbit`    — print a ground track from the paper's orbit (or a TLE).
//! * `dataset`  — generate a workload and print summary statistics.
//!
//! Run `eagleeye help` for usage.

use eagleeye::core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, HardenOptions,
};
use eagleeye::core::schedule::{
    FollowerState, GreedyScheduler, IlpScheduler, Scheduler, SchedulingProblem, TaskSpec,
};
use eagleeye::core::SensingSpec;
use eagleeye::datasets::Workload;
use eagleeye::harden::{CheckpointSpec, Deadline};
use eagleeye::obs::Metrics;
use eagleeye::orbit::{GroundTrack, J2Propagator, Sgp4Propagator, Tle};
use eagleeye::sim::{simulate_orbit, ActivityProfile, PowerProfile};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
eagleeye — mixed-resolution leader-follower constellation toolkit

USAGE:
  eagleeye coverage [--workload W] [--config C] [--sats N] [--followers K]
                    [--hours H] [--scale F] [--seed S] [--recall R] [--planes P]
                    [--threads T] [--checkpoint PATH [--resume] [--ckpt-cadence N]]
                    [--deadline SECONDS]
  eagleeye schedule [--targets N] [--followers K] [--seed S] [--solver ilp|greedy]
  eagleeye energy   [--role leader|follower|baseline|mix] [--tile-factor F]
  eagleeye orbit    [--hours H] [--step SECONDS] [--sgp4]
  eagleeye dataset  [--workload W] [--scale F] [--seed S]
  eagleeye help

WORKLOADS: ships | planes | lakes166k | lakes1m4
CONFIGS:   eagleeye | low-res | high-res | mix-camera";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "coverage" => cmd_coverage(&opts),
        "schedule" => cmd_schedule(&opts),
        "energy" => cmd_energy(&opts),
        "orbit" => cmd_orbit(&opts),
        "dataset" => cmd_dataset(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{a}`"));
        };
        match key {
            // Boolean flags.
            "sgp4" | "resume" => {
                map.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                map.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(map)
}

fn get_f64(o: &Flags, key: &str, default: f64) -> Result<f64, String> {
    match o.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: `{v}` is not a number")),
        None => Ok(default),
    }
}

fn get_usize(o: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match o.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: `{v}` is not an integer")),
        None => Ok(default),
    }
}

fn get_workload(o: &Flags) -> Result<Workload, String> {
    match o.get("workload").map(String::as_str).unwrap_or("ships") {
        "ships" => Ok(Workload::ShipDetection),
        "planes" => Ok(Workload::AirplaneTracking),
        "lakes166k" => Ok(Workload::LakeMonitoring166K),
        "lakes1m4" => Ok(Workload::LakeMonitoring1M4),
        other => Err(format!("unknown workload `{other}`")),
    }
}

fn cmd_coverage(o: &Flags) -> Result<(), String> {
    let workload = get_workload(o)?;
    let sats = get_usize(o, "sats", 4)?;
    let followers = get_usize(o, "followers", 1)?;
    let hours = get_f64(o, "hours", 2.0)?;
    let scale = get_f64(o, "scale", 0.3)?.clamp(1e-4, 1.0);
    let seed = get_usize(o, "seed", 7)? as u64;
    let recall = get_f64(o, "recall", 1.0)?;
    let planes = get_usize(o, "planes", 1)?;
    let threads = get_usize(o, "threads", 1)?;
    let deadline_s = get_f64(o, "deadline", 0.0)?;

    let config = match o.get("config").map(String::as_str).unwrap_or("eagleeye") {
        "eagleeye" => {
            let groups = (sats / (followers + 1)).max(1);
            ConstellationConfig::eagleeye(groups, followers)
        }
        "low-res" => ConstellationConfig::LowResOnly { satellites: sats },
        "high-res" => ConstellationConfig::HighResOnly { satellites: sats },
        "mix-camera" => ConstellationConfig::MixCamera {
            satellites: sats,
            compute_time_s: get_f64(o, "compute", 1.4)?,
        },
        other => return Err(format!("unknown config `{other}`")),
    };

    let targets = workload.generate_scaled(scale, hours * 3600.0, seed);
    let metrics = Metrics::from_env();
    let options = CoverageOptions {
        duration_s: hours * 3600.0,
        seed,
        recall,
        orbital_planes: planes,
        threads,
        metrics: metrics.clone(),
        ..CoverageOptions::default()
    };
    let eval = CoverageEvaluator::new(&targets, options);

    // --checkpoint / --deadline route through the crash-safe run layer
    // (eagleeye-harden); without them the plain evaluator runs.
    let report = if o.contains_key("checkpoint") || deadline_s > 0.0 {
        let mut harden = HardenOptions::new();
        if let Some(path) = o.get("checkpoint") {
            let mut spec = CheckpointSpec::new(path, get_usize(o, "ckpt-cadence", 1)?);
            spec.resume = o.contains_key("resume");
            harden.checkpoint = Some(spec);
        }
        if deadline_s > 0.0 {
            harden.deadline = Deadline::after(std::time::Duration::from_secs_f64(deadline_s));
        }
        let out = eval
            .evaluate_hardened(&config, &harden)
            .map_err(|e| e.to_string())?;
        for q in &out.quarantined {
            eprintln!(
                "warning: leader pass {} quarantined after {} attempts: {}",
                q.item, q.attempts, q.message
            );
        }
        if out.resumed_passes > 0 {
            eprintln!(
                "resumed {} of {} leader passes from checkpoint",
                out.resumed_passes, out.report.leader_passes_total
            );
        }
        out.report
    } else {
        eval.evaluate(&config).map_err(|e| e.to_string())?
    };
    if let Err(e) = eagleeye::obs::export::write_run("eagleeye", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
    println!(
        "workload:  {} ({} targets at scale {scale})",
        workload.label(),
        targets.len()
    );
    println!(
        "config:    {} ({} satellites)",
        config.label(),
        config.total_satellites()
    );
    println!("horizon:   {hours} h");
    println!(
        "coverage:  {:.2}% of targets ({} of {}); value-weighted {:.2}%",
        100.0 * report.coverage_fraction(),
        report.captured,
        report.total,
        100.0 * report.value_fraction()
    );
    println!(
        "captures:  {} commanded across {} scheduler calls (mean {:.2} ms)",
        report.captures_commanded,
        report.scheduler_calls,
        report.mean_scheduler_latency().as_secs_f64() * 1e3
    );
    if report.degraded {
        println!(
            "degraded:  stopped early with {:.0}% of leader passes merged ({} of {})",
            100.0 * report.completion_fraction(),
            report.leader_passes_completed,
            report.leader_passes_total
        );
    }
    // A fully deterministic one-line digest (no wall-clock fields) so
    // cross-process runs can be compared bit-for-bit.
    println!(
        "digest:    captured={} total={} value_bits={:016x} frames={} commanded={} \
         sched_calls={} ilp_nodes={} degraded={} passes={}/{}",
        report.captured,
        report.total,
        report.captured_value.to_bits(),
        report.frames_processed,
        report.captures_commanded,
        report.scheduler_calls,
        report.ilp_nodes_explored,
        report.degraded,
        report.leader_passes_completed,
        report.leader_passes_total
    );
    Ok(())
}

fn cmd_schedule(o: &Flags) -> Result<(), String> {
    let n = get_usize(o, "targets", 8)?;
    let followers = get_usize(o, "followers", 1)?;
    let seed = get_usize(o, "seed", 7)? as u64;

    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let r = (seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 40503)) % 10_000;
            TaskSpec::new(
                (r % 170) as f64 * 1_000.0 - 85_000.0,
                ((r / 170) % 110) as f64 * 1_000.0,
                0.5 + (r % 50) as f64 / 100.0,
            )
        })
        .collect();
    let fs: Vec<FollowerState> = (0..followers.max(1))
        .map(|k| FollowerState::at_start(-100_000.0 - 20_000.0 * k as f64))
        .collect();
    let problem = SchedulingProblem::new(SensingSpec::paper_default(), tasks, fs)
        .map_err(|e| e.to_string())?;

    let schedule = match o.get("solver").map(String::as_str).unwrap_or("ilp") {
        "ilp" => IlpScheduler::default().schedule(&problem),
        "greedy" => GreedyScheduler.schedule(&problem),
        other => return Err(format!("unknown solver `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    schedule.validate(&problem).map_err(|e| e.to_string())?;

    println!(
        "{} of {} targets captured (value {:.2})",
        schedule.captured_count(),
        n,
        schedule.total_value
    );
    for (f, seq) in schedule.sequences.iter().enumerate() {
        for cap in seq {
            let t = &problem.tasks()[cap.task];
            println!(
                "  follower {f}: t={:+8.2}s  target {:>3} at ({:+9.0}, {:+9.0}) m  value {:.2}",
                cap.time_s, cap.task, t.point.cross_m, t.point.along_m, t.value
            );
        }
    }
    Ok(())
}

fn cmd_energy(o: &Flags) -> Result<(), String> {
    let tile_factor = get_f64(o, "tile-factor", 1.0)?;
    let activity = match o.get("role").map(String::as_str).unwrap_or("leader") {
        "leader" => ActivityProfile::leader_default(tile_factor),
        "follower" => ActivityProfile::follower_default(400.0, 3.0),
        "baseline" => ActivityProfile::baseline_default(tile_factor),
        "mix" => ActivityProfile::mix_camera_default(tile_factor, 200.0, 3.0),
        other => return Err(format!("unknown role `{other}`")),
    };
    let r = simulate_orbit(&PowerProfile::cubesat_3u(), &activity, 0.62, 5_640.0);
    let s = r.subsystems;
    println!("harvested: {:>8.0} J/orbit", r.harvested_j);
    println!("camera:    {:>8.0} J", s.camera_j);
    println!("adacs:     {:>8.0} J", s.adacs_j);
    println!("compute:   {:>8.0} J", s.compute_j);
    println!("tx:        {:>8.0} J", s.tx_j);
    println!("idle:      {:>8.0} J", s.idle_j);
    println!(
        "total:     {:>8.0} J ({:.1}% of harvest) -> {}",
        s.total_j(),
        100.0 * r.normalized_consumption(),
        if r.is_energy_feasible() {
            "FEASIBLE"
        } else {
            "INFEASIBLE"
        }
    );
    Ok(())
}

fn cmd_orbit(o: &Flags) -> Result<(), String> {
    let hours = get_f64(o, "hours", 0.5)?;
    let step = get_f64(o, "step", 120.0)?.max(1.0);
    let tle = Tle::paper_orbit();
    let use_sgp4 = o.contains_key("sgp4");
    let track = GroundTrack::new(J2Propagator::from_tle(&tle).map_err(|e| e.to_string())?);
    let sgp4 = Sgp4Propagator::new(&tle).map_err(|e| e.to_string())?;

    println!(
        "t_s,lat_deg,lon_deg,alt_km,sunlit ({})",
        if use_sgp4 { "sgp4" } else { "j2" }
    );
    let mut t = 0.0;
    while t <= hours * 3600.0 {
        let (pos, lit) = if use_sgp4 {
            let s = sgp4.state_at(t).map_err(|e| e.to_string())?;
            (s.position, track.is_sunlit(s.position))
        } else {
            let s = track.state_at(t).map_err(|e| e.to_string())?;
            (s.eci.position, s.in_sunlight)
        };
        let geo = track
            .eci_to_ecef(pos, t)
            .to_geodetic_spherical()
            .map_err(|e| e.to_string())?;
        println!(
            "{t:.0},{:.3},{:.3},{:.1},{}",
            geo.lat_deg(),
            geo.lon_deg(),
            geo.alt_m() / 1000.0,
            lit
        );
        t += step;
    }
    Ok(())
}

fn cmd_dataset(o: &Flags) -> Result<(), String> {
    let workload = get_workload(o)?;
    let scale = get_f64(o, "scale", 0.1)?.clamp(1e-4, 1.0);
    let seed = get_usize(o, "seed", 7)? as u64;
    let set = workload.generate_scaled(scale, 86_400.0, seed);
    println!("workload: {}", workload.label());
    println!(
        "targets:  {} (scale {scale} of {})",
        set.len(),
        workload.paper_count()
    );
    println!("value:    {:.0} total priority", set.total_value());
    println!("moving:   max speed {:.0} m/s", set.max_speed_m_s());
    let north = set.iter().filter(|t| t.position.lat_deg() > 50.0).count();
    println!(
        "boreal:   {:.1}% above 50N",
        100.0 * north as f64 / set.len().max(1) as f64
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("valid flags")
    }

    #[test]
    fn parses_key_value_flags() {
        let f = flags(&["--sats", "8", "--hours", "2.5"]);
        assert_eq!(get_usize(&f, "sats", 0).unwrap(), 8);
        assert!((get_f64(&f, "hours", 0.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let f = flags(&[]);
        assert_eq!(get_usize(&f, "sats", 4).unwrap(), 4);
        assert_eq!(get_f64(&f, "scale", 0.3).unwrap(), 0.3);
    }

    #[test]
    fn boolean_sgp4_flag() {
        let f = flags(&["--sgp4"]);
        assert!(f.contains_key("sgp4"));
    }

    #[test]
    fn rejects_bad_values_and_positional_args() {
        let f = flags(&["--sats", "many"]);
        assert!(get_usize(&f, "sats", 0).is_err());
        let args: Vec<String> = vec!["loose".into()];
        assert!(parse_flags(&args).is_err());
        let args: Vec<String> = vec!["--sats".into()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn workload_names_resolve() {
        for (name, want) in [
            ("ships", Workload::ShipDetection),
            ("planes", Workload::AirplaneTracking),
            ("lakes166k", Workload::LakeMonitoring166K),
            ("lakes1m4", Workload::LakeMonitoring1M4),
        ] {
            let f = flags(&["--workload", name]);
            assert_eq!(get_workload(&f).unwrap(), want);
        }
        let f = flags(&["--workload", "asteroids"]);
        assert!(get_workload(&f).is_err());
    }
}
