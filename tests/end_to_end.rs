//! Cross-crate integration tests: datasets → detection → clustering →
//! scheduling → coverage, over real orbital geometry.

use eagleeye::core::clustering::ClusteringMethod;
use eagleeye::core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, FailurePlan, SchedulerKind,
};
use eagleeye::datasets::{ShipGenerator, Target, TargetSet};
use eagleeye::geo::GeodeticPoint;

/// Targets strung under the first pass of a RAAN-0 polar orbit.
fn meridian_targets(n: usize) -> TargetSet {
    (0..n)
        .map(|i| {
            let lat = -50.0 + 100.0 * i as f64 / n as f64;
            let lon = 0.4 * ((i % 7) as f64 - 3.0);
            Target::fixed(GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap(), 1.0)
        })
        .collect()
}

fn options(duration_s: f64) -> CoverageOptions {
    CoverageOptions {
        duration_s,
        ..CoverageOptions::default()
    }
}

#[test]
fn coverage_is_deterministic_under_fixed_seed() {
    let targets = ShipGenerator::new().with_count(800).generate(3);
    let eval = CoverageEvaluator::new(&targets, options(2_400.0));
    let a = eval.evaluate(&ConstellationConfig::eagleeye(2, 1)).unwrap();
    let b = eval.evaluate(&ConstellationConfig::eagleeye(2, 1)).unwrap();
    assert_eq!(a.captured, b.captured);
    assert_eq!(a.captures_commanded, b.captures_commanded);
    assert_eq!(a.per_frame_target_counts, b.per_frame_target_counts);
}

#[test]
fn coverage_is_monotone_in_satellite_count() {
    let targets = meridian_targets(80);
    let eval = CoverageEvaluator::new(&targets, options(3_000.0));
    let mut last = 0;
    for sats in [1usize, 2, 4] {
        let r = eval
            .evaluate(&ConstellationConfig::LowResOnly { satellites: sats })
            .unwrap();
        assert!(
            r.captured >= last,
            "coverage dropped from {last} to {} at {sats} satellites",
            r.captured
        );
        last = r.captured;
    }
    assert!(
        last > 0,
        "the meridian workload must be covered by some satellite"
    );
}

#[test]
fn configuration_ordering_matches_the_paper() {
    // At equal satellite count: low-res ceiling >= eagleeye > high-res.
    let targets = meridian_targets(120);
    let eval = CoverageEvaluator::new(&targets, options(3_000.0));
    let low = eval
        .evaluate(&ConstellationConfig::LowResOnly { satellites: 2 })
        .unwrap();
    let high = eval
        .evaluate(&ConstellationConfig::HighResOnly { satellites: 2 })
        .unwrap();
    let ee = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
    assert!(
        low.captured >= ee.captured,
        "low {} < ee {}",
        low.captured,
        ee.captured
    );
    assert!(
        ee.captured >= high.captured,
        "ee {} < high {}",
        ee.captured,
        high.captured
    );
    assert!(ee.captured > 0);
}

#[test]
fn ilp_scheduling_never_loses_to_greedy_end_to_end() {
    let targets = ShipGenerator::new().with_count(2_500).generate(9);
    let eval = CoverageEvaluator::new(&targets, options(3_600.0));
    let mk = |scheduler| ConstellationConfig::EagleEye {
        groups: 2,
        followers_per_group: 1,
        scheduler,
        clustering: ClusteringMethod::Ilp,
    };
    let ilp = eval.evaluate(&mk(SchedulerKind::Ilp)).unwrap();
    let greedy = eval.evaluate(&mk(SchedulerKind::Greedy)).unwrap();
    assert!(
        ilp.captured >= greedy.captured,
        "ilp {} < greedy {}",
        ilp.captured,
        greedy.captured
    );
}

#[test]
fn clustering_never_hurts_coverage() {
    let targets = ShipGenerator::new().with_count(2_500).generate(11);
    let eval = CoverageEvaluator::new(&targets, options(3_600.0));
    let mk = |clustering| ConstellationConfig::EagleEye {
        groups: 2,
        followers_per_group: 1,
        scheduler: SchedulerKind::Ilp,
        clustering,
    };
    let with = eval.evaluate(&mk(ClusteringMethod::Ilp)).unwrap();
    let without = eval.evaluate(&mk(ClusteringMethod::None)).unwrap();
    assert!(
        with.captured >= without.captured,
        "clustered {} < unclustered {}",
        with.captured,
        without.captured
    );
}

#[test]
fn recall_sweep_degrades_gracefully() {
    // Fig. 15's effect: coverage at recall 0.5 stays above half the
    // full-recall coverage thanks to serendipitous co-capture.
    let targets = meridian_targets(150);
    let full = {
        let eval = CoverageEvaluator::new(&targets, options(3_000.0));
        eval.evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap()
            .captured
    };
    let half = {
        let mut o = options(3_000.0);
        o.recall = 0.5;
        let eval = CoverageEvaluator::new(&targets, o);
        eval.evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap()
            .captured
    };
    assert!(full > 0);
    assert!(half > 0, "recall 0.5 must still capture something");
    assert!(
        half * 10 >= full * 4,
        "half-recall coverage {half} below 40% of full {full}"
    );
}

#[test]
fn mix_camera_degrades_with_compute_time() {
    let targets = meridian_targets(150);
    let eval = CoverageEvaluator::new(&targets, options(3_000.0));
    let mut last = usize::MAX;
    for compute in [1.4, 5.5, 11.8] {
        let r = eval
            .evaluate(&ConstellationConfig::MixCamera {
                satellites: 2,
                compute_time_s: compute,
            })
            .unwrap();
        assert!(
            r.captured <= last,
            "coverage increased from {last} to {} at compute {compute}",
            r.captured
        );
        last = r.captured;
    }
}

#[test]
fn failed_follower_reduces_but_failure_free_group_recovers() {
    let targets = meridian_targets(150);
    let healthy = {
        let eval = CoverageEvaluator::new(&targets, options(3_000.0));
        eval.evaluate(&ConstellationConfig::eagleeye(1, 2))
            .unwrap()
            .captured
    };
    let degraded = {
        let mut o = options(3_000.0);
        o.failure = Some(FailurePlan {
            fail_at_s: 0.0,
            leader_failed: false,
            failed_followers: vec![0],
        });
        let eval = CoverageEvaluator::new(&targets, o);
        eval.evaluate(&ConstellationConfig::eagleeye(1, 2))
            .unwrap()
            .captured
    };
    assert!(degraded <= healthy);
    assert!(degraded > 0, "the surviving follower must keep capturing");
}

#[test]
fn moving_targets_are_captured_at_their_actual_positions() {
    // A plane moving across the track: the evaluator re-projects at
    // capture time, so coverage still happens within the slack bound.
    let mut t = Target::fixed(GeodeticPoint::from_degrees(0.0, 0.1, 0.0).unwrap(), 1.0);
    t.motion = Some((50.0, 1.2)); // brisk ship / slow plane
    let set = TargetSet::new(vec![t]);
    let eval = CoverageEvaluator::new(&set, options(3_000.0));
    let r = eval
        .evaluate(&ConstellationConfig::LowResOnly { satellites: 4 })
        .unwrap();
    assert_eq!(r.total, 1);
}
