//! End-to-end golden regression: a miniature deterministic scenario
//! through the full `CoverageEvaluator` with metrics enabled. The
//! report and every recorded pipeline counter are snapshot-asserted,
//! and recording is bit-identical sequentially and through the
//! 4-thread pool. `exec/*` keys are excluded from the cross-thread
//! comparison — sequential runs never dispatch the pool — and timers/
//! gauges are wall-clock/pool-shape and exempt by design (DESIGN.md
//! §10).
//!
//! If an intentional pipeline change shifts these numbers, re-pin the
//! `GOLDEN_*` constants from the values in the assertion message —
//! that is the point of the test: drift must be noticed, not silent.

use eagleeye::core::clustering::ClusteringMethod;
use eagleeye::core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, CoverageReport, SchedulerKind,
};
use eagleeye::datasets::{Target, TargetSet};
use eagleeye::geo::GeodeticPoint;
use eagleeye::obs::{Metrics, MetricsRegistry};

/// Report-level golden values: (total, captured, captures_commanded,
/// frames_processed, scheduler_calls, ilp_subproblems).
const GOLDEN_REPORT: (usize, usize, usize, usize, usize, usize) = (80, 4, 4, 360, 4, 4);

/// Every non-`exec/*` counter the pipeline records for this scenario,
/// in key order.
const GOLDEN_COUNTERS: &[(&str, u64)] = &[
    ("core/captured_targets", 4),
    ("core/captures_commanded", 4),
    ("core/captures_lost_to_faults", 0),
    ("core/deadline_fallbacks", 0),
    ("core/evaluations", 1),
    ("core/frames_leader_down", 0),
    ("core/frames_processed", 360),
    ("core/frames_with_targets", 4),
    ("core/greedy_fallbacks", 0),
    ("core/ilp_horizons", 0),
    ("core/repairs_attempted", 0),
    ("core/scheduler_calls", 4),
    ("core/tasks_dropped_by_failures", 0),
    ("core/tasks_reassigned", 0),
    ("ilp/deadline_hits", 0),
    // Sparse-tier counters pin at zero: the golden scenario runs the
    // dense tier (the digest-stable default), which never presolves,
    // accepts hints, or routes a subproblem through the sparse path.
    ("ilp/hints_accepted", 0),
    ("ilp/incumbent_updates", 4),
    ("ilp/iteration_limit_hits", 0),
    ("ilp/lp_iterations", 30),
    ("ilp/lp_pivots", 22),
    ("ilp/nodes_explored", 4),
    ("ilp/nodes_pruned", 0),
    ("ilp/presolve_rows_removed", 0),
    ("ilp/presolve_vars_eliminated", 0),
    ("ilp/sparse_solves", 0),
    ("ilp/subproblems", 4),
    // Warm starts record 0 here: the miniature scenario's horizons are
    // solved once each, so no basis is ever offered for reuse.
    ("ilp/warm_rejects", 0),
    ("ilp/warm_starts", 0),
    ("orbit/grid_propagations", 3),
    ("orbit/propagation_calls", 360),
    ("orbit/trig_hits", 3),
];

/// Targets strung under the early passes of the phase-offset leader
/// groups (same shape the evaluator's own determinism test uses), with
/// mixed priorities so scheduling order matters.
fn scenario_targets() -> TargetSet {
    (0..80)
        .map(|i| {
            let lat = -40.0 + 80.0 * i as f64 / 80.0;
            let lon = 0.35 * (i % 5) as f64;
            Target::fixed(
                GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap(),
                1.0 + (i % 3) as f64,
            )
        })
        .collect()
}

fn config() -> ConstellationConfig {
    ConstellationConfig::EagleEye {
        groups: 3,
        followers_per_group: 1,
        scheduler: SchedulerKind::Ilp,
        clustering: ClusteringMethod::Ilp,
    }
}

fn run(threads: usize) -> (CoverageReport, MetricsRegistry) {
    let metrics = Metrics::enabled();
    let options = CoverageOptions {
        duration_s: 1_800.0,
        threads,
        metrics: metrics.clone(),
        ..CoverageOptions::default()
    };
    let targets = scenario_targets();
    let eval = CoverageEvaluator::new(&targets, options);
    let report = eval.evaluate(&config()).expect("evaluation succeeds");
    (report, metrics.snapshot())
}

fn pipeline_counters(snap: &MetricsRegistry) -> Vec<(String, u64)> {
    snap.counters()
        .filter(|(k, _)| !k.starts_with("exec/"))
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

#[test]
fn report_and_counters_match_the_golden_snapshot() {
    let (report, snap) = run(1);
    let report_key = (
        report.total,
        report.captured,
        report.captures_commanded,
        report.frames_processed,
        report.scheduler_calls,
        report.ilp_subproblems,
    );
    assert_eq!(
        report_key, GOLDEN_REPORT,
        "report drifted from the golden snapshot"
    );
    // The miniature scenario must be solvable without solver stress,
    // otherwise wall-clock deadlines could make the snapshot flaky.
    assert_eq!(snap.counter("ilp/deadline_hits"), 0);
    assert_eq!(snap.counter("ilp/iteration_limit_hits"), 0);

    let actual = pipeline_counters(&snap);
    let expected: Vec<(String, u64)> = GOLDEN_COUNTERS
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    assert_eq!(
        actual, expected,
        "\ncounters drifted from the golden snapshot; actual:\n{actual:#?}"
    );
}

#[test]
fn counters_are_bit_identical_at_one_and_four_threads() {
    let (r1, s1) = run(1);
    let (r4, s4) = run(4);
    assert!(
        r1.same_outcome(&r4),
        "coverage outcome differs across thread counts"
    );
    assert_eq!(pipeline_counters(&s1), pipeline_counters(&s4));
    let histograms = |s: &MetricsRegistry| -> Vec<(String, Vec<u64>, u128, u64)> {
        s.histograms()
            .filter(|(k, _)| !k.starts_with("exec/"))
            .map(|(k, h)| (k.to_string(), h.counts().to_vec(), h.sum(), h.count()))
            .collect()
    };
    assert_eq!(histograms(&s1), histograms(&s4));
}
