//! Cross-process crash-injection tests for the crash-safe run layer.
//!
//! These tests exercise the real recovery path: a child `eagleeye`
//! process is killed mid-run via `EAGLEEYE_CRASH` (see
//! `eagleeye-harden`), restarted with `--resume`, and the final report
//! digest plus the obs counter/histogram artifact are asserted
//! bit-identical to an uninterrupted run — at 1 and 4 worker threads.
//!
//! The property sweep at the bottom fuzzes (site, mode, nth, threads)
//! over many kill points; set `EAGLEEYE_CRASH_SWEEP_CASES` to widen it
//! (CI runs 256 cases) and `EAGLEEYE_CRASH_SWEEP_SEED` to replay a
//! single failing case.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The exit code `crash_point` uses for mode `exit` (its portable
/// SIGKILL stand-in).
const INJECTED_EXIT: i32 = 42;

/// A small scenario with real captures (non-trivial digest fields) and
/// four leader passes, so a crash on an early pass leaves work to
/// resume. Runs in ~40 ms in a debug build.
const SCENARIO: &[&str] = &[
    "coverage",
    "--workload",
    "ships",
    "--scale",
    "0.1",
    "--sats",
    "8",
    "--followers",
    "1",
    "--hours",
    "1",
    "--seed",
    "7",
];

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eagleeye_crash_resume_{}_{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Runs the `eagleeye` binary with the standard scenario in `dir`
/// (which receives `results/METRICS_eagleeye.json`), optionally armed
/// with an `EAGLEEYE_CRASH` spec.
fn run_eagleeye(dir: &Path, threads: usize, extra: &[&str], crash: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_eagleeye"));
    cmd.args(SCENARIO)
        .args(["--threads", &threads.to_string()])
        .args(extra)
        .current_dir(dir)
        .env("EAGLEEYE_TRACE", "1")
        .env_remove("EAGLEEYE_CRASH");
    if let Some(spec) = crash {
        cmd.env("EAGLEEYE_CRASH", spec);
    }
    cmd.output().expect("spawn eagleeye binary")
}

/// The deterministic `digest:` line the CLI prints (no wall-clock
/// fields), used to compare runs across processes bit-for-bit.
fn digest(output: &Output) -> String {
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .find(|l| l.starts_with("digest:"))
        .unwrap_or_else(|| panic!("no digest line in stdout:\n{stdout}"))
        .to_string()
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// The deterministic sections of the metrics artifact: counters and
/// histograms hold the bit-identity contract; gauges (resume/degrade
/// state) and timers (wall clock) are run-dependent by design.
fn golden_sections(dir: &Path) -> (String, String) {
    let path = dir.join("results").join("METRICS_eagleeye.json");
    let json = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let counters = json
        .split("\"counters\":")
        .nth(1)
        .and_then(|s| s.split("\"gauges\":").next())
        .expect("counters section")
        .to_string();
    let histograms = json
        .split("\"histograms\":")
        .nth(1)
        .expect("histograms section")
        .to_string();
    (counters, histograms)
}

#[test]
fn kill_and_resume_matches_uninterrupted_run() {
    for threads in [1usize, 4] {
        // Reference: an uninterrupted hardened run.
        let ref_dir = fresh_dir(&format!("ref_t{threads}"));
        let reference = run_eagleeye(
            &ref_dir,
            threads,
            &["--checkpoint", "ck", "--ckpt-cadence", "1"],
            None,
        );
        assert!(
            reference.status.success(),
            "reference run failed: {}",
            stderr_of(&reference)
        );
        let ref_digest = digest(&reference);
        let ref_golden = golden_sections(&ref_dir);

        // The hardened path must report exactly what the plain
        // evaluator reports.
        let plain_dir = fresh_dir(&format!("plain_t{threads}"));
        let plain = run_eagleeye(&plain_dir, threads, &[], None);
        assert!(
            plain.status.success(),
            "plain run failed: {}",
            stderr_of(&plain)
        );
        assert_eq!(
            digest(&plain),
            ref_digest,
            "hardened vs plain digest (threads={threads})"
        );

        // Kill the process on the third supervised work item.
        let dir = fresh_dir(&format!("crash_t{threads}"));
        let crashed = run_eagleeye(
            &dir,
            threads,
            &["--checkpoint", "ck", "--ckpt-cadence", "1"],
            Some("worker_item:exit:3"),
        );
        assert_eq!(
            crashed.status.code(),
            Some(INJECTED_EXIT),
            "injected exit expected (threads={threads}): {}",
            stderr_of(&crashed)
        );

        // Resume from the published checkpoint; no injection this time.
        let resumed = run_eagleeye(
            &dir,
            threads,
            &["--checkpoint", "ck", "--ckpt-cadence", "1", "--resume"],
            None,
        );
        assert!(
            resumed.status.success(),
            "resume failed: {}",
            stderr_of(&resumed)
        );
        assert_eq!(
            digest(&resumed),
            ref_digest,
            "resumed digest differs from uninterrupted run (threads={threads})"
        );
        let golden = golden_sections(&dir);
        assert_eq!(
            golden.0, ref_golden.0,
            "counters differ (threads={threads})"
        );
        assert_eq!(
            golden.1, ref_golden.1,
            "histograms differ (threads={threads})"
        );

        for d in [&ref_dir, &plain_dir, &dir] {
            let _ = fs::remove_dir_all(d);
        }
    }
}

#[test]
fn panic_injection_is_supervised_and_transparent() {
    // A single injected panic is retried by the supervisor; the run
    // completes in one process with a bit-identical result.
    let ref_dir = fresh_dir("panic_ref");
    let reference = run_eagleeye(&ref_dir, 4, &["--checkpoint", "ck"], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = fresh_dir("panic_run");
    let run = run_eagleeye(
        &dir,
        4,
        &["--checkpoint", "ck"],
        Some("worker_item:panic:2"),
    );
    assert!(
        run.status.success(),
        "supervised retry should absorb a single panic: {}",
        stderr_of(&run)
    );
    assert_eq!(digest(&run), digest(&reference));
    assert_eq!(golden_sections(&dir), golden_sections(&ref_dir));
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_during_checkpoint_publish_preserves_previous_snapshot() {
    // Kill between the tmp-file write and the rename of the *second*
    // checkpoint: the first published snapshot must survive intact and
    // resume exactly one leader pass.
    let ref_dir = fresh_dir("ckpt_ref");
    let reference = run_eagleeye(
        &ref_dir,
        1,
        &["--checkpoint", "ck", "--ckpt-cadence", "1"],
        None,
    );
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let dir = fresh_dir("ckpt_crash");
    let crashed = run_eagleeye(
        &dir,
        1,
        &["--checkpoint", "ck", "--ckpt-cadence", "1"],
        Some("checkpoint_write:exit:2"),
    );
    assert_eq!(crashed.status.code(), Some(INJECTED_EXIT));
    assert!(
        dir.join("ck").exists(),
        "first snapshot must have been published"
    );

    let resumed = run_eagleeye(
        &dir,
        1,
        &["--checkpoint", "ck", "--ckpt-cadence", "1", "--resume"],
        None,
    );
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert!(
        stderr_of(&resumed).contains("resumed 1 of 4 leader passes"),
        "expected exactly the first pass to resume, got: {}",
        stderr_of(&resumed)
    );
    assert_eq!(digest(&resumed), digest(&reference));
    assert_eq!(golden_sections(&dir), golden_sections(&ref_dir));
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

/// splitmix64 — the workspace's PRNG step (`eagleeye-rng`), inlined so
/// this integration test stays dependency-free on the library.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn crash_property_sweep() {
    // Fuzz kill points: every (site, mode, nth, threads) combination
    // must leave the system recoverable with a bit-identical digest.
    //
    // Default is a quick smoke (8 cases); CI widens it with
    // EAGLEEYE_CRASH_SWEEP_CASES=256. A failure prints its case seed —
    // replay just that case with EAGLEEYE_CRASH_SWEEP_SEED=<seed>.
    let cases: u64 = std::env::var("EAGLEEYE_CRASH_SWEEP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let replay: Option<u64> = std::env::var("EAGLEEYE_CRASH_SWEEP_SEED")
        .ok()
        .and_then(|v| v.parse().ok());

    let ref_dir = fresh_dir("sweep_ref");
    let reference = run_eagleeye(&ref_dir, 1, &["--checkpoint", "ck"], None);
    assert!(reference.status.success(), "{}", stderr_of(&reference));
    let ref_digest = digest(&reference);

    let seeds: Vec<u64> = match replay {
        Some(seed) => vec![seed],
        None => (0..cases).map(|i| 0x5EED_0000 + i).collect(),
    };
    for seed in seeds {
        let mut s = seed;
        let site = ["worker_item", "checkpoint_write"][(splitmix64(&mut s) % 2) as usize];
        let mode = ["exit", "panic"][(splitmix64(&mut s) % 2) as usize];
        let nth = 1 + splitmix64(&mut s) % 6;
        let threads = [1usize, 2, 4][(splitmix64(&mut s) % 3) as usize];
        let spec = format!("{site}:{mode}:{nth}");
        let ctx = |step: &str, out: &Output| {
            format!(
                "sweep case failed at {step}: spec={spec} threads={threads}\n\
                 replay with EAGLEEYE_CRASH_SWEEP_SEED={seed}\n--- stderr ---\n{}",
                stderr_of(out)
            )
        };

        let dir = fresh_dir(&format!("sweep_{seed:x}"));
        let flags = ["--checkpoint", "ck", "--ckpt-cadence", "1"];
        let crashed = run_eagleeye(&dir, threads, &flags, Some(&spec));
        // `exit` kills the process (42); `panic` is either absorbed by
        // the supervisor (worker_item) or fatal in the driver
        // (checkpoint_write). All are legitimate crash outcomes — the
        // contract under test is recoverability, below.
        if crashed.status.success() {
            assert_eq!(
                digest(&crashed),
                ref_digest,
                "{}",
                ctx("survived run", &crashed)
            );
        }

        let resumed = run_eagleeye(
            &dir,
            threads,
            &["--checkpoint", "ck", "--ckpt-cadence", "1", "--resume"],
            None,
        );
        assert!(resumed.status.success(), "{}", ctx("resume", &resumed));
        assert_eq!(
            digest(&resumed),
            ref_digest,
            "{}",
            ctx("resume digest", &resumed)
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}
