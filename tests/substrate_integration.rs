//! Integration tests across the substrate crates: orbit ↔ geo geometry,
//! sim ↔ detect timing consistency, and dataset ↔ index behaviour.

use eagleeye::datasets::{AirplaneGenerator, LakeGenerator, LakeSizeBand, ShipGenerator};
use eagleeye::detect::{TilingConfig, YoloVariant};
use eagleeye::geo::{greatcircle, GeodeticPoint};
use eagleeye::orbit::{ConstellationLayout, GroundTrack, J2Propagator, SatelliteRole, Tle};
use eagleeye::sim::{simulate_orbit, ActivityProfile, PowerProfile};

#[test]
fn tle_round_trip_through_propagation() {
    let tle = Tle::paper_orbit();
    let (l1, l2) = tle.to_lines();
    let reparsed = Tle::parse(&l1, &l2).unwrap();
    let p1 = J2Propagator::from_tle(&tle).unwrap();
    let p2 = J2Propagator::from_tle(&reparsed).unwrap();
    for t in [0.0, 1_000.0, 5_640.0] {
        let a = p1.state_at(t).unwrap().position;
        let b = p2.state_at(t).unwrap().position;
        assert!((a - b).norm() < 10_000.0, "positions diverge at t={t}");
    }
}

#[test]
fn follower_lags_leader_by_the_design_distance() {
    let layout = ConstellationLayout::uniform(1, 1, 475_000.0, 97.2_f64.to_radians()).unwrap();
    let sats = layout.satellites();
    let leader = layout.ground_track(&sats[0]).unwrap();
    let follower = layout.ground_track(&sats[1]).unwrap();
    // At equal times the two subsatellite points are ~100 km apart.
    for t in [0.0, 600.0, 2_000.0] {
        let a = leader.state_at(t).unwrap().subsatellite;
        let b = follower.state_at(t).unwrap().subsatellite;
        let d = greatcircle::distance_m(
            &a.with_altitude(0.0).unwrap(),
            &b.with_altitude(0.0).unwrap(),
        );
        assert!((d - 100_000.0).abs() < 5_000.0, "separation {d} m at t={t}");
    }
}

#[test]
fn constellation_roles_partition_satellites() {
    let layout = ConstellationLayout::uniform(3, 2, 475_000.0, 97.2_f64.to_radians()).unwrap();
    let leaders = layout
        .satellites()
        .iter()
        .filter(|s| s.role == SatelliteRole::Leader)
        .count();
    let followers = layout
        .satellites()
        .iter()
        .filter(|s| s.role == SatelliteRole::Follower)
        .count();
    assert_eq!(leaders, 3);
    assert_eq!(followers, 6);
}

#[test]
fn ground_track_sunlight_feeds_energy_model() {
    let track = GroundTrack::new(
        J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).unwrap(),
    );
    let sunlit = track.sunlit_fraction(720).unwrap();
    let report = simulate_orbit(
        &PowerProfile::cubesat_3u(),
        &ActivityProfile::leader_default(1.0),
        sunlit,
        track.propagator().period_s(),
    );
    // The measured sunlit fraction must keep the nominal leader feasible.
    assert!(
        report.is_energy_feasible(),
        "sunlit {sunlit}: leader infeasible"
    );
}

#[test]
fn yolo_frame_times_drive_activity_compute() {
    // The sim crate's leader activity must agree with the detect crate's
    // frame-time model at the default tiling.
    let tiling = TilingConfig::paper_default();
    let frame_time = YoloVariant::N.frame_processing_time_s(&tiling);
    let leader = ActivityProfile::leader_default(1.0);
    let per_frame = leader.compute_s() / leader.frames_captured;
    assert!(
        (per_frame - frame_time).abs() < 0.05,
        "sim {per_frame} vs detect {frame_time}"
    );
}

#[test]
fn datasets_compose_with_spatial_queries_at_scale() {
    let lakes = LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
        .with_count(200_000)
        .generate(5);
    let boreal = GeodeticPoint::from_degrees(60.0, -100.0, 0.0).unwrap();
    let sahara = GeodeticPoint::from_degrees(25.0, 10.0, 0.0).unwrap();
    let near_boreal = lakes.query_radius(&boreal, 150_000.0, 0.0).len();
    let near_sahara = lakes.query_radius(&sahara, 150_000.0, 0.0).len();
    assert!(
        near_boreal > 5 * (near_sahara + 1),
        "boreal {near_boreal} vs sahara {near_sahara}"
    );
}

#[test]
fn airplanes_move_between_queries() {
    let planes = AirplaneGenerator::new()
        .with_count(3_000)
        .with_horizon_s(7_200.0)
        .generate(6);
    // Pick a flight that exists at t=0 and check its position changes.
    let flying = planes
        .iter()
        .enumerate()
        .find(|(_, t)| t.exists_at(600.0) && t.disappears_at_s > 1_800.0)
        .expect("some flight spans the interval");
    let (_, t) = flying;
    let a = t.position_at(600.0);
    let b = t.position_at(1_800.0);
    let moved = greatcircle::distance_m(&a, &b);
    let expected = t.speed_m_s() * 1_200.0;
    assert!(
        (moved - expected).abs() < 2_000.0,
        "moved {moved}, expected {expected}"
    );
}

#[test]
fn ship_lanes_produce_multi_target_frames() {
    // The clustering/scheduling story requires frames with many ships;
    // verify lane clustering produces 100 km neighborhoods with >= 5
    // ships at full scale.
    let ships = ShipGenerator::new().with_count(19_119).generate(7);
    let mut dense_neighborhoods = 0;
    for i in (0..ships.len()).step_by(97) {
        let p = ships.target(i).position;
        if ships.query_radius(&p, 50_000.0, 0.0).len() >= 5 {
            dense_neighborhoods += 1;
        }
    }
    assert!(
        dense_neighborhoods > 20,
        "only {dense_neighborhoods} dense neighborhoods"
    );
}
