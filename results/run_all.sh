#!/bin/bash
# Regenerates every figure's data. Moderate settings chosen to finish on a
# single core in ~1.5 h; see EXPERIMENTS.md for full-scale instructions.
set -x
cd /root/repo
B=./target/release
$B/fig3_oiltank_gsd            > results/fig3.csv  2> results/fig3.log
$B/fig10_lookahead             > results/fig10.csv 2> results/fig10.log
$B/fig14b_tiling               > results/fig14b.csv 2> results/fig14b.log
$B/fig16_energy                > results/fig16.csv 2> results/fig16.log
$B/fig12a_runtime              > results/fig12a.csv 2> results/fig12a.log
$B/fig14a_follower_capacity --fast > results/fig14a.csv 2> results/fig14a.log
$B/fig4_swath_tradeoff  --hours 2 --scale 0.5 > results/fig4.csv  2> results/fig4.log
$B/fig12b_target_cdf    --hours 2 --scale 1.0 > results/fig12b.csv 2> results/fig12b.log
$B/fig11a_coverage      --hours 2 --scale 0.5 > results/fig11a.csv 2> results/fig11a.log
$B/fig13_mix_camera     --hours 2 --scale 0.5 > results/fig13.csv 2> results/fig13.log
$B/fig14c_clustering    --hours 2 --scale 0.5 > results/fig14c.csv 2> results/fig14c.log
$B/fig15_recall         --fast --hours 2 --scale 0.5 > results/fig15.csv 2> results/fig15.log
$B/fig11b_slew_rate     --fast --hours 2 --scale 0.5 > results/fig11b.csv 2> results/fig11b.log
$B/fig11c_followers     --fast --hours 2 --scale 0.5 > results/fig11c.csv 2> results/fig11c.log
$B/fig1b_constellation_size --fast --hours 1 --scale 0.3 > results/fig1b.csv 2> results/fig1b.log
$B/ext_fault_tolerance         > results/ext_fault_tolerance.csv 2> results/ext_fault_tolerance.log
echo ALL_DONE
