#!/bin/bash
set -x
cd /root/repo
B=./target/release
$B/fig11a_coverage --hours 24 --scale 1.0 > results/long/fig11a_24h.csv 2> results/long/fig11a_24h.log
$B/fig11c_followers --fast --hours 8 --scale 1.0 > results/long/fig11c_8h.csv 2> results/long/fig11c_8h.log
$B/fig14c_clustering --hours 8 --scale 1.0 > results/long/fig14c_8h.csv 2> results/long/fig14c_8h.log
$B/fig15_recall --fast --hours 8 --scale 1.0 > results/long/fig15_8h.csv 2> results/long/fig15_8h.log
$B/fig13_mix_camera --hours 8 --scale 1.0 > results/long/fig13_8h.csv 2> results/long/fig13_8h.log
$B/ext_recapture --hours 8 --scale 1.0 > results/long/ext_recapture_8h.csv 2> results/long/ext_recapture_8h.log
$B/ext_orbit_planes --hours 8 --scale 1.0 > results/long/ext_planes_8h.csv 2> results/long/ext_planes_8h.log
echo LONG_DONE
