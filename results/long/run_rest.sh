#!/bin/bash
set -x
cd /root/repo
B=./target/release
$B/fig11c_followers --fast --hours 6 --scale 1.0 > results/long/fig11c_6h.csv 2> results/long/fig11c_6h.log
$B/fig13_mix_camera --hours 4 --scale 0.5 > results/long/fig13_4h.csv 2> results/long/fig13_4h.log
$B/fig15_recall --fast --hours 6 --scale 1.0 > results/long/fig15_6h.csv 2> results/long/fig15_6h.log
$B/ext_recapture --hours 4 --scale 0.5 > results/long/ext_recapture_4h.csv 2> results/long/ext_recapture_4h.log
$B/ext_orbit_planes --hours 6 --scale 0.5 > results/long/ext_planes_6h.csv 2> results/long/ext_planes_6h.log
echo REST_DONE
