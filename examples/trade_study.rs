//! Constellation trade study: how to spend a fixed satellite budget.
//!
//! For a 12-satellite budget on a dense lake-monitoring workload, this
//! example sweeps group/follower splits, slew rates, and failure
//! scenarios, plus the per-orbit energy budget of each role — the
//! design-guidance loop of the paper's §6.2 ("add solar panels to the
//! leader, improve the follower's ADACS").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trade_study
//! ```

use eagleeye::core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, FailurePlan,
};
use eagleeye::core::{Adacs, SensingSpec};
use eagleeye::datasets::{LakeGenerator, LakeSizeBand};
use eagleeye::sim::{simulate_orbit, ActivityProfile, PowerProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lakes = LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
        .with_count(140_000)
        .generate(42);
    println!(
        "workload: {} small lakes (dense boreal clustering)\n",
        lakes.len()
    );
    let budget = 12;

    // 1. Group/follower split at a fixed budget.
    println!("-- group/follower split ({} satellites) --", budget);
    let options = CoverageOptions {
        duration_s: 2.0 * 3600.0,
        ..CoverageOptions::default()
    };
    let eval = CoverageEvaluator::new(&lakes, options.clone());
    for followers in [1usize, 2, 3, 5] {
        let groups = budget / (followers + 1);
        if groups == 0 {
            continue;
        }
        let report = eval.evaluate(&ConstellationConfig::eagleeye(groups, followers))?;
        println!(
            "  {} groups x (1 leader + {} followers): coverage {:.2}%",
            groups,
            followers,
            100.0 * report.coverage_fraction()
        );
    }

    // 2. Slew-rate sensitivity.
    println!("\n-- ADACS slew rate (4 groups x 2 followers) --");
    for rate in [1.0, 3.0, 10.0] {
        let spec = SensingSpec::paper_default().with_adacs(Adacs::new(rate, 0.67)?);
        let opts = CoverageOptions {
            spec,
            ..options.clone()
        };
        let eval = CoverageEvaluator::new(&lakes, opts);
        let report = eval.evaluate(&ConstellationConfig::eagleeye(4, 2))?;
        println!(
            "  {rate:>4.0} deg/s: coverage {:.2}%",
            100.0 * report.coverage_fraction()
        );
    }

    // 3. Reliability: leader loss vs follower loss (paper §4.7).
    println!("\n-- failure injection (4 groups x 2 followers, fail at t=0) --");
    for (name, plan) in [
        ("no failure", None),
        (
            "leader fails",
            Some(FailurePlan {
                fail_at_s: 0.0,
                leader_failed: true,
                failed_followers: vec![],
            }),
        ),
        (
            "1 follower fails",
            Some(FailurePlan {
                fail_at_s: 0.0,
                leader_failed: false,
                failed_followers: vec![0],
            }),
        ),
    ] {
        let opts = CoverageOptions {
            failure: plan,
            ..options.clone()
        };
        let eval = CoverageEvaluator::new(&lakes, opts);
        let report = eval.evaluate(&ConstellationConfig::eagleeye(4, 2))?;
        println!(
            "  {name:<18} coverage {:.2}%",
            100.0 * report.coverage_fraction()
        );
    }

    // 4. Energy budget per role.
    println!("\n-- per-orbit energy (fraction of harvestable) --");
    let power = PowerProfile::cubesat_3u();
    for (name, activity) in [
        ("leader 1x tiling", ActivityProfile::leader_default(1.0)),
        ("leader 2x tiling", ActivityProfile::leader_default(2.0)),
        ("leader 4x tiling", ActivityProfile::leader_default(4.0)),
        (
            "follower (400 captures)",
            ActivityProfile::follower_default(400.0, 3.0),
        ),
    ] {
        let r = simulate_orbit(&power, &activity, 0.62, 5_640.0);
        println!(
            "  {name:<24} {:>5.2} of harvest {}",
            r.normalized_consumption(),
            if r.is_energy_feasible() {
                ""
            } else {
                "  <- INFEASIBLE"
            }
        );
    }
    Ok(())
}
