//! Airplane-tracking mission study: moving targets and the lookahead
//! constraint.
//!
//! Airplanes move at jet speeds, so the leader-follower separation must
//! respect the paper's lookahead bound (Fig. 10): a target detected by
//! the leader has to still be inside the follower's footprint when the
//! follower arrives. This example checks the constraint analytically,
//! then simulates coverage of a moving-flight workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example airplane_tracking
//! ```

use eagleeye::core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye::core::lookahead::max_lookahead_m;
use eagleeye::datasets::AirplaneGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lookahead analysis for the paper's parameters.
    let swath = 10_000.0;
    let v_sat = 7_500.0;
    for (name, speed, gamma) in [
        ("ship", 14.0, 0.1),
        ("jet (tight slack)", 250.0, 0.1),
        ("jet (looser slack)", 250.0, 0.35),
    ] {
        let d = max_lookahead_m(speed, swath, v_sat, gamma)?;
        println!(
            "{name:<20} speed {speed:>5.0} m/s  gamma {gamma:.2}  max lookahead {:>7.1} km  (100 km separation {})",
            d / 1000.0,
            if d >= 100_000.0 { "OK" } else { "too far" }
        );
    }
    println!();

    // Coverage over a moving-flight workload.
    let horizon_s = 2.0 * 3600.0;
    let flights = AirplaneGenerator::new()
        .with_count(11_000)
        .with_horizon_s(horizon_s)
        .generate(42);
    println!(
        "workload: {} flights over {} hours",
        flights.len(),
        horizon_s / 3600.0
    );

    let options = CoverageOptions {
        duration_s: horizon_s,
        ..CoverageOptions::default()
    };
    let eval = CoverageEvaluator::new(&flights, options);
    for config in [
        ConstellationConfig::LowResOnly { satellites: 8 },
        ConstellationConfig::HighResOnly { satellites: 8 },
        ConstellationConfig::eagleeye(4, 1),
    ] {
        let report = eval.evaluate(&config)?;
        println!(
            "{:<24} coverage {:>6.2}%  ({} of {} flights)",
            config.label(),
            100.0 * report.coverage_fraction(),
            report.captured,
            report.total,
        );
    }
    Ok(())
}
