//! Oil-tank volume survey: the two-stage resolution study (paper Fig. 3).
//!
//! Stage 1 (detection) works on coarse imagery; stage 2 (shadow-based
//! fill estimation) needs high resolution — the asymmetry that motivates
//! the mixed-resolution constellation. This example runs both stages of
//! the analytic ML model over a synthetic tank-farm population at the
//! leader's and follower's GSD.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example oil_tank_survey
//! ```

use eagleeye::datasets::OilTankGenerator;
use eagleeye::detect::{DetectorModel, VolumeEstimator};

fn main() {
    let farms = OilTankGenerator::new().with_farm_count(200).generate(42);
    let tanks: Vec<(f64, f64)> = farms
        .iter()
        .flat_map(|f| f.tanks.iter().map(|t| (t.fill_level, t.diameter_m)))
        .collect();
    println!("{} tank farms, {} tanks total\n", farms.len(), tanks.len());

    let detector = DetectorModel::oiltank_detector();
    let estimator = VolumeEstimator::default();

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "GSD m/px", "detection", "err p50", "err p90"
    );
    for gsd in [0.72, 3.0, 7.5, 11.5, 30.0] {
        let detection: f64 = tanks
            .iter()
            .map(|&(_, dia)| detector.recall_at_gsd(gsd, dia))
            .sum::<f64>()
            / tanks.len() as f64;
        let (p50, p90) = estimator.error_percentiles(&tanks, gsd, 42);
        println!(
            "{gsd:>10.2} {:>11.1}% {:>11.1}% {:>11.1}%",
            100.0 * detection,
            100.0 * p50,
            100.0 * p90
        );
    }

    // The paper's Fig. 3 contrast: at 11.5 m/px (the coarse end of its
    // sweep) a 40 m tank is still detected but no longer measurable; at
    // the high-resolution operating point both stages work.
    println!(
        "\ncoarse imagery (11.5 m/px): tanks detectable {}, measurable {}",
        yesno(detector.recall_at_gsd(11.5, 40.0) > 0.5),
        yesno(estimator.expected_relative_error(11.5, 40.0) < 0.25),
    );
    println!(
        "high-res imagery (0.72 m/px): tanks detectable {}, measurable {}",
        yesno(detector.recall_at_gsd(0.72, 40.0) > 0.5),
        yesno(estimator.expected_relative_error(0.72, 40.0) < 0.25),
    );
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
