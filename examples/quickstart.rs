//! Quickstart: schedule one frame of follower captures.
//!
//! A leader has just processed a low-resolution frame and detected six
//! targets; one follower trails 100 km behind. Cluster the detections
//! into high-resolution footprints, compute an actuation-aware schedule
//! with the ILP solver, and print the capture plan.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eagleeye::core::clustering::{cluster, ClusteringMethod};
use eagleeye::core::pointing::GroundPoint;
use eagleeye::core::schedule::{
    FollowerState, GreedyScheduler, IlpScheduler, Scheduler, SchedulingProblem, TaskSpec,
};
use eagleeye::core::SensingSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SensingSpec::paper_default();

    // Detections in frame coordinates (cross-track, along-track), with
    // the detector's confidence as the priority score.
    let detections = vec![
        (GroundPoint::new(5_000.0, 10_000.0), 0.91),
        (GroundPoint::new(8_000.0, 13_000.0), 0.84), // near the first: clusters
        (GroundPoint::new(-30_000.0, 45_000.0), 0.77),
        (GroundPoint::new(60_000.0, 52_000.0), 0.95),
        (GroundPoint::new(61_500.0, 55_000.0), 0.66), // near the fourth
        (GroundPoint::new(-70_000.0, 95_000.0), 0.88),
    ];

    // 1. Cluster detections so one 10 km capture covers close neighbors.
    let footprint = spec.high_res.swath_m();
    let clusters = cluster(&detections, footprint, footprint, ClusteringMethod::Ilp)?;
    println!(
        "{} detections -> {} high-res captures",
        detections.len(),
        clusters.len()
    );

    // 2. Build the scheduling problem: one follower 100 km behind the
    //    frame, nadir-pointed, free immediately.
    let tasks: Vec<TaskSpec> = clusters
        .iter()
        .map(|c| TaskSpec {
            point: c.center,
            value: c.value,
        })
        .collect();
    let follower = FollowerState::at_start(-100_000.0);
    let problem = SchedulingProblem::new(spec, tasks, vec![follower])?;

    // 3. Solve with the paper's ILP formulation and the greedy baseline.
    let ilp = IlpScheduler::default().schedule(&problem)?;
    ilp.validate(&problem)?;
    let greedy = GreedyScheduler.schedule(&problem)?;

    println!(
        "ILP captured {}/{} clusters (value {:.2}); greedy value {:.2}",
        ilp.captured_count(),
        clusters.len(),
        ilp.total_value,
        greedy.total_value,
    );
    for (f, seq) in ilp.sequences.iter().enumerate() {
        for cap in seq {
            let c = &clusters[cap.task];
            println!(
                "  follower {f}: t={:+7.2}s  point ({:+9.0} m, {:+9.0} m)  covers {} target(s)",
                cap.time_s,
                c.center.cross_m,
                c.center.along_m,
                c.members.len()
            );
        }
    }
    Ok(())
}
