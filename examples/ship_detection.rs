//! Ship-detection mission study: the paper's motivating workload,
//! end to end.
//!
//! Generates a Global-Fishing-Watch-scale synthetic ship snapshot,
//! simulates a leader-follower constellation against homogeneous
//! baselines for two hours, and reports coverage, per-frame target
//! statistics, and scheduler latency.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ship_detection
//! ```

use eagleeye::core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye::datasets::ShipGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20% sample of the paper's 19,119 ships keeps this example quick
    // while preserving the shipping-lane clustering that drives the
    // scheduling behaviour.
    let ships = ShipGenerator::new().with_count(3_824).generate(42);
    println!(
        "workload: {} ships on synthetic shipping lanes",
        ships.len()
    );

    let options = CoverageOptions {
        duration_s: 2.0 * 3600.0,
        ..CoverageOptions::default()
    };
    let eval = CoverageEvaluator::new(&ships, options);

    let configs = [
        ConstellationConfig::LowResOnly { satellites: 8 },
        ConstellationConfig::HighResOnly { satellites: 8 },
        ConstellationConfig::eagleeye(4, 1), // also 8 satellites
    ];
    for config in configs {
        let report = eval.evaluate(&config)?;
        println!(
            "{:<24} coverage {:>6.2}%  frames {:>5}  captures {:>5}  sched {:>6.2} ms/frame",
            config.label(),
            100.0 * report.coverage_fraction(),
            report.frames_processed,
            report.captures_commanded,
            report.mean_scheduler_latency().as_secs_f64() * 1e3,
        );
        if report.frames_above(19) > 0.0 {
            println!(
                "    {:.1}% of nonempty frames exceed 19 targets (AB&B-infeasible regime)",
                100.0 * report.frames_above(19)
            );
        }
    }
    Ok(())
}
