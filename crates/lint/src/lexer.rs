//! Token-level Rust lexer for the lint engine.
//!
//! The rules in this crate match on *token* patterns, never on raw
//! text, so a `.unwrap()` inside a string literal, a `HashMap` inside
//! a nested block comment, or an `Instant::now` in a doc example can
//! never trip a rule. The lexer therefore has to get exactly the hard
//! parts of Rust's lexical grammar right:
//!
//! * line comments (`//`, plus the `///` and `//!` doc forms),
//! * **nested** block comments (`/* /* */ */`), plus `/**` / `/*!`,
//! * string literals with escapes (`"\" still a string"`),
//! * raw strings with arbitrary hash fences (`r#"..."#`, `br##"…"##`),
//! * byte strings and byte chars (`b"…"`, `b'x'`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#type`),
//! * numeric literals, distinguishing floats (`1.0`, `1e-3`, `2f64`)
//!   from integers and from range expressions (`1..2` is *not* a
//!   float).
//!
//! Everything else (operators, punctuation) is tokenized greedily from
//! a fixed table so rules can match `==`, `::`, `->`, etc. as single
//! tokens. Comments are kept in the stream — the suppression scanner
//! and the `unsafe-hygiene` rule need them — and rules that only care
//! about code walk the *significant* (non-comment) view built by the
//! engine.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, text kept
    /// with its `r#` prefix stripped).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// String literal, quotes included in `text` (`"…"` / `b"…"`).
    Str,
    /// Raw string literal, fences included (`r#"…"#` / `br"…"`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Integer literal (decimal, hex, octal, binary).
    Int,
    /// Floating-point literal (`1.0`, `1e-3`, `2f64`, `1.`).
    Float,
    /// `//` comment (doc or not; see [`Token::doc`]).
    LineComment,
    /// `/* … */` comment, nesting already resolved.
    BlockComment,
    /// Operator or punctuation, multi-char operators fused
    /// (`==`, `!=`, `::`, `->`, `..=`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Raw source text of the token (delimiters included for string,
    /// char, and comment tokens).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
    /// True for `///`, `//!`, `/** … */`, and `/*! … */` comments.
    pub doc: bool,
}

impl Token {
    /// Content of a string literal with quotes and any raw fences
    /// stripped (escape sequences are left as written).
    pub fn str_content(&self) -> &str {
        let t = self.text.as_str();
        match self.kind {
            TokKind::Str => {
                let t = t.strip_prefix('b').unwrap_or(t);
                t.strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or(t)
            }
            TokKind::RawStr => {
                let t = t.strip_prefix('b').unwrap_or(t);
                let t = t.strip_prefix('r').unwrap_or(t);
                let t = t.trim_matches('#');
                t.strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or(t)
            }
            _ => t,
        }
    }

    /// Body of a comment with the `//`-style leader stripped (block
    /// comment bodies keep their `/* */` fences; the suppression
    /// scanner only reads line comments).
    pub fn comment_body(&self) -> &str {
        let t = self.text.as_str();
        t.strip_prefix("//").unwrap_or(t)
    }
}

/// Tokenizes `src`. The lexer is total: malformed input (unterminated
/// strings or comments) yields a best-effort tail token rather than an
/// error, which is the right behavior for a linter that must keep
/// scanning the rest of the workspace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

/// Multi-char operators, longest first within each length class.
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self, text: &mut String) {
        if let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
            text.push(c);
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, doc: bool) {
        self.out.push(Token {
            kind,
            text,
            line,
            doc,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    let mut sink = String::new();
                    self.bump(&mut sink);
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '\'' => self.quote(line),
                '"' => self.string(line, String::new()),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump(&mut text);
        }
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.push(TokKind::LineComment, text, line, doc);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        self.bump(&mut text); // '/'
        self.bump(&mut text); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else {
                self.bump(&mut text);
            }
        }
        let doc = (text.starts_with("/**") && text != "/**/") || text.starts_with("/*!");
        self.push(TokKind::BlockComment, text, line, doc);
    }

    /// `'` — a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphanumeric() => self.peek(2) != Some('\''),
            _ => false,
        };
        let mut text = String::new();
        self.bump(&mut text); // opening '
        if is_lifetime {
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                self.bump(&mut text);
            }
            self.push(TokKind::Lifetime, text, line, false);
            return;
        }
        // Char literal: one (possibly escaped) scalar, then closing '.
        if self.peek(0) == Some('\\') {
            self.bump(&mut text); // backslash
            let escaped = self.peek(0);
            self.bump(&mut text); // escaped char
            if escaped == Some('u') && self.peek(0) == Some('{') {
                while self.peek(0).is_some_and(|c| c != '}') {
                    self.bump(&mut text);
                }
                self.bump(&mut text); // '}'
            }
        } else {
            self.bump(&mut text);
        }
        if self.peek(0) == Some('\'') {
            self.bump(&mut text);
        }
        self.push(TokKind::Char, text, line, false);
    }

    /// A `"…"` string; `text` carries any already-consumed prefix
    /// (`b`). Escapes are honored (`\"` does not close).
    fn string(&mut self, line: u32, mut text: String) {
        self.bump(&mut text); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump(&mut text);
                    self.bump(&mut text);
                }
                Some('"') => {
                    self.bump(&mut text);
                    break;
                }
                Some(_) => self.bump(&mut text),
            }
        }
        self.push(TokKind::Str, text, line, false);
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` fence characters;
    /// `text` carries the consumed prefix up to (not including) the
    /// opening quote. No escapes: the string ends at `"` + `#`*hashes.
    fn raw_string(&mut self, line: u32, mut text: String, hashes: usize) {
        self.bump(&mut text); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    let closes = (1..=hashes).all(|i| self.peek(i) == Some('#'));
                    self.bump(&mut text);
                    if closes {
                        for _ in 0..hashes {
                            self.bump(&mut text);
                        }
                        break;
                    }
                }
                Some(_) => self.bump(&mut text),
            }
        }
        self.push(TokKind::RawStr, text, line, false);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.bump(&mut text);
        }
        // String-prefix identifiers and raw identifiers.
        match (text.as_str(), self.peek(0)) {
            ("r", Some('"')) => return self.raw_string(line, text, 0),
            ("br", Some('"')) => return self.raw_string(line, text, 0),
            ("b", Some('"')) => return self.string(line, text),
            ("r" | "br", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump(&mut text);
                    }
                    return self.raw_string(line, text, hashes);
                }
                if text == "r" {
                    // Raw identifier `r#type`: emit the bare name so
                    // rules compare against unprefixed identifiers.
                    let mut sink = String::new();
                    self.bump(&mut sink); // '#'
                    let mut name = String::new();
                    while self
                        .peek(0)
                        .is_some_and(|c| c == '_' || c.is_alphanumeric())
                    {
                        self.bump(&mut name);
                    }
                    self.push(TokKind::Ident, name, line, false);
                    return;
                }
            }
            ("b", Some('\'')) => {
                // Byte char b'x': the quote path lexes it from the
                // opening quote; re-attach the `b` prefix afterwards.
                self.quote(line);
                if let Some(last) = self.out.last_mut() {
                    last.text.insert(0, 'b');
                }
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line, false);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        {
            self.bump(&mut text);
            self.bump(&mut text);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump(&mut text);
            }
            self.push(TokKind::Int, text, line, false);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump(&mut text);
        }
        // A '.' continues the literal only when it is not a range
        // (`1..2`) and not a method call (`1.max(2)`).
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            let is_range = after == Some('.');
            let is_method = after.is_some_and(|c| c == '_' || c.is_alphabetic());
            if !is_range && !is_method {
                is_float = true;
                self.bump(&mut text);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump(&mut text);
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let has_exp = sign.is_some_and(|c| c.is_ascii_digit())
                || (matches!(sign, Some('+' | '-')) && digit.is_some_and(|c| c.is_ascii_digit()));
            if has_exp {
                is_float = true;
                self.bump(&mut text);
                if matches!(self.peek(0), Some('+' | '-')) {
                    self.bump(&mut text);
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump(&mut text);
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        let suffix_start = text.len();
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.bump(&mut text);
        }
        if text[suffix_start..].starts_with('f') {
            is_float = true;
        }
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line, false);
    }

    fn punct(&mut self, line: u32) {
        let next3: String = (0..3).filter_map(|i| self.peek(i)).collect();
        let take = if PUNCT3.contains(&next3.as_str()) {
            3
        } else if next3.len() >= 2 && PUNCT2.contains(&&next3[..2]) {
            2
        } else {
            1
        };
        let mut text = String::new();
        for _ in 0..take {
            self.bump(&mut text);
        }
        self.push(TokKind::Punct, text, line, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_method_calls() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let toks = kinds(r#""a\"b" c"#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, r#""a\"b""#);
        assert_eq!(toks[1].1, "c");
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"r#"has "quotes" and .unwrap()"# rest"###);
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert!(toks[0].1.contains("unwrap"));
        assert_eq!(toks[1].1, "rest");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("still outer"));
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn doc_comments_are_marked() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// not doc");
        assert_eq!(
            toks.iter().map(|t| t.doc).collect::<Vec<_>>(),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str 'x' '\\n' 'static");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
    }

    #[test]
    fn floats_vs_ranges_vs_methods() {
        let toks = kinds("1.0 1e-3 2f64 1..2 3.max(4) 0x1F 1_000");
        assert_eq!(toks[0], (TokKind::Float, "1.0".into()));
        assert_eq!(toks[1], (TokKind::Float, "1e-3".into()));
        assert_eq!(toks[2], (TokKind::Float, "2f64".into()));
        assert_eq!(toks[3], (TokKind::Int, "1".into()));
        assert_eq!(toks[4], (TokKind::Punct, "..".into()));
        assert_eq!(toks[5], (TokKind::Int, "2".into()));
        assert_eq!(toks[6], (TokKind::Int, "3".into()));
        assert_eq!(toks[7], (TokKind::Punct, ".".into()));
        assert!(toks.contains(&(TokKind::Int, "0x1F".into())));
        assert!(toks.contains(&(TokKind::Int, "1_000".into())));
    }

    #[test]
    fn fused_operators() {
        let toks = kinds("a == b != c :: d ..= e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..="]);
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let toks = kinds("r#type r#fn normal");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[2], (TokKind::Ident, "normal".into()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"b"bytes" b'x' br"raw""#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Char);
        assert_eq!(toks[1].1, "b'x'");
        assert_eq!(toks[2].0, TokKind::RawStr);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("/* a\nb */\nx = \"s\ntring\";\ny");
        let x = toks.iter().find(|t| t.text == "x").expect("x token");
        assert_eq!(x.line, 3);
        let y = toks.iter().find(|t| t.text == "y").expect("y token");
        assert_eq!(y.line, 5);
    }

    #[test]
    fn str_content_strips_delimiters() {
        let toks = lex(r###""plain" r#"raw"# b"bytes""###);
        assert_eq!(toks[0].str_content(), "plain");
        assert_eq!(toks[1].str_content(), "raw");
        assert_eq!(toks[2].str_content(), "bytes");
    }
}
