//! R3 `clock`: ban `Instant::now` / `SystemTime::now` outside the
//! `obs`, `exec`, `harden`, and `bench` crates, in **every** role
//! including tests. Simulation results must never depend on wall time;
//! timing belongs to the observability layer (`eagleeye_obs::Stopwatch`,
//! `Metrics::time`, span timers) and deadline/watchdog enforcement to
//! the crash-safe run layer (`eagleeye_harden::Deadline`). Clock reads
//! elsewhere that are wall-clock *by design* carry a justified
//! suppression instead.

use crate::diag::{Diagnostic, R3_CLOCK};
use crate::engine::FileCtx;

/// The only crates allowed to read the wall clock directly.
const CLOCK_CRATES: &[&str] = &["obs", "exec", "harden", "bench"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if CLOCK_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(2) {
        let source = &ctx.s(i).text;
        if !(source == "Instant" || source == "SystemTime") {
            continue;
        }
        if ctx.is_punct(i + 1, "::") && ctx.is_ident(i + 2, "now") {
            out.push(ctx.diag(
                ctx.s(i).line,
                R3_CLOCK,
                format!(
                    "{source}::now in crate `{}` — route timing through \
                     eagleeye-obs (Stopwatch, Metrics::time, span timers)",
                    ctx.crate_name
                ),
            ));
        }
    }
}
