//! The rule set. Each rule is a pure function over a [`FileCtx`];
//! `check_all` runs every rule. Scoping conventions shared by the
//! rules:
//!
//! * *library code* means [`FileRole::Lib`](crate::engine::FileRole)
//!   files, excluding `#[cfg(test)]` regions;
//! * the `bench` crate is harness code (CLI parsing, figure binaries)
//!   and is exempt from `no-unwrap` the same way `tests/` are;
//! * `clock` applies to **all** roles — a wall-clock read in a test
//!   is still a wall-clock read — and is instead scoped by crate.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

mod clock;
pub mod coverage;
mod determinism;
mod float_eq;
mod metric_namespace;
mod no_exit;
mod no_unwrap;
mod unsafe_hygiene;

/// Runs the token-level rules (R1–R7). The annotation-driven coverage
/// rules (R8–R10, [`coverage::check`]) take an extra suppression sink
/// and are invoked separately by the engine.
pub fn check_all(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    no_unwrap::check(ctx, out);
    no_exit::check(ctx, out);
    determinism::check(ctx, out);
    clock::check(ctx, out);
    float_eq::check(ctx, out);
    unsafe_hygiene::check(ctx, out);
    metric_namespace::check(ctx, out);
}
