//! R2 `determinism`: ban `HashMap`/`HashSet` in the crates whose
//! output is serialized, merged across threads, or fed to the
//! scheduler. `RandomState` makes std hash-iteration order differ
//! *per process*, which silently breaks the bit-identical golden
//! reports (DESIGN.md §8/§10); `BTreeMap`/`BTreeSet` keep every walk
//! sorted and reproducible.

use crate::diag::{Diagnostic, R2_DETERMINISM};
use crate::engine::{FileCtx, FileRole};
use crate::lexer::TokKind;

/// Crates whose data structures feed serialized or scheduled output.
/// `datasets` and `geo` joined when the compiled access-interval
/// engine (DESIGN.md §13) started folding their query results into
/// bit-identical coverage reports.
const ORDERED_CRATES: &[&str] = &["core", "ilp", "orbit", "sim", "obs", "datasets", "geo"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib || !ORDERED_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for &idx in ctx.sig {
        let t = &ctx.tokens[idx];
        if t.kind != TokKind::Ident || ctx.test_lines.contains(t.line) {
            continue;
        }
        let ordered = match t.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        out.push(ctx.diag(
            t.line,
            R2_DETERMINISM,
            format!(
                "{} in deterministic crate `{}` — iteration order is per-process \
                 random; use {} instead",
                t.text, ctx.crate_name, ordered
            ),
        ));
    }
}
