//! R5 `unsafe-hygiene`, token half: every `unsafe` keyword must be
//! preceded (within three lines) or accompanied by a `// SAFETY:`
//! comment proving the invariant. The crate-level half — `#![forbid
//! (unsafe_code)]` required in every crate with no `unsafe` at all —
//! runs in the workspace pass
//! ([`lint_workspace`](crate::engine::lint_workspace)), because it
//! needs to see every file of the crate.

use crate::diag::{Diagnostic, R5_UNSAFE_HYGIENE};
use crate::engine::FileCtx;
use crate::lexer::TokKind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for &idx in ctx.sig {
        let t = &ctx.tokens[idx];
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let justified = ctx.tokens.iter().any(|c| {
            matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                && c.text.contains("SAFETY:")
                && c.line + 3 >= t.line
                && c.line <= t.line
        });
        if !justified {
            out.push(ctx.diag(
                t.line,
                R5_UNSAFE_HYGIENE,
                "unsafe without a `// SAFETY:` comment on or just above this line".to_string(),
            ));
        }
    }
}
