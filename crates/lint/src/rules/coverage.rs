//! R8 `digest-coverage`, R9 `codec-symmetry`, R10 `fold-coverage` —
//! the semantic drift rules (DESIGN.md §16).
//!
//! All three are **opt-in**: they fire only on fns carrying a
//! coverage annotation (parsed by [`crate::item`]), and they compare
//! the annotated struct's declared field list against the fields the
//! fn body actually references. A field counts as referenced when it
//! appears as `expr.field`, as `field:` in a struct literal or
//! pattern, or as shorthand inside a `Type { … }` region.
//!
//! Undeniably-intentional gaps carry per-field exemptions
//! (`digest-allow(Type::field): why`, …) which surface in the
//! suppression inventory and the `lint-allowlist.txt` baseline, so a
//! digest blind spot is always either referenced, or justified in a
//! reviewable, pinned place. Exemptions are audited like ordinary
//! suppressions: unknown fields, unused entries, and missing
//! justifications are `suppression` diagnostics.

use crate::diag::{self, CoverageDetail, Diagnostic};
use crate::engine::FileCtx;
use crate::item::{self, AnnKind, FieldDef, Resolved, StructDef};
use crate::lexer::TokKind;
use crate::suppress::Suppression;
use std::collections::{BTreeMap, BTreeSet};

/// One `(type, field)` entry of an `*-allow` annotation.
struct ExemptEntry {
    ty: String,
    field: String,
    /// Some coverage annotation on the owning fn named this type.
    matched: bool,
    /// The named field does not exist on the resolved struct.
    stale: bool,
    /// The exemption excused an actually-missing reference.
    used: bool,
}

/// One `*-allow` annotation with its shared justification.
struct AllowAnn {
    fn_idx: usize,
    rule: &'static str,
    line: u32,
    justification: String,
    entries: Vec<ExemptEntry>,
}

fn allow_kw(rule: &str) -> &'static str {
    match rule {
        diag::R8_DIGEST_COVERAGE => "digest-allow",
        diag::R9_CODEC_SYMMETRY => "codec-allow",
        _ => "fold-allow",
    }
}

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>, supps: &mut Vec<Suppression>) {
    // Malformed/dangling annotations from the structural parser.
    for (line, msg) in &ctx.parsed.malformed {
        out.push(ctx.diag(*line, diag::SUPPRESSION, msg.clone()));
    }

    let mut allows: Vec<AllowAnn> = Vec::new();
    for (fi, f) in ctx.parsed.fns.iter().enumerate() {
        for ann in &f.annotations {
            if let AnnKind::Allow {
                rule,
                fields,
                justification,
            } = &ann.kind
            {
                allows.push(AllowAnn {
                    fn_idx: fi,
                    rule,
                    line: ann.line,
                    justification: justification.clone(),
                    entries: fields
                        .iter()
                        .map(|(ty, field)| ExemptEntry {
                            ty: ty.clone(),
                            field: field.clone(),
                            matched: false,
                            stale: false,
                            used: false,
                        })
                        .collect(),
                });
            }
        }
    }

    struct Side {
        fn_idx: usize,
        line: u32,
    }
    let mut writers: BTreeMap<String, Side> = BTreeMap::new();
    let mut readers: BTreeMap<String, Side> = BTreeMap::new();

    for (fi, f) in ctx.parsed.fns.iter().enumerate() {
        for ann in &f.annotations {
            match &ann.kind {
                AnnKind::DigestOf(tys) => check_total(
                    ctx,
                    out,
                    &mut allows,
                    fi,
                    ann.line,
                    tys,
                    diag::R8_DIGEST_COVERAGE,
                    "digest-of",
                ),
                AnnKind::FoldOf(tys) => check_total(
                    ctx,
                    out,
                    &mut allows,
                    fi,
                    ann.line,
                    tys,
                    diag::R10_FOLD_COVERAGE,
                    "fold-of",
                ),
                AnnKind::CodecWrite(tys) => {
                    for ty in tys {
                        if writers
                            .insert(
                                ty.clone(),
                                Side {
                                    fn_idx: fi,
                                    line: ann.line,
                                },
                            )
                            .is_some()
                        {
                            out.push(ctx.diag(
                                ann.line,
                                diag::R9_CODEC_SYMMETRY,
                                format!("duplicate codec-write({ty}) annotation in this file"),
                            ));
                        }
                    }
                }
                AnnKind::CodecRead(tys) => {
                    for ty in tys {
                        if readers
                            .insert(
                                ty.clone(),
                                Side {
                                    fn_idx: fi,
                                    line: ann.line,
                                },
                            )
                            .is_some()
                        {
                            out.push(ctx.diag(
                                ann.line,
                                diag::R9_CODEC_SYMMETRY,
                                format!("duplicate codec-read({ty}) annotation in this file"),
                            ));
                        }
                    }
                }
                AnnKind::Allow { .. } => {}
            }
        }
    }

    // R9: pair writers with readers per type, in one file.
    let tys: BTreeSet<String> = writers.keys().chain(readers.keys()).cloned().collect();
    for ty in &tys {
        match (writers.get(ty), readers.get(ty)) {
            (Some(w), None) => out.push(ctx.diag(
                w.line,
                diag::R9_CODEC_SYMMETRY,
                format!(
                    "codec-write({ty}) has no matching codec-read({ty}) in this file — \
                     annotate the decoder or remove the writer annotation"
                ),
            )),
            (None, Some(r)) => out.push(ctx.diag(
                r.line,
                diag::R9_CODEC_SYMMETRY,
                format!(
                    "codec-read({ty}) has no matching codec-write({ty}) in this file — \
                     annotate the encoder or remove the reader annotation"
                ),
            )),
            (Some(w), Some(r)) => check_codec_pair(
                ctx,
                out,
                &mut allows,
                ty,
                w.fn_idx,
                w.line,
                r.fn_idx,
                r.line,
            ),
            (None, None) => unreachable!("ty drawn from the union of both maps"),
        }
    }

    // Exemption audit + suppression records.
    for a in &allows {
        let kw = allow_kw(a.rule);
        for e in &a.entries {
            if !e.matched {
                out.push(ctx.diag(
                    a.line,
                    diag::SUPPRESSION,
                    format!(
                        "coverage exemption {kw}({}::{}) names a type no coverage \
                         annotation on this fn covers",
                        e.ty, e.field
                    ),
                ));
            } else if !e.stale && !e.used {
                out.push(ctx.diag(
                    a.line,
                    diag::SUPPRESSION,
                    format!(
                        "unused coverage exemption {kw}({}::{}): the field is covered — \
                         delete the exemption",
                        e.ty, e.field
                    ),
                ));
            }
        }
        if a.justification.is_empty() {
            out.push(ctx.diag(
                a.line,
                diag::SUPPRESSION,
                format!(
                    "coverage exemption lacks a justification (write `{kw}(Type::field): <why>`)"
                ),
            ));
        }
        supps.push(Suppression {
            line: a.line,
            standalone: true,
            rules: vec![a.rule.to_string()],
            justification: a.justification.clone(),
            used: a.entries.iter().all(|e| e.used),
        });
    }
}

/// Resolves a struct name for an annotation, emitting a diagnostic on
/// failure.
fn resolve<'a>(
    ctx: &'a FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    kw: &str,
    line: u32,
    ty: &str,
) -> Option<&'a StructDef> {
    match ctx.index.resolve(ty, ctx.path, ctx.crate_name) {
        Resolved::Found(e) => Some(&e.def),
        Resolved::NotFound => {
            out.push(ctx.diag(
                line,
                rule,
                format!("unknown struct `{ty}` in {kw} (no such struct in the workspace scan)"),
            ));
            None
        }
        Resolved::Ambiguous(files) => {
            out.push(ctx.diag(
                line,
                rule,
                format!(
                    "struct `{ty}` in {kw} is ambiguous (defined in {}) — coverage \
                     annotations need a workspace-unique name",
                    files.join(", ")
                ),
            ));
            None
        }
    }
}

/// Marks exemption entries for `(fns, rule, ty)` as matched, flags
/// stale field names, and returns the set of validly exempted fields.
fn claim_exemptions(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    allows: &mut [AllowAnn],
    fns: &[usize],
    rule: &'static str,
    ty: &str,
    def: &StructDef,
) -> BTreeSet<String> {
    let mut exempt = BTreeSet::new();
    for a in allows.iter_mut() {
        if a.rule != rule || !fns.contains(&a.fn_idx) {
            continue;
        }
        for e in a.entries.iter_mut() {
            if e.ty != ty {
                continue;
            }
            e.matched = true;
            if def.fields.iter().any(|f| f.name == e.field) {
                exempt.insert(e.field.clone());
            } else {
                e.stale = true;
                out.push(ctx.diag(
                    a.line,
                    diag::SUPPRESSION,
                    format!(
                        "stale coverage exemption: struct `{ty}` has no field `{}`",
                        e.field
                    ),
                ));
            }
        }
    }
    exempt
}

/// Marks the exemption entries for `(fns, rule, ty, field)` as used.
fn use_exemption(allows: &mut [AllowAnn], fns: &[usize], rule: &str, ty: &str, field: &str) {
    for a in allows.iter_mut() {
        if a.rule != rule || !fns.contains(&a.fn_idx) {
            continue;
        }
        for e in a.entries.iter_mut() {
            if e.ty == ty && e.field == field {
                e.used = true;
            }
        }
    }
}

/// R8/R10: every (non-test, non-exempt) field of each annotated struct
/// must be referenced somewhere in the fn body.
#[allow(clippy::too_many_arguments)]
fn check_total(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    allows: &mut [AllowAnn],
    fn_idx: usize,
    ann_line: u32,
    tys: &[String],
    rule: &'static str,
    kw: &str,
) {
    let f = &ctx.parsed.fns[fn_idx];
    for ty in tys {
        let Some(def) = resolve(ctx, out, rule, kw, ann_line, ty) else {
            continue;
        };
        let refs = field_refs(ctx, f.body, ty, &def.fields);
        let exempt = claim_exemptions(ctx, out, allows, &[fn_idx], rule, ty, def);
        let mut missing = Vec::new();
        for field in def.fields.iter().filter(|f| !f.cfg_test) {
            if refs.contains_key(&field.name) {
                continue;
            }
            if exempt.contains(&field.name) {
                use_exemption(allows, &[fn_idx], rule, ty, &field.name);
                continue;
            }
            missing.push(field.name.clone());
        }
        if !missing.is_empty() {
            let list = missing
                .iter()
                .map(|m| format!("`{m}`"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic {
                file: ctx.path.to_string(),
                line: ann_line,
                rule,
                message: format!(
                    "{kw}({ty}): fn `{}` never references field(s) {list} of `{ty}` — \
                     cover them or justify with `// eagleeye-lint: {}({ty}::<field>): <why>`",
                    f.name,
                    allow_kw(rule)
                ),
                detail: Some(CoverageDetail {
                    annotation_line: ann_line,
                    struct_name: ty.clone(),
                    fields: missing,
                }),
            });
        }
    }
}

/// R9: the writer and reader of one type must cover identical field
/// sets in identical (first-reference) order.
#[allow(clippy::too_many_arguments)]
fn check_codec_pair(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    allows: &mut [AllowAnn],
    ty: &str,
    w_fn: usize,
    w_line: u32,
    r_fn: usize,
    r_line: u32,
) {
    let rule = diag::R9_CODEC_SYMMETRY;
    let Some(def) = resolve(ctx, out, rule, "codec-write/codec-read", w_line, ty) else {
        return;
    };
    let wf = &ctx.parsed.fns[w_fn];
    let rf = &ctx.parsed.fns[r_fn];
    let wrefs = field_refs(ctx, wf.body, ty, &def.fields);
    let rrefs = field_refs(ctx, rf.body, ty, &def.fields);
    let pair = [w_fn, r_fn];
    let exempt = claim_exemptions(ctx, out, allows, &pair, rule, ty, def);

    let mut neither = Vec::new();
    let mut unread = Vec::new();
    let mut unwritten = Vec::new();
    let mut common: BTreeSet<&str> = BTreeSet::new();
    for field in def.fields.iter().filter(|f| !f.cfg_test) {
        let in_w = wrefs.contains_key(&field.name);
        let in_r = rrefs.contains_key(&field.name);
        if exempt.contains(&field.name) {
            if !in_w || !in_r {
                use_exemption(allows, &pair, rule, ty, &field.name);
            }
            continue;
        }
        match (in_w, in_r) {
            (false, false) => neither.push(field.name.clone()),
            (true, false) => unread.push(field.name.clone()),
            (false, true) => unwritten.push(field.name.clone()),
            (true, true) => {
                common.insert(field.name.as_str());
            }
        }
    }

    let fmt = |v: &[String]| {
        v.iter()
            .map(|m| format!("`{m}`"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !neither.is_empty() {
        out.push(Diagnostic {
            file: ctx.path.to_string(),
            line: w_line,
            rule,
            message: format!(
                "codec-write/codec-read({ty}): field(s) {} are neither written by `{}` nor \
                 read by `{}` — serialize them or justify with `codec-allow({ty}::<field>): <why>`",
                fmt(&neither),
                wf.name,
                rf.name
            ),
            detail: Some(CoverageDetail {
                annotation_line: w_line,
                struct_name: ty.to_string(),
                fields: neither,
            }),
        });
    }
    if !unread.is_empty() {
        out.push(Diagnostic {
            file: ctx.path.to_string(),
            line: r_line,
            rule,
            message: format!(
                "codec-read({ty}): field(s) {} are written by `{}` but never read by `{}` — \
                 decoder drift",
                fmt(&unread),
                wf.name,
                rf.name
            ),
            detail: Some(CoverageDetail {
                annotation_line: r_line,
                struct_name: ty.to_string(),
                fields: unread,
            }),
        });
    }
    if !unwritten.is_empty() {
        out.push(Diagnostic {
            file: ctx.path.to_string(),
            line: w_line,
            rule,
            message: format!(
                "codec-write({ty}): field(s) {} are read by `{}` but never written by `{}` — \
                 encoder drift",
                fmt(&unwritten),
                rf.name,
                wf.name
            ),
            detail: Some(CoverageDetail {
                annotation_line: w_line,
                struct_name: ty.to_string(),
                fields: unwritten,
            }),
        });
    }

    // Order check over the fields both sides cover: first-reference
    // order in the writer must equal first-reference order in the
    // reader.
    let ordered = |refs: &BTreeMap<String, usize>| -> Vec<String> {
        let mut v: Vec<(&String, &usize)> = refs
            .iter()
            .filter(|(name, _)| common.contains(name.as_str()))
            .collect();
        v.sort_by_key(|(_, pos)| **pos);
        v.into_iter().map(|(name, _)| name.clone()).collect()
    };
    let ws = ordered(&wrefs);
    let rs = ordered(&rrefs);
    if ws != rs {
        let k = ws
            .iter()
            .zip(rs.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        out.push(Diagnostic {
            file: ctx.path.to_string(),
            line: w_line,
            rule,
            message: format!(
                "codec field order mismatch for `{ty}`: `{}` writes `{}` at position {k} but \
                 `{}` reads `{}` — symmetric codecs must visit fields in the same order",
                wf.name, ws[k], rf.name, rs[k]
            ),
            detail: Some(CoverageDetail {
                annotation_line: w_line,
                struct_name: ty.to_string(),
                fields: vec![ws[k].clone(), rs[k].clone()],
            }),
        });
    }
}

/// Field-reference pass: maps each referenced field name of `ty` to
/// the significant-token position of its first reference in `body`.
///
/// A reference is `expr.field`, `field:` (outside `::` paths), or a
/// shorthand ident directly inside a `Ty { … }` literal/pattern.
/// Tuple-struct ordinals are matched as `.0`-style integer tokens.
fn field_refs(
    ctx: &FileCtx<'_>,
    body: (usize, usize),
    ty: &str,
    fields: &[FieldDef],
) -> BTreeMap<String, usize> {
    let names: BTreeSet<&str> = fields.iter().map(|f| f.name.as_str()).collect();
    let mut first: BTreeMap<String, usize> = BTreeMap::new();
    let (lo, hi) = body;
    for p in lo..hi {
        let t = ctx.s(p);
        let nameish = matches!(t.kind, TokKind::Ident | TokKind::Int);
        if !nameish || !names.contains(t.text.as_str()) {
            continue;
        }
        let after_dot = p > lo && ctx.is_punct(p - 1, ".");
        let before_colon =
            p + 1 < hi && ctx.is_punct(p + 1, ":") && !(p > lo && ctx.is_punct(p - 1, "::"));
        if after_dot || before_colon {
            first.entry(t.text.clone()).or_insert(p);
        }
    }
    // Shorthand idents inside `Ty { … }` regions, at nesting depth 0
    // relative to the region.
    let mut p = lo;
    while p < hi {
        let t = ctx.s(p);
        if t.kind == TokKind::Ident && t.text == ty && p + 1 < hi && ctx.is_punct(p + 1, "{") {
            let close = item::brace_match(ctx.tokens, ctx.sig, p + 1).min(hi);
            let mut depth = 0i64;
            for q in (p + 2)..close {
                let u = ctx.s(q);
                if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        _ => {}
                    }
                } else if depth == 0
                    && u.kind == TokKind::Ident
                    && names.contains(u.text.as_str())
                    && (q + 1 == close || ctx.is_punct(q + 1, ",") || ctx.is_punct(q + 1, "}"))
                {
                    first.entry(u.text.clone()).or_insert(q);
                }
            }
            p = close + 1;
        } else {
            p += 1;
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use crate::engine::lint_source;

    fn rendered(src: &str) -> Vec<String> {
        lint_source("crates/core/src/x.rs", src)
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn digest_of_flags_missing_field() {
        let src = "struct Opts { a: u32, b: u32 }\n\
                   // eagleeye-lint: digest-of(Opts)\n\
                   fn digest(o: &Opts) -> u64 { u64::from(o.a) }\n";
        let out = rendered(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("[digest-coverage]"));
        assert!(out[0].contains("`b`"));
    }

    #[test]
    fn exemption_excuses_and_is_audited() {
        let clean = "struct Opts { a: u32, b: u32 }\n\
                     // eagleeye-lint: digest-of(Opts)\n\
                     // eagleeye-lint: digest-allow(Opts::b): execution shape only\n\
                     fn digest(o: &Opts) -> u64 { u64::from(o.a) }\n";
        assert!(rendered(clean).is_empty(), "{:?}", rendered(clean));

        let unused = "struct Opts { a: u32 }\n\
                      // eagleeye-lint: digest-of(Opts)\n\
                      // eagleeye-lint: digest-allow(Opts::a): not needed\n\
                      fn digest(o: &Opts) -> u64 { u64::from(o.a) }\n";
        let out = rendered(unused);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("unused coverage exemption"));
    }

    #[test]
    fn codec_pair_order_and_set_checks() {
        let src = "struct R { a: u32, b: u32 }\n\
                   // eagleeye-lint: codec-write(R)\n\
                   fn to_bytes(r: &R) { put(r.a); put(r.b); }\n\
                   // eagleeye-lint: codec-read(R)\n\
                   fn from_bytes() -> R { R { b: get(), a: get() } }\n";
        let out = rendered(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("order mismatch"));
    }

    #[test]
    fn fold_of_sees_exhaustive_destructure() {
        let src = "struct R { a: u32, b: u32 }\n\
                   // eagleeye-lint: fold-of(R)\n\
                   fn same(x: &R, o: &R) -> bool {\n\
                       let R { a, b } = x;\n\
                       *a == o.a && *b == o.b\n\
                   }\n";
        assert!(rendered(src).is_empty(), "{:?}", rendered(src));
    }

    #[test]
    fn cfg_test_fields_are_not_required() {
        let src = "struct R { a: u32, #[cfg(test)] dbg: u32 }\n\
                   // eagleeye-lint: fold-of(R)\n\
                   fn fold(r: &R) -> u32 { r.a }\n";
        assert!(rendered(src).is_empty(), "{:?}", rendered(src));
    }
}
