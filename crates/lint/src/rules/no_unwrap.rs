//! R1 `no-unwrap`: ban `.unwrap()` and `.expect(...)` in library
//! code. Test regions, `tests/`, `benches/`, `examples/`, binary
//! targets, and the `bench` harness crate are exempt — panicking on
//! bad input is the right behavior there.

use crate::diag::{Diagnostic, R1_NO_UNWRAP};
use crate::engine::{FileCtx, FileRole};

/// Crates whose `src/` is harness code rather than library code.
const EXEMPT_CRATES: &[&str] = &["bench"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib || EXEMPT_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(2) {
        if !ctx.is_punct(i, ".") {
            continue;
        }
        let line = ctx.s(i + 1).line;
        if ctx.test_lines.contains(line) {
            continue;
        }
        let unwrap = ctx.is_ident(i + 1, "unwrap")
            && ctx.is_punct(i + 2, "(")
            && i + 3 < ctx.sig.len()
            && ctx.is_punct(i + 3, ")");
        let expect = ctx.is_ident(i + 1, "expect") && ctx.is_punct(i + 2, "(");
        if unwrap || expect {
            let name = &ctx.s(i + 1).text;
            out.push(ctx.diag(
                line,
                R1_NO_UNWRAP,
                format!(
                    ".{name}(...) in library code — return a Result, use a total \
                     alternative, or suppress with a justified invariant"
                ),
            ));
        }
    }
}
