//! R7 `no-exit`: ban `process::exit` / `process::abort` outside binary
//! targets and the `bench` harness crate. Library code must surface
//! failures as `Result` (or at worst a panic, which supervision can
//! catch and checkpoints can survive); a hard exit skips destructors,
//! checkpoint flushes, and the caller's error handling. The one
//! legitimate library call site — the `eagleeye-harden` crash-injection
//! hook, whose exit *is* the fault being injected — carries a justified
//! suppression.

use crate::diag::{Diagnostic, R7_NO_EXIT};
use crate::engine::{FileCtx, FileRole};

/// Crates whose `src/` is harness code (figure binaries, CLI parsing)
/// where exiting on bad input is the right behavior.
const EXEMPT_CRATES: &[&str] = &["bench"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role == FileRole::Bin || EXEMPT_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(3) {
        if !(ctx.is_ident(i, "process") && ctx.is_punct(i + 1, "::")) {
            continue;
        }
        let callee = &ctx.s(i + 2).text;
        if !(callee == "exit" || callee == "abort") || !ctx.is_punct(i + 3, "(") {
            continue;
        }
        out.push(ctx.diag(
            ctx.s(i + 2).line,
            R7_NO_EXIT,
            format!(
                "process::{callee} outside src/bin and the bench harness — return a \
                 Result (or panic under supervision) so checkpoints and callers \
                 see the failure"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::lint_source;

    fn rule_lines(path: &str, src: &str) -> Vec<u32> {
        lint_source(path, src)
            .diagnostics
            .iter()
            .filter(|d| d.rule == super::R7_NO_EXIT)
            .map(|d| d.line)
            .collect()
    }

    #[test]
    fn flags_exit_and_abort_in_library_code() {
        let src = "fn f() {\n    std::process::exit(1);\n    process::abort();\n}\n";
        assert_eq!(rule_lines("crates/core/src/x.rs", src), vec![2, 3]);
    }

    #[test]
    fn binaries_and_bench_are_exempt() {
        let src = "fn main() { std::process::exit(2); }\n";
        assert!(rule_lines("crates/lint/src/main.rs", src).is_empty());
        assert!(rule_lines("src/bin/eagleeye.rs", src).is_empty());
        assert!(rule_lines("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tests_are_not_exempt() {
        // A test calling exit kills the whole libtest harness.
        let src = "fn f() { std::process::exit(1); }\n";
        assert_eq!(rule_lines("crates/core/tests/t.rs", src), vec![1]);
    }

    #[test]
    fn suppression_absorbs_the_diagnostic() {
        let src = "fn f() {\n    // eagleeye-lint: allow(no-exit): injected fault\n    \
                   std::process::exit(42);\n}\n";
        assert!(rule_lines("crates/harden/src/crash.rs", src).is_empty());
    }

    #[test]
    fn unrelated_exit_identifiers_pass() {
        let src = "fn f() { exit(); my::process::run(); let process = 1; }\n";
        assert!(rule_lines("crates/core/src/x.rs", src).is_empty());
    }
}
