//! R4 `float-eq`: ban `==` / `!=` when either operand is visibly a
//! float — a float literal (possibly negated) or an `as f64` / `as
//! f32` cast. Exact float equality is almost always a latent NaN or
//! rounding bug; use `total_cmp`, range checks, or an epsilon helper.
//!
//! This is a token-level heuristic: comparisons between two
//! float-typed *variables* are invisible without type inference and
//! are left to clippy's `float_cmp` (see DESIGN.md §11). Test regions
//! are exempt — asserting bit-identical results is exactly how the
//! determinism goldens work.

use crate::diag::{Diagnostic, R4_FLOAT_EQ};
use crate::engine::{FileCtx, FileRole};
use crate::lexer::TokKind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    for i in 0..ctx.sig.len() {
        let op = ctx.s(i);
        if op.kind != TokKind::Punct || !(op.text == "==" || op.text == "!=") {
            continue;
        }
        if ctx.test_lines.contains(op.line) {
            continue;
        }
        let left_float = i >= 1 && ctx.s(i - 1).kind == TokKind::Float;
        let left_cast = i >= 2
            && ctx.is_ident(i - 2, "as")
            && (ctx.is_ident(i - 1, "f64") || ctx.is_ident(i - 1, "f32"));
        let right_float = i + 1 < ctx.sig.len()
            && (ctx.s(i + 1).kind == TokKind::Float
                || (ctx.is_punct(i + 1, "-")
                    && i + 2 < ctx.sig.len()
                    && ctx.s(i + 2).kind == TokKind::Float));
        if left_float || left_cast || right_float {
            out.push(ctx.diag(
                op.line,
                R4_FLOAT_EQ,
                format!(
                    "float `{}` comparison — use total_cmp, a range check, or an \
                     epsilon helper",
                    op.text
                ),
            ));
        }
    }
}
