//! R6 `metric-namespace`: string-literal keys passed to the
//! `eagleeye-obs` recording API must match the DESIGN.md §10.2
//! namespace — `subsystem/name` (two or more `/`-separated
//! `[a-z0-9_]` segments whose first segment names a workspace
//! subsystem). Keys built with `format!` are invisible to this rule;
//! keep emitted keys literal so the namespace stays auditable.
//!
//! Test code is exempt (unit tests exercise the registry with
//! throwaway keys like `"c"`).

use crate::diag::{Diagnostic, R6_METRIC_NAMESPACE};
use crate::engine::{FileCtx, FileRole};
use crate::lexer::TokKind;

/// The `eagleeye-obs` recording methods whose first argument is a
/// metric key.
const METHODS: &[&str] = &[
    "incr",
    "add",
    "gauge_max",
    "observe",
    "record_duration",
    "time",
    "span",
];

/// First path segment must name a workspace subsystem (crate short
/// names plus the root package).
const SUBSYSTEMS: &[&str] = &[
    "bench", "check", "core", "datasets", "detect", "eagleeye", "exec", "geo", "harden", "ilp",
    "lint", "obs", "orbit", "rng", "sim",
];

fn valid_key(key: &str) -> bool {
    let segments: Vec<&str> = key.split('/').collect();
    segments.len() >= 2
        && SUBSYSTEMS.contains(&segments[0])
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role == FileRole::Test {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(3) {
        if !(ctx.is_punct(i, ".")
            && ctx.s(i + 1).kind == TokKind::Ident
            && METHODS.contains(&ctx.s(i + 1).text.as_str())
            && ctx.is_punct(i + 2, "(")
            && ctx.s(i + 3).kind == TokKind::Str)
        {
            continue;
        }
        let key_tok = ctx.s(i + 3);
        if ctx.test_lines.contains(key_tok.line) {
            continue;
        }
        let key = key_tok.str_content();
        if !valid_key(key) {
            out.push(ctx.diag(
                key_tok.line,
                R6_METRIC_NAMESPACE,
                format!(
                    "metric key \"{key}\" does not match the `subsystem/name` namespace \
                     (DESIGN.md \u{a7}10.2): lowercase [a-z0-9_] segments, first segment one \
                     of the workspace subsystems"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::valid_key;

    #[test]
    fn namespace_shape() {
        assert!(valid_key("core/evaluate"));
        assert!(valid_key("core/evaluate/propagate"));
        assert!(valid_key("ilp/nodes_explored"));
        assert!(!valid_key("core")); // needs >= 2 segments
        assert!(!valid_key("unknown/sub"));
        assert!(!valid_key("core/Evaluate")); // uppercase
        assert!(!valid_key("core//x")); // empty segment
        assert!(!valid_key("core.evaluate")); // wrong separator
    }
}
