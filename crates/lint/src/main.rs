//! CLI for the workspace lint engine.
//!
//! ```text
//! eagleeye-lint [--root DIR] [--deny] [--format text|json]
//!               [--list-suppressions] [--baseline FILE]
//!               [--explain RULE]
//! ```
//!
//! * default: print diagnostics, exit 0 (advisory mode);
//! * `--deny`: exit 1 when any diagnostic survives (CI mode);
//! * `--format json`: machine-readable diagnostics (coverage findings
//!   carry `annotation_line`, `struct`, and `fields`);
//! * `--list-suppressions`: audit every inline suppression instead of
//!   printing diagnostics;
//! * `--baseline FILE`: with `--list-suppressions`, compare the
//!   suppression inventory against a checked-in allowlist and exit 1
//!   on any new or stale entry;
//! * `--explain RULE`: print the rule's rationale block and exit.

use eagleeye_lint::diag::{diagnostics_json, explain, json_escape, RULES};
use eagleeye_lint::engine::lint_workspace;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    deny: bool,
    json: bool,
    list_suppressions: bool,
    baseline: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: eagleeye-lint [--root DIR] [--deny] [--format text|json] \
         [--list-suppressions] [--baseline FILE] [--explain RULE]\n\nrules:"
    );
    for (id, summary) in RULES {
        eprintln!("  {id:<18} {summary}");
    }
    std::process::exit(2)
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        root: PathBuf::from("."),
        deny: false,
        json: false,
        list_suppressions: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => cli.root = PathBuf::from(v),
                None => usage(),
            },
            "--deny" => cli.deny = true,
            "--format" => match args.next().as_deref() {
                Some("text") => cli.json = false,
                Some("json") => cli.json = true,
                _ => usage(),
            },
            "--list-suppressions" => cli.list_suppressions = true,
            "--explain" => match args.next() {
                Some(rule) => run_explain(&rule),
                None => usage(),
            },
            "--baseline" => match args.next() {
                Some(v) => cli.baseline = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cli
}

/// Prints the rationale block for one rule (or the `suppression`
/// meta-rule) and exits; unknown rules list the known ids and exit 2.
fn run_explain(rule: &str) -> ! {
    match explain(rule) {
        Some(block) => {
            println!("{rule}\n{}\n\n{block}", "=".repeat(rule.len()));
            std::process::exit(0)
        }
        None => {
            eprintln!(
                "unknown rule `{rule}`; known rules: {}, suppression",
                RULES
                    .iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2)
        }
    }
}

/// `(file, rule) -> count` inventory of the given suppressions.
fn inventory(report: &eagleeye_lint::LintReport) -> BTreeMap<(String, String), usize> {
    let mut inv = BTreeMap::new();
    for (file, s) in &report.suppressions {
        for rule in &s.rules {
            *inv.entry((file.clone(), rule.clone())).or_insert(0) += 1;
        }
    }
    inv
}

/// Baseline file format: `<count> <rule> <path>` per line, `#`
/// comments and blank lines ignored.
fn parse_baseline(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut inv = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (count, rule, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(c), Some(r), Some(p)) => (c, r, p),
            _ => {
                return Err(format!(
                    "baseline line {}: expected `<count> <rule> <path>`",
                    lineno + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", lineno + 1))?;
        inv.insert((path.to_string(), rule.to_string()), count);
    }
    Ok(inv)
}

fn run_list_suppressions(cli: &Cli, report: &eagleeye_lint::LintReport) -> ExitCode {
    if cli.json {
        let mut out = String::from("{\n  \"suppressions\": [");
        for (i, (file, s)) in report.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rules\": [{}], \
                 \"used\": {}, \"justification\": \"{}\"}}",
                json_escape(file),
                s.line,
                s.rules
                    .iter()
                    .map(|r| format!("\"{}\"", json_escape(r)))
                    .collect::<Vec<_>>()
                    .join(", "),
                s.used,
                json_escape(&s.justification)
            ));
        }
        out.push_str("\n  ]\n}");
        println!("{out}");
    } else {
        for (file, s) in &report.suppressions {
            println!(
                "{}:{}: allow({}) [{}] {}",
                file,
                s.line,
                s.rules.join(", "),
                if s.used { "used" } else { "UNUSED" },
                s.justification
            );
        }
        eprintln!(
            "{} suppression(s) across {} file(s) scanned",
            report.suppressions.len(),
            report.files_scanned
        );
    }

    let Some(baseline_path) = &cli.baseline else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let current = inventory(report);
    let mut drift = false;
    for ((file, rule), n) in &current {
        let allowed = baseline
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if *n > allowed {
            eprintln!(
                "NEW suppression(s): {n} x allow({rule}) in {file} but baseline allows {allowed} \
                 — justify and add to the allowlist, or fix the code"
            );
            drift = true;
        }
    }
    for ((file, rule), allowed) in &baseline {
        let n = current
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if n < *allowed {
            eprintln!(
                "STALE baseline entry: allowlist has {allowed} x {rule} in {file} but the \
                 source has {n} — prune the allowlist"
            );
            drift = true;
        }
    }
    if drift {
        ExitCode::FAILURE
    } else {
        eprintln!("suppressions match baseline {}", baseline_path.display());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let cli = parse_args();
    let report = match lint_workspace(&cli.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", cli.root.display());
            return ExitCode::from(2);
        }
    };

    if cli.list_suppressions {
        return run_list_suppressions(&cli, &report);
    }

    if cli.json {
        print!("{}", diagnostics_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "{} diagnostic(s) across {} file(s) scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    if cli.deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
