//! File classification, test-region detection, per-file rule driving,
//! and the workspace walk (including the crate-level
//! `#![forbid(unsafe_code)]` pass).

use crate::diag::{self, Diagnostic};
use crate::item::{self, ParsedFile, StructIndex};
use crate::lexer::{self, TokKind, Token};
use crate::rules;
use crate::suppress::{self, Suppression};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// What kind of compilation target a file belongs to. Rules scope
/// themselves by role (e.g. `no-unwrap` only fires in `Lib`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code under `src/` (the default).
    Lib,
    /// Binary targets: `src/bin/**`, `src/main.rs`, `build.rs`.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Bench targets under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` /
/// `#[bench]` items.
#[derive(Debug, Default, Clone)]
pub struct LineSet(Vec<(u32, u32)>);

impl LineSet {
    pub fn contains(&self, line: u32) -> bool {
        self.0.iter().any(|&(a, b)| a <= line && line <= b)
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Short crate name: `core`, `obs`, …, or `eagleeye` for the root
    /// package.
    pub crate_name: &'a str,
    pub role: FileRole,
    /// Full token stream, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens.
    pub sig: &'a [usize],
    /// Lines inside test-gated regions.
    pub test_lines: &'a LineSet,
    /// Item-level structural parse of this file (structs, fns,
    /// coverage annotations).
    pub parsed: &'a ParsedFile,
    /// Workspace-wide struct lookup for coverage annotations. For
    /// single-file lints this only contains the file's own structs.
    pub index: &'a StructIndex,
}

impl FileCtx<'_> {
    /// Significant token at `sig` position `i`.
    pub fn s(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// True when the significant token at `i` is an identifier with
    /// exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        let t = self.s(i);
        t.kind == TokKind::Ident && t.text == text
    }

    /// True when the significant token at `i` is punctuation with
    /// exactly this text.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        let t = self.s(i);
        t.kind == TokKind::Punct && t.text == text
    }

    pub fn diag(&self, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic::new(self.path, line, rule, message)
    }
}

/// Derives `(crate_name, role)` from a workspace-relative path.
pub fn classify(path: &str) -> (String, FileRole) {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("eagleeye")
        .to_string();
    let role = if path.contains("/tests/") || path.starts_with("tests/") {
        FileRole::Test
    } else if path.contains("/benches/") || path.starts_with("benches/") {
        FileRole::Bench
    } else if path.contains("/examples/") || path.starts_with("examples/") {
        FileRole::Example
    } else if path.contains("/bin/") || path.ends_with("/main.rs") || path.ends_with("build.rs") {
        FileRole::Bin
    } else {
        FileRole::Lib
    };
    (crate_name, role)
}

/// Renders the attribute token texts between `[` and its matching `]`
/// as one concatenated string (`cfg(test)`, `cfg(not(test))`, …) and
/// returns it with the significant-index just past the `]`.
pub(crate) fn attr_text(tokens: &[Token], sig: &[usize], open: usize) -> (String, usize) {
    let mut depth = 0usize;
    let mut text = String::new();
    let mut i = open;
    while i < sig.len() {
        let t = &tokens[sig[i]];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return (text, i + 1);
                }
            }
            _ => text.push_str(&t.text),
        }
        i += 1;
    }
    (text, i)
}

pub(crate) fn attr_is_test(attr: &str) -> bool {
    attr == "test"
        || attr == "bench"
        || (attr.starts_with("cfg") && attr.contains("test") && !attr.contains("not(test"))
}

/// Finds the line ranges of items annotated `#[cfg(test)]`, `#[test]`,
/// or `#[bench]`. The item extends to the matching close brace of its
/// first block, or to the terminating `;` for brace-less items.
pub fn test_regions(tokens: &[Token], sig: &[usize]) -> LineSet {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if !(tokens[sig[i]].text == "#"
            && i + 1 < sig.len()
            && tokens[sig[i + 1]].kind == TokKind::Punct
            && tokens[sig[i + 1]].text == "[")
        {
            i += 1;
            continue;
        }
        let start_line = tokens[sig[i]].line;
        let (attr, mut j) = attr_text(tokens, sig, i + 1);
        if !attr_is_test(&attr) {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < sig.len() && tokens[sig[j]].text == "#" && tokens[sig[j + 1]].text == "[" {
            let (_, next) = attr_text(tokens, sig, j + 1);
            j = next;
        }
        // Scan to the end of the item: the matching `}` of its first
        // brace block, or a `;` reached before any `{`.
        let mut depth = 0usize;
        let mut end_line = start_line;
        let mut entered = false;
        while j < sig.len() {
            let t = &tokens[sig[j]];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => {
                    depth += 1;
                    entered = true;
                }
                (TokKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                (TokKind::Punct, ";") if !entered => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i += 2; // continue scanning inside the region for nested attrs
    }
    LineSet(regions)
}

/// Result of linting one file.
pub struct FileLint {
    pub diagnostics: Vec<Diagnostic>,
    pub suppressions: Vec<Suppression>,
    /// True when any `unsafe` token appears outside comments/strings.
    pub has_unsafe: bool,
    /// True when the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// Pass-1 product for one file: lexed, classified, and structurally
/// parsed, ready to lint once the workspace-wide struct index exists.
pub(crate) struct PreFile {
    rel: String,
    crate_name: String,
    role: FileRole,
    tokens: Vec<Token>,
    sig: Vec<usize>,
    test_lines: LineSet,
    parsed: ParsedFile,
}

impl PreFile {
    pub(crate) fn new(path: &str, src: &str) -> PreFile {
        let tokens = lexer::lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_lines = test_regions(&tokens, &sig);
        let parsed = item::parse(&tokens, &sig);
        let (crate_name, role) = classify(path);
        PreFile {
            rel: path.to_string(),
            crate_name,
            role,
            tokens,
            sig,
            test_lines,
            parsed,
        }
    }
}

/// Pass 2: runs every rule on a prepared file against the given
/// struct index.
fn lint_pre(pre: &PreFile, index: &StructIndex) -> FileLint {
    let ctx = FileCtx {
        path: &pre.rel,
        crate_name: &pre.crate_name,
        role: pre.role,
        tokens: &pre.tokens,
        sig: &pre.sig,
        test_lines: &pre.test_lines,
        parsed: &pre.parsed,
        index,
    };

    let mut raw = Vec::new();
    rules::check_all(&ctx, &mut raw);
    // Coverage rules audit their own per-field exemptions, so their
    // suppression records join the inventory *after* the generic
    // suppression audit below (which would otherwise double-flag
    // them as unused).
    let mut cov_supps = Vec::new();
    rules::coverage::check(&ctx, &mut raw, &mut cov_supps);

    let (mut supps, mut diags) = suppress::scan(&pre.rel, &pre.tokens);
    diags.extend(suppress::apply(raw, &mut supps));
    diags.extend(suppress::audit(&pre.rel, &supps));
    supps.extend(cov_supps);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let has_unsafe = pre
        .sig
        .iter()
        .any(|&i| pre.tokens[i].kind == TokKind::Ident && pre.tokens[i].text == "unsafe");
    let has_forbid_unsafe = has_inner_forbid_unsafe(&pre.tokens, &pre.sig);

    FileLint {
        diagnostics: diags,
        suppressions: supps,
        has_unsafe,
        has_forbid_unsafe,
    }
}

/// Lints one file from source. `path` drives crate/role
/// classification; suppressions are already applied, and suppression
/// audit diagnostics (missing justification / unused) are included.
/// Coverage annotations resolve against this file's own structs only.
pub fn lint_source(path: &str, src: &str) -> FileLint {
    let pre = PreFile::new(path, src);
    let mut index = StructIndex::default();
    index.add_file(&pre.rel, &pre.crate_name, &pre.parsed);
    lint_pre(&pre, &index)
}

/// Detects an inner `#![forbid(unsafe_code)]` attribute.
fn has_inner_forbid_unsafe(tokens: &[Token], sig: &[usize]) -> bool {
    sig.windows(2).enumerate().any(|(i, w)| {
        tokens[w[0]].text == "#" && tokens[w[1]].text == "!" && {
            let (attr, _) = attr_text(tokens, sig, i + 2);
            attr.replace(' ', "").contains("forbid(unsafe_code)")
        }
    })
}

/// Full lint report for a workspace walk.
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    /// `(file, suppression)` for every suppression comment found.
    pub suppressions: Vec<(String, Suppression)>,
    pub files_scanned: usize,
}

/// Directories never descended into. `fixtures` holds the lint
/// crate's own intentionally-dirty test inputs.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

fn walk_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`'s `crates/`, `src/`, `tests/`,
/// and `examples/` directories in two passes — pass 1 lexes and
/// structurally parses everything into a workspace [`StructIndex`]
/// (so coverage annotations can name structs from other files), pass
/// 2 runs the rules — then runs the crate-level `unsafe-hygiene` pass
/// (`#![forbid(unsafe_code)]` required in the `lib.rs` of every crate
/// that contains no `unsafe` at all).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut files)?;
        }
    }

    let mut pres = Vec::with_capacity(files.len());
    let mut index = StructIndex::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let pre = PreFile::new(&rel, &src);
        index.add_file(&pre.rel, &pre.crate_name, &pre.parsed);
        pres.push(pre);
    }

    let mut diagnostics = Vec::new();
    let mut suppressions = Vec::new();
    // crate name -> (has_unsafe anywhere, lib.rs path, lib.rs forbid)
    let mut crates: BTreeMap<String, (bool, Option<String>, bool)> = BTreeMap::new();

    for pre in &pres {
        let lint = lint_pre(pre, &index);
        diagnostics.extend(lint.diagnostics);
        suppressions.extend(lint.suppressions.into_iter().map(|s| (pre.rel.clone(), s)));

        let entry = crates
            .entry(pre.crate_name.clone())
            .or_insert((false, None, false));
        entry.0 |= lint.has_unsafe;
        if pre.rel.ends_with("src/lib.rs") {
            entry.1 = Some(pre.rel.clone());
            entry.2 = lint.has_forbid_unsafe;
        }
    }

    for (name, (has_unsafe, lib_rs, forbid)) in &crates {
        if let Some(lib_rs) = lib_rs {
            if !has_unsafe && !forbid {
                diagnostics.push(Diagnostic::new(
                    lib_rs.clone(),
                    1,
                    diag::R5_UNSAFE_HYGIENE,
                    format!(
                        "crate `{name}` contains no unsafe code but its lib.rs lacks \
                         #![forbid(unsafe_code)]"
                    ),
                ));
            }
        }
    }

    diagnostics
        .sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        suppressions,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_roles() {
        assert_eq!(
            classify("crates/core/src/lib.rs"),
            ("core".into(), FileRole::Lib)
        );
        assert_eq!(
            classify("crates/bench/src/bin/fig1.rs"),
            ("bench".into(), FileRole::Bin)
        );
        assert_eq!(
            classify("crates/ilp/tests/oracle.rs"),
            ("ilp".into(), FileRole::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/solver.rs"),
            ("bench".into(), FileRole::Bench)
        );
        assert_eq!(classify("src/lib.rs"), ("eagleeye".into(), FileRole::Lib));
        assert_eq!(
            classify("src/bin/eagleeye.rs"),
            ("eagleeye".into(), FileRole::Bin)
        );
        assert_eq!(
            classify("examples/demo.rs"),
            ("eagleeye".into(), FileRole::Example)
        );
    }

    fn regions(src: &str) -> LineSet {
        let tokens = lexer::lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        test_regions(&tokens, &sig)
    }

    #[test]
    fn cfg_test_mod_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let r = regions(src);
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert!(r.contains(4));
        assert!(r.contains(5));
        assert!(!r.contains(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        assert!(regions("#[cfg(not(test))]\nmod real { fn f() {} }\n").is_empty());
    }

    #[test]
    fn braceless_item_ends_at_semicolon() {
        let r = regions("#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n");
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn test_attr_with_extra_attrs() {
        let r = regions("#[test]\n#[ignore]\nfn t() {\n  body();\n}\nfn g() {}\n");
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }

    #[test]
    fn forbid_attr_detection() {
        let l = lint_source("crates/geo/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert!(l.has_forbid_unsafe);
        let l = lint_source("crates/geo/src/lib.rs", "#![warn(missing_docs)]\n");
        assert!(!l.has_forbid_unsafe);
    }
}
