//! `eagleeye-lint` — a dependency-free, std-only static-analysis
//! engine that mechanically enforces the reproduction's core
//! invariants across the workspace (DESIGN.md §11):
//!
//! | rule id            | enforces |
//! |--------------------|----------|
//! | `no-unwrap`        | no `.unwrap()`/`.expect(...)` in library code |
//! | `determinism`      | no `HashMap`/`HashSet` in crates feeding serialized or scheduled output |
//! | `clock`            | no `Instant::now`/`SystemTime::now` outside `obs`/`exec`/`bench` |
//! | `float-eq`         | no `==`/`!=` against float literals or casts |
//! | `unsafe-hygiene`   | `// SAFETY:` on every `unsafe`; `#![forbid(unsafe_code)]` elsewhere |
//! | `metric-namespace` | literal metric keys match `subsystem/name` (DESIGN.md §10.2) |
//! | `digest-coverage`  | `digest-of(Type)` fns reference every field or justify the gap |
//! | `codec-symmetry`   | `codec-write`/`codec-read` pairs cover the same fields in order |
//! | `fold-coverage`    | `fold-of(Type)` fold/compare fns handle every field |
//!
//! Rules run on a token stream from a real lexer
//! ([`lexer`]) — strings, raw strings, char literals, nested block
//! comments, and doc comments can never trip a rule. The drift rules
//! (R8–R10, DESIGN.md §16) additionally use an item-level structural
//! parser ([`item`]) that recovers struct field lists and fn bodies,
//! plus a field-reference pass over annotated fns. Violations that
//! are correct *by design* carry inline, audited suppressions
//! ([`suppress`]) — including per-field coverage exemptions — and the
//! binary's `--baseline` mode pins the full suppression inventory to
//! the checked-in `lint-allowlist.txt`.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod item;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use diag::Diagnostic;
pub use engine::{lint_source, lint_workspace, FileRole, LintReport};
