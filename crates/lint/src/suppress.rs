//! Inline suppression comments.
//!
//! Syntax (a plain `//` comment, never a doc comment):
//!
//! ```text
//! // eagleeye-lint: allow(clock): deadline enforcement is wall-clock by design
//! ```
//!
//! A suppression applies to diagnostics of the listed rules on **its
//! own line**, or — when the comment stands alone on its line — on the
//! **next** line. The text after the closing parenthesis is the
//! mandatory justification; a suppression without one is itself a
//! diagnostic, as is a suppression that matches nothing (so stale
//! allows cannot linger) or one naming an unknown rule.

use crate::diag::{self, Diagnostic};
use crate::lexer::{TokKind, Token};

/// One parsed `// eagleeye-lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub line: u32,
    /// True when no code token shares the comment's line (the
    /// suppression then covers the following line).
    pub standalone: bool,
    /// Rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Justification text after the rule list (may be empty — which
    /// the engine reports).
    pub justification: String,
    /// Set by the engine when the suppression absorbed a diagnostic.
    pub used: bool,
}

pub const MARKER: &str = "eagleeye-lint:";

/// Scans the token stream for suppression comments. Malformed marker
/// comments are returned as `suppression` diagnostics.
pub fn scan(file: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut supps = Vec::new();
    let mut diags = Vec::new();
    // Lines that hold at least one non-comment token: a suppression
    // comment on such a line is trailing, not standalone.
    let code_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    for tok in tokens {
        if tok.kind != TokKind::LineComment || tok.doc {
            continue;
        }
        let body = tok.comment_body();
        let Some(at) = body.find(MARKER) else {
            continue;
        };
        let rest = body[at + MARKER.len()..].trim_start();
        // Coverage directives (digest-of, codec-write, …) share the
        // marker but are parsed and audited by `item`/`rules::coverage`.
        if crate::item::DIRECTIVE_KEYWORDS.contains(&crate::item::leading_keyword(rest)) {
            continue;
        }
        let bad = |msg: &str| Diagnostic::new(file.to_string(), tok.line, diag::SUPPRESSION, msg);
        let Some(rest) = rest.strip_prefix("allow") else {
            diags.push(bad("malformed suppression: expected `allow(<rule>, ...)`"));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            diags.push(bad("malformed suppression: expected `(` after `allow`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(bad("malformed suppression: unclosed rule list"));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            diags.push(bad("malformed suppression: empty rule list"));
            continue;
        }
        for r in &rules {
            if !diag::is_rule(r) {
                diags.push(bad(&format!(
                    "unknown rule `{r}` in suppression (known: {})",
                    diag::RULES
                        .iter()
                        .map(|(id, _)| *id)
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        let justification = rest[close + 1..]
            .trim_start_matches([':', ' ', '-', '\u{2014}'])
            .trim()
            .to_string();
        supps.push(Suppression {
            line: tok.line,
            standalone: !code_lines.contains(&tok.line),
            rules,
            justification,
            used: false,
        });
    }
    (supps, diags)
}

/// Applies `supps` to `diags`: returns the surviving diagnostics and
/// marks the suppressions that absorbed one as used. `suppression`
/// meta-diagnostics are never themselves suppressible.
pub fn apply(diags: Vec<Diagnostic>, supps: &mut [Suppression]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            if d.rule == diag::SUPPRESSION {
                return true;
            }
            for s in supps.iter_mut() {
                let covers = s.line == d.line || (s.standalone && s.line + 1 == d.line);
                if covers && s.rules.iter().any(|r| r == d.rule) {
                    s.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Post-pass diagnostics about the suppressions themselves: missing
/// justifications and unused entries.
pub fn audit(file: &str, supps: &[Suppression]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for s in supps {
        if s.justification.is_empty() {
            out.push(Diagnostic::new(
                file.to_string(),
                s.line,
                diag::SUPPRESSION,
                format!(
                    "suppression for {} lacks a justification (write `allow({}): <why>`)",
                    s.rules.join(", "),
                    s.rules.join(", ")
                ),
            ));
        }
        if !s.used {
            out.push(Diagnostic::new(
                file.to_string(),
                s.line,
                diag::SUPPRESSION,
                format!(
                    "unused suppression for {} (no diagnostic on this or the next line)",
                    s.rules.join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_rules_and_justification() {
        let toks = lex("// eagleeye-lint: allow(clock, no-unwrap): deadline is wall-clock\n");
        let (supps, diags) = scan("f.rs", &toks);
        assert!(diags.is_empty());
        assert_eq!(supps.len(), 1);
        assert_eq!(supps[0].rules, vec!["clock", "no-unwrap"]);
        assert_eq!(supps[0].justification, "deadline is wall-clock");
        assert!(supps[0].standalone);
    }

    #[test]
    fn trailing_comment_is_not_standalone() {
        let toks = lex("let x = 1; // eagleeye-lint: allow(clock): why\n");
        let (supps, _) = scan("f.rs", &toks);
        assert!(!supps[0].standalone);
    }

    #[test]
    fn coverage_directives_are_left_to_the_item_layer() {
        let toks = lex("// eagleeye-lint: digest-of(Opts)\n\
             // eagleeye-lint: digest-allow(Opts::a): why\n\
             // eagleeye-lint: codec-write(R)\n");
        let (supps, diags) = scan("f.rs", &toks);
        assert!(supps.is_empty());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_rule_is_reported() {
        let toks = lex("// eagleeye-lint: allow(nope): x\n");
        let (_, diags) = scan("f.rs", &toks);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn standalone_covers_next_line_only() {
        let mut supps = vec![Suppression {
            line: 5,
            standalone: true,
            rules: vec!["clock".into()],
            justification: "why".into(),
            used: false,
        }];
        let mk = |line| Diagnostic::new("f.rs", line, crate::diag::R3_CLOCK, "");
        let left = apply(vec![mk(6), mk(7)], &mut supps);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 7);
        assert!(supps[0].used);
    }

    #[test]
    fn audit_flags_missing_justification_and_unused() {
        let supps = vec![Suppression {
            line: 1,
            standalone: true,
            rules: vec!["clock".into()],
            justification: String::new(),
            used: false,
        }];
        let out = audit("f.rs", &supps);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("lacks a justification"));
        assert!(out[1].message.contains("unused suppression"));
    }
}
