//! Item-level structural parser — the second analysis layer on top of
//! the token stream (DESIGN.md §16).
//!
//! The token rules (R1–R7) never need to know what a `struct` is; the
//! drift rules (R8–R10) do. This module recovers just enough structure
//! from the significant-token stream to drive them:
//!
//! * `struct` items with their **ordered** field lists (named, tuple,
//!   and unit structs; `#[cfg(test)]`-gated fields are marked so
//!   coverage rules can skip them);
//! * `fn` items with the significant-token range of their bodies
//!   (the input to the field-reference pass in `rules::coverage`);
//! * coverage **annotations** — `// eagleeye-lint:` comments carrying
//!   one of the [`DIRECTIVE_KEYWORDS`] — parsed and attached to the fn
//!   they precede or sit inside.
//!
//! It is a *total* parser: on input it does not understand it skips a
//! token and carries on, because lint must never crash on weird-but-
//! valid Rust. The price is approximation (no type resolution, no
//! macro expansion), which is fine for an opt-in, annotation-driven
//! analysis.
//!
//! The one lexer subtlety that matters here: multi-char operators are
//! fused, so `Vec<Vec<u32>>` ends in a single `>>` token. Every angle-
//! depth walk below steps by ±2 for `<<`/`>>`.

use crate::diag;
use crate::engine::{attr_is_test, attr_text};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// One struct field, in declaration order. Tuple-struct fields are
/// named by ordinal (`"0"`, `"1"`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub line: u32,
    /// True when the field carries a `#[cfg(test))]`-style attribute;
    /// coverage rules do not require test-only fields.
    pub cfg_test: bool,
}

/// One `struct` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Line of the closing `}`/`)`/`;`.
    pub end_line: u32,
    pub tuple: bool,
    pub fields: Vec<FieldDef>,
}

/// Coverage-rule annotation kinds (the grammar is documented in
/// DESIGN.md §16.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnKind {
    /// `digest-of(TypeA, TypeB)` — R8: the fn must reference every
    /// field of each named struct.
    DigestOf(Vec<String>),
    /// `fold-of(TypeA, …)` — R10: same obligation for fold/compare
    /// fns.
    FoldOf(Vec<String>),
    /// `codec-write(TypeA, …)` — R9 writer half.
    CodecWrite(Vec<String>),
    /// `codec-read(TypeA, …)` — R9 reader half.
    CodecRead(Vec<String>),
    /// `digest-allow(Type::field, …): why` (and `codec-allow`,
    /// `fold-allow`) — a justified per-field exemption.
    Allow {
        /// The coverage rule id the exemption applies to.
        rule: &'static str,
        /// `(type, field)` pairs, sharing one justification.
        fields: Vec<(String, String)>,
        justification: String,
    },
}

/// One parsed annotation comment, attached to a fn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    pub line: u32,
    pub kind: AnnKind,
}

/// One `fn` item with a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing `}`.
    pub end_line: u32,
    /// Significant-token index range of the body, exclusive of the
    /// braces: `sig[body.0 .. body.1]`.
    pub body: (usize, usize),
    /// Coverage annotations preceding the header or inside the body.
    pub annotations: Vec<Annotation>,
}

/// Structural parse of one file.
#[derive(Debug, Default, Clone)]
pub struct ParsedFile {
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
    /// `(line, message)` for malformed or dangling coverage
    /// annotations; the engine surfaces them as `suppression`
    /// diagnostics so they can never be suppressed away.
    pub malformed: Vec<(u32, String)>,
}

/// The directive keywords that distinguish coverage annotations from
/// plain `allow(...)` suppressions after the `eagleeye-lint:` marker.
pub const DIRECTIVE_KEYWORDS: &[&str] = &[
    "digest-of",
    "digest-allow",
    "codec-write",
    "codec-read",
    "codec-allow",
    "fold-of",
    "fold-allow",
];

/// Leading keyword of a marker-comment body (lowercase letters and
/// dashes), used by both this module and `suppress` to route a
/// comment to the right parser.
pub fn leading_keyword(rest: &str) -> &str {
    let end = rest
        .find(|c: char| !(c.is_ascii_lowercase() || c == '-'))
        .unwrap_or(rest.len());
    &rest[..end]
}

/// Read-only token view shared by the item walkers.
struct View<'a> {
    tokens: &'a [Token],
    sig: &'a [usize],
}

impl View<'_> {
    fn s(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        i < self.sig.len() && self.s(i).kind == TokKind::Ident && self.s(i).text == text
    }

    fn is_punct(&self, i: usize, text: &str) -> bool {
        i < self.sig.len() && self.s(i).kind == TokKind::Punct && self.s(i).text == text
    }
}

/// Significant-index of the `}` matching the `{` at `open`, or the end
/// of the stream when unbalanced.
pub(crate) fn brace_match(tokens: &[Token], sig: &[usize], open: usize) -> usize {
    let v = View { tokens, sig };
    let mut depth = 0i64;
    let mut i = open;
    while i < sig.len() {
        if v.is_punct(i, "{") {
            depth += 1;
        } else if v.is_punct(i, "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    sig.len().saturating_sub(1)
}

/// Skips a balanced `(…)`/`[…]` group starting at `open`; returns the
/// index just past the closing delimiter.
fn skip_group(v: &View, open: usize, close_text: &str, open_text: &str) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < v.sig.len() {
        if v.is_punct(i, open_text) {
            depth += 1;
        } else if v.is_punct(i, close_text) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Angle-bracket delta of one punctuation token. The lexer fuses shift
/// operators, so `>>` closes **two** generic levels at once.
fn angle_delta(text: &str) -> i64 {
    match text {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        _ => 0,
    }
}

/// Skips a generic parameter list starting at `<`; returns the index
/// just past the closing `>`. Bails at `{`/`;` so malformed input
/// cannot swallow the rest of the file.
fn skip_angles(v: &View, start: usize) -> usize {
    let mut depth = 0i64;
    let mut i = start;
    while i < v.sig.len() {
        let t = v.s(i);
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | ";" => return i,
                "->" | "=>" => {}
                other => {
                    depth += angle_delta(other);
                    if depth <= 0 {
                        return i + 1;
                    }
                }
            }
        }
        i += 1;
    }
    i
}

/// Parses one file. `tokens` is the full stream (comments included)
/// and `sig` the indices of its significant tokens, exactly as the
/// engine builds them.
pub fn parse(tokens: &[Token], sig: &[usize]) -> ParsedFile {
    let v = View { tokens, sig };
    let mut out = ParsedFile::default();

    let mut i = 0usize;
    while i < sig.len() {
        // Skip attributes wholesale so `#[doc = "struct"]`-style
        // attribute contents can never start a phantom item.
        if v.is_punct(i, "#") && (v.is_punct(i + 1, "[") || v.is_punct(i + 2, "[")) {
            let open = if v.is_punct(i + 1, "[") { i + 1 } else { i + 2 };
            i = skip_group(&v, open, "]", "[");
            continue;
        }
        if v.is_ident(i, "struct") && i + 1 < sig.len() && v.s(i + 1).kind == TokKind::Ident {
            let (def, next) = parse_struct(&v, i);
            out.structs.push(def);
            i = next;
            continue;
        }
        if v.is_ident(i, "fn") && i + 1 < sig.len() && v.s(i + 1).kind == TokKind::Ident {
            let (def, next) = parse_fn(&v, i);
            if let Some(def) = def {
                out.fns.push(def);
            }
            i = next;
            continue;
        }
        i += 1;
    }

    attach_annotations(tokens, &mut out);
    out
}

/// Parses a struct item; `i` points at the `struct` keyword.
fn parse_struct(v: &View, i: usize) -> (StructDef, usize) {
    let name = v.s(i + 1).text.clone();
    let line = v.s(i).line;
    let mut j = i + 2;
    if v.is_punct(j, "<") {
        j = skip_angles(v, j);
    }
    // Tuple structs put their parens immediately after the generics;
    // everything else scans (skipping paren groups in `where` bounds
    // like `Fn(u32) -> bool`) to the body `{` or the terminating `;`.
    if v.is_punct(j, "(") {
        let (fields, next) = parse_tuple_fields(v, j);
        let end_line = if next > 0 && next - 1 < v.sig.len() {
            v.s(next - 1).line
        } else {
            line
        };
        return (
            StructDef {
                name,
                line,
                end_line,
                tuple: true,
                fields,
            },
            next,
        );
    }
    while j < v.sig.len() {
        if v.is_punct(j, "(") {
            j = skip_group(v, j, ")", "(");
            continue;
        }
        if v.is_punct(j, "{") || v.is_punct(j, ";") {
            break;
        }
        j += 1;
    }
    if j >= v.sig.len() || v.is_punct(j, ";") {
        let end_line = if j < v.sig.len() { v.s(j).line } else { line };
        return (
            StructDef {
                name,
                line,
                end_line,
                tuple: false,
                fields: Vec::new(),
            },
            j + 1,
        );
    }
    let close = brace_match(v.tokens, v.sig, j);
    let fields = parse_named_fields(v, j + 1, close);
    (
        StructDef {
            name,
            line,
            end_line: v.s(close).line,
            tuple: false,
            fields,
        },
        close + 1,
    )
}

/// Parses `name: Type,` entries between `start` and the struct's
/// closing brace at `close`.
fn parse_named_fields(v: &View, start: usize, close: usize) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut p = start;
    while p < close {
        let mut cfg_test = false;
        while v.is_punct(p, "#") && v.is_punct(p + 1, "[") {
            let (attr, next) = attr_text(v.tokens, v.sig, p + 1);
            if attr_is_test(&attr) {
                cfg_test = true;
            }
            p = next;
        }
        if v.is_ident(p, "pub") {
            p += 1;
            if v.is_punct(p, "(") {
                p = skip_group(v, p, ")", "(");
            }
        }
        if p < close && v.s(p).kind == TokKind::Ident && v.is_punct(p + 1, ":") {
            fields.push(FieldDef {
                name: v.s(p).text.clone(),
                line: v.s(p).line,
                cfg_test,
            });
            p = skip_field_type(v, p + 2, close);
        } else {
            p += 1;
        }
    }
    fields
}

/// Skips a field's type, returning the index just past its separating
/// comma (or `close`). Tracks paren/bracket/brace and angle depth so
/// commas inside `Vec<(u32, u32)>` or `[u8; 4]` do not split fields.
fn skip_field_type(v: &View, start: usize, close: usize) -> usize {
    let (mut paren, mut bracket, mut brace, mut angle) = (0i64, 0i64, 0i64, 0i64);
    let mut p = start;
    while p < close {
        let t = v.s(p);
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "->" | "=>" => {}
                "," if paren <= 0 && bracket <= 0 && brace <= 0 && angle <= 0 => {
                    return p + 1;
                }
                other if brace == 0 && paren == 0 && bracket == 0 => {
                    angle += angle_delta(other);
                    angle = angle.max(0);
                }
                _ => {}
            }
        }
        p += 1;
    }
    close
}

/// Parses tuple-struct fields; `open` points at `(`. Fields are named
/// by ordinal. Returns `(fields, index past the trailing ;)`.
fn parse_tuple_fields(v: &View, open: usize) -> (Vec<FieldDef>, usize) {
    let close = {
        let mut depth = 0i64;
        let mut i = open;
        loop {
            if i >= v.sig.len() {
                break i;
            }
            if v.is_punct(i, "(") {
                depth += 1;
            } else if v.is_punct(i, ")") {
                depth -= 1;
                if depth == 0 {
                    break i;
                }
            }
            i += 1;
        }
    };
    let mut fields = Vec::new();
    let mut p = open + 1;
    let mut ordinal = 0usize;
    while p < close {
        let mut cfg_test = false;
        while v.is_punct(p, "#") && v.is_punct(p + 1, "[") {
            let (attr, next) = attr_text(v.tokens, v.sig, p + 1);
            if attr_is_test(&attr) {
                cfg_test = true;
            }
            p = next;
        }
        if v.is_ident(p, "pub") {
            p += 1;
            if v.is_punct(p, "(") {
                p = skip_group(v, p, ")", "(");
            }
        }
        if p >= close {
            break;
        }
        fields.push(FieldDef {
            name: ordinal.to_string(),
            line: v.s(p).line,
            cfg_test,
        });
        ordinal += 1;
        p = skip_field_type(v, p, close);
    }
    // Step past `)` and an optional `;`.
    let mut next = close + 1;
    if v.is_punct(next, ";") {
        next += 1;
    }
    (fields, next)
}

/// Parses a fn item; `i` points at the `fn` keyword. Returns `None`
/// for body-less declarations (trait methods, extern blocks).
fn parse_fn(v: &View, i: usize) -> (Option<FnDef>, usize) {
    let name = v.s(i + 1).text.clone();
    let line = v.s(i).line;
    let mut j = i + 2;
    if v.is_punct(j, "<") {
        j = skip_angles(v, j);
    }
    if !v.is_punct(j, "(") {
        return (None, j);
    }
    j = skip_group(v, j, ")", "(");
    // Return type and where clause: scan to the body `{` or a
    // terminating `;`, skipping nested groups so `-> [u8; 4]` or
    // `where F: Fn(u32) -> bool` cannot end the fn early.
    while j < v.sig.len() {
        if v.is_punct(j, "(") {
            j = skip_group(v, j, ")", "(");
            continue;
        }
        if v.is_punct(j, "[") {
            j = skip_group(v, j, "]", "[");
            continue;
        }
        if v.is_punct(j, "{") || v.is_punct(j, ";") {
            break;
        }
        j += 1;
    }
    if j >= v.sig.len() || v.is_punct(j, ";") {
        return (None, j + 1);
    }
    let close = brace_match(v.tokens, v.sig, j);
    (
        Some(FnDef {
            name,
            line,
            end_line: v.s(close).line,
            body: (j + 1, close),
            annotations: Vec::new(),
        }),
        close + 1,
    )
}

/// Scans comments for coverage directives, parses them, and attaches
/// each to the fn whose body contains it or that starts next after it.
fn attach_annotations(tokens: &[Token], out: &mut ParsedFile) {
    let mut pending: Vec<Annotation> = Vec::new();
    for tok in tokens {
        if tok.kind != TokKind::LineComment || tok.doc {
            continue;
        }
        let body = tok.comment_body();
        let Some(at) = body.find(crate::suppress::MARKER) else {
            continue;
        };
        let rest = body[at + crate::suppress::MARKER.len()..].trim_start();
        let word = leading_keyword(rest);
        // Plain allow(...) and malformed markers belong to suppress.rs;
        // the find() also promotes the keyword to the &'static slice
        // entry for the directive parser.
        let Some(&kw) = DIRECTIVE_KEYWORDS.iter().find(|&&k| k == word) else {
            continue;
        };
        match parse_directive(kw, rest[kw.len()..].trim_start()) {
            Ok(kind) => pending.push(Annotation {
                line: tok.line,
                kind,
            }),
            Err(msg) => out.malformed.push((tok.line, msg)),
        }
    }

    for ann in pending {
        // Inside a fn body (or trailing on its header/close line).
        if let Some(f) = out
            .fns
            .iter_mut()
            .find(|f| f.line <= ann.line && ann.line <= f.end_line)
        {
            f.annotations.push(ann);
            continue;
        }
        if out
            .structs
            .iter()
            .any(|s| s.line <= ann.line && ann.line <= s.end_line)
        {
            out.malformed.push((
                ann.line,
                "coverage annotation inside a struct has no effect; place it on the fn it \
                 constrains"
                    .to_string(),
            ));
            continue;
        }
        // Otherwise it must immediately precede a fn: the next item by
        // line must be a fn, not a struct.
        let next_fn = out
            .fns
            .iter_mut()
            .filter(|f| f.line > ann.line)
            .min_by_key(|f| f.line);
        let next_struct_line = out
            .structs
            .iter()
            .filter(|s| s.line > ann.line)
            .map(|s| s.line)
            .min();
        match next_fn {
            Some(f) if next_struct_line.is_none_or(|sl| f.line < sl) => {
                f.annotations.push(ann);
            }
            _ => out.malformed.push((
                ann.line,
                "coverage annotation is not attached to a fn (it must precede a fn item or \
                 sit inside its body)"
                    .to_string(),
            )),
        }
    }
}

/// Parses the argument list and justification of one directive.
fn parse_directive(kw: &'static str, rest: &str) -> Result<AnnKind, String> {
    let Some(rest) = rest.strip_prefix('(') else {
        return Err(format!(
            "malformed `{kw}` annotation: expected `(` after the keyword"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err(format!(
            "malformed `{kw}` annotation: unclosed argument list"
        ));
    };
    let args: Vec<&str> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    if args.is_empty() {
        return Err(format!("malformed `{kw}` annotation: empty argument list"));
    }
    let justification = rest[close + 1..]
        .trim_start_matches([':', ' ', '-', '\u{2014}'])
        .trim()
        .to_string();

    let ident_ok = |s: &str| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_');

    match kw {
        "digest-of" | "fold-of" | "codec-write" | "codec-read" => {
            for a in &args {
                if !ident_ok(a) {
                    return Err(format!(
                        "malformed `{kw}` annotation: `{a}` is not a struct name"
                    ));
                }
            }
            let tys = args.iter().map(|a| a.to_string()).collect();
            Ok(match kw {
                "digest-of" => AnnKind::DigestOf(tys),
                "fold-of" => AnnKind::FoldOf(tys),
                "codec-write" => AnnKind::CodecWrite(tys),
                _ => AnnKind::CodecRead(tys),
            })
        }
        "digest-allow" | "codec-allow" | "fold-allow" => {
            let rule = match kw {
                "digest-allow" => diag::R8_DIGEST_COVERAGE,
                "codec-allow" => diag::R9_CODEC_SYMMETRY,
                _ => diag::R10_FOLD_COVERAGE,
            };
            let mut fields = Vec::new();
            for a in &args {
                let Some((ty, field)) = a.split_once("::") else {
                    return Err(format!(
                        "malformed `{kw}` annotation: `{a}` is not `Type::field`"
                    ));
                };
                if !ident_ok(ty) || !ident_ok(field) {
                    return Err(format!(
                        "malformed `{kw}` annotation: `{a}` is not `Type::field`"
                    ));
                }
                fields.push((ty.to_string(), field.to_string()));
            }
            Ok(AnnKind::Allow {
                rule,
                fields,
                justification,
            })
        }
        _ => unreachable!("keyword filtered against DIRECTIVE_KEYWORDS"),
    }
}

/// One struct definition plus where it lives, as stored in the
/// workspace-wide [`StructIndex`].
#[derive(Debug, Clone)]
pub struct IndexedStruct {
    pub file: String,
    pub crate_name: String,
    pub def: StructDef,
}

/// Workspace-wide struct lookup for coverage annotations. Annotations
/// name bare types (`digest-of(CoverageOptions)`); resolution prefers
/// a same-file definition, then same-crate, then a globally unique
/// name, and reports ambiguity rather than guessing.
#[derive(Debug, Default)]
pub struct StructIndex {
    entries: Vec<IndexedStruct>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Outcome of a [`StructIndex::resolve`] lookup.
pub enum Resolved<'a> {
    Found(&'a IndexedStruct),
    NotFound,
    /// Candidate files, for the diagnostic.
    Ambiguous(Vec<String>),
}

impl StructIndex {
    pub fn add_file(&mut self, file: &str, crate_name: &str, parsed: &ParsedFile) {
        for def in &parsed.structs {
            let idx = self.entries.len();
            self.entries.push(IndexedStruct {
                file: file.to_string(),
                crate_name: crate_name.to_string(),
                def: def.clone(),
            });
            self.by_name.entry(def.name.clone()).or_default().push(idx);
        }
    }

    pub fn resolve(&self, name: &str, file: &str, crate_name: &str) -> Resolved<'_> {
        let Some(cands) = self.by_name.get(name) else {
            return Resolved::NotFound;
        };
        let pick = |ids: Vec<usize>| -> Resolved<'_> {
            match ids.len() {
                0 => Resolved::NotFound,
                1 => Resolved::Found(&self.entries[ids[0]]),
                _ => {
                    Resolved::Ambiguous(ids.iter().map(|&i| self.entries[i].file.clone()).collect())
                }
            }
        };
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.entries[i].file == file)
            .collect();
        if !same_file.is_empty() {
            return pick(same_file);
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.entries[i].crate_name == crate_name)
            .collect();
        if !same_crate.is_empty() {
            return pick(same_crate);
        }
        pick(cands.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        parse(&tokens, &sig)
    }

    fn field_names(s: &StructDef) -> Vec<&str> {
        s.fields.iter().map(|f| f.name.as_str()).collect()
    }

    #[test]
    fn named_struct_fields_in_order() {
        let p = parsed("pub struct A { pub x: u32, y: Vec<f64>, pub(crate) z: (u8, u8) }\n");
        assert_eq!(p.structs.len(), 1);
        assert_eq!(field_names(&p.structs[0]), ["x", "y", "z"]);
    }

    #[test]
    fn nested_generics_with_fused_shift_tokens() {
        let p = parsed(
            "struct G<T: Iterator<Item = Vec<u32>>> where T: Clone {\n\
             \x20   cells: Vec<Vec<Vec<T>>>,\n\
             \x20   map: std::collections::BTreeMap<String, Vec<(u32, u32)>>,\n\
             \x20   n: usize,\n\
             }\n",
        );
        assert_eq!(field_names(&p.structs[0]), ["cells", "map", "n"]);
    }

    #[test]
    fn tuple_and_unit_structs() {
        let p = parsed("struct T(pub u32, Vec<u8>);\nstruct U;\nstruct V {}\n");
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs[0].tuple);
        assert_eq!(field_names(&p.structs[0]), ["0", "1"]);
        assert!(p.structs[1].fields.is_empty());
        assert!(p.structs[2].fields.is_empty());
    }

    #[test]
    fn cfg_test_fields_are_marked() {
        let p = parsed("struct S { a: u32, #[cfg(test)] dbg: u32, b: u32 }\n");
        let s = &p.structs[0];
        assert_eq!(field_names(s), ["a", "dbg", "b"]);
        assert!(!s.fields[0].cfg_test);
        assert!(s.fields[1].cfg_test);
        assert!(!s.fields[2].cfg_test);
    }

    #[test]
    fn fn_bodies_and_trait_decls() {
        let p = parsed(
            "trait T { fn decl(&self) -> [u8; 4]; }\n\
             fn f<T: Clone>(x: T) -> Vec<T> where T: Default { vec![x] }\n\
             impl T for U { fn decl(&self) -> [u8; 4] { [0; 4] } }\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "decl"]);
    }

    #[test]
    fn annotation_attaches_to_next_fn() {
        let p = parsed(
            "// eagleeye-lint: digest-of(S)\n\
             fn digest() { }\n",
        );
        assert!(p.malformed.is_empty());
        assert_eq!(p.fns[0].annotations.len(), 1);
        assert_eq!(
            p.fns[0].annotations[0].kind,
            AnnKind::DigestOf(vec!["S".into()])
        );
    }

    #[test]
    fn annotation_inside_body_attaches_to_that_fn() {
        let p = parsed(
            "fn digest() {\n\
             \x20   // eagleeye-lint: digest-allow(S::x): cache-invisible\n\
             \x20   work();\n\
             }\n",
        );
        assert_eq!(p.fns[0].annotations.len(), 1);
        match &p.fns[0].annotations[0].kind {
            AnnKind::Allow {
                fields,
                justification,
                ..
            } => {
                assert_eq!(fields, &[("S".to_string(), "x".to_string())]);
                assert_eq!(justification, "cache-invisible");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn dangling_and_malformed_annotations_are_reported() {
        let p = parsed(
            "// eagleeye-lint: digest-of(S)\n\
             struct S { x: u32 }\n\
             // eagleeye-lint: fold-of()\n\
             fn f() {}\n\
             // eagleeye-lint: digest-allow(no_sep): why\n\
             fn g() {}\n",
        );
        assert_eq!(p.malformed.len(), 3, "{:?}", p.malformed);
        assert!(p
            .malformed
            .iter()
            .any(|(l, m)| *l == 1 && m.contains("not attached")));
        assert!(p
            .malformed
            .iter()
            .any(|(l, m)| *l == 3 && m.contains("empty argument")));
        assert!(p
            .malformed
            .iter()
            .any(|(l, m)| *l == 5 && m.contains("Type::field")));
    }

    #[test]
    fn index_prefers_same_file_then_crate() {
        let mut ix = StructIndex::default();
        let a = parsed("struct S { x: u32 }\n");
        let b = parsed("struct S { y: u32 }\n");
        ix.add_file("crates/core/src/a.rs", "core", &a);
        ix.add_file("crates/obs/src/b.rs", "obs", &b);
        match ix.resolve("S", "crates/core/src/a.rs", "core") {
            Resolved::Found(e) => assert_eq!(e.file, "crates/core/src/a.rs"),
            _ => panic!("expected same-file hit"),
        }
        match ix.resolve("S", "crates/core/src/other.rs", "core") {
            Resolved::Found(e) => assert_eq!(e.crate_name, "core"),
            _ => panic!("expected same-crate hit"),
        }
        match ix.resolve("S", "crates/geo/src/z.rs", "geo") {
            Resolved::Ambiguous(files) => assert_eq!(files.len(), 2),
            _ => panic!("expected ambiguity"),
        }
        assert!(matches!(
            ix.resolve("Nope", "f.rs", "core"),
            Resolved::NotFound
        ));
    }
}
