//! Diagnostics, rule metadata, and output rendering (text + JSON).

use std::fmt;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (one of [`RULES`], or `"suppression"` for problems
    /// with suppression comments themselves).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Stable rule ids — these are the names accepted by
/// `// eagleeye-lint: allow(<rule>)` suppressions.
pub const R1_NO_UNWRAP: &str = "no-unwrap";
pub const R2_DETERMINISM: &str = "determinism";
pub const R3_CLOCK: &str = "clock";
pub const R4_FLOAT_EQ: &str = "float-eq";
pub const R5_UNSAFE_HYGIENE: &str = "unsafe-hygiene";
pub const R6_METRIC_NAMESPACE: &str = "metric-namespace";
pub const R7_NO_EXIT: &str = "no-exit";
/// Meta-rule for malformed, unjustified, or unused suppressions; not
/// itself suppressible.
pub const SUPPRESSION: &str = "suppression";

/// `(id, summary)` for every suppressible rule.
pub const RULES: &[(&str, &str)] = &[
    (
        R1_NO_UNWRAP,
        "ban .unwrap()/.expect(..) in library (non-test, non-bin) code",
    ),
    (
        R2_DETERMINISM,
        "ban HashMap/HashSet in crates feeding serialized or scheduled output",
    ),
    (
        R3_CLOCK,
        "ban Instant::now/SystemTime::now outside obs, exec, and bench",
    ),
    (
        R4_FLOAT_EQ,
        "ban ==/!= against float literals or casts (use total_cmp or epsilon helpers)",
    ),
    (
        R5_UNSAFE_HYGIENE,
        "unsafe blocks need // SAFETY: comments; unsafe-free crates need #![forbid(unsafe_code)]",
    ),
    (
        R6_METRIC_NAMESPACE,
        "metric keys must match the subsystem/name namespace of DESIGN.md \u{a7}10.2",
    ),
    (
        R7_NO_EXIT,
        "ban process::exit/process::abort outside src/bin and the bench harness",
    ),
];

/// True iff `id` names a suppressible rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Minimal JSON string escaping (the only JSON this crate emits).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON document:
/// `{"count": N, "diagnostics": [{"file", "line", "rule", "message"}]}`.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&diags.len().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: R1_NO_UNWRAP,
            message: "found .unwrap()".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/x.rs:7: [no-unwrap] found .unwrap()"
        );
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_document_shape() {
        let doc = diagnostics_json(&[Diagnostic {
            file: "f.rs".into(),
            line: 1,
            rule: R3_CLOCK,
            message: "m".into(),
        }]);
        assert!(doc.contains("\"count\": 1"));
        assert!(doc.contains("\"rule\": \"clock\""));
    }

    #[test]
    fn rule_ids_are_known() {
        assert!(is_rule("no-unwrap"));
        assert!(is_rule("metric-namespace"));
        assert!(!is_rule("suppression"));
        assert!(!is_rule("bogus"));
    }
}
