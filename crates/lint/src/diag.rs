//! Diagnostics, rule metadata, rationale blocks, and output rendering
//! (text + JSON).

use std::fmt;

/// Structured payload attached to the coverage-rule diagnostics
/// (R8–R10) so `--format json` consumers get the annotation span and
/// the offending field names without parsing the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageDetail {
    /// Line of the coverage annotation the finding belongs to.
    pub annotation_line: u32,
    /// The annotated struct.
    pub struct_name: String,
    /// Missing / asymmetric field names.
    pub fields: Vec<String>,
}

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (one of [`RULES`], or `"suppression"` for problems
    /// with suppression comments themselves).
    pub rule: &'static str,
    pub message: String,
    /// Structured data for coverage-rule findings; `None` for the
    /// token-level rules.
    pub detail: Option<CoverageDetail>,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: message.into(),
            detail: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Stable rule ids — these are the names accepted by
/// `// eagleeye-lint: allow(<rule>)` suppressions.
pub const R1_NO_UNWRAP: &str = "no-unwrap";
pub const R2_DETERMINISM: &str = "determinism";
pub const R3_CLOCK: &str = "clock";
pub const R4_FLOAT_EQ: &str = "float-eq";
pub const R5_UNSAFE_HYGIENE: &str = "unsafe-hygiene";
pub const R6_METRIC_NAMESPACE: &str = "metric-namespace";
pub const R7_NO_EXIT: &str = "no-exit";
pub const R8_DIGEST_COVERAGE: &str = "digest-coverage";
pub const R9_CODEC_SYMMETRY: &str = "codec-symmetry";
pub const R10_FOLD_COVERAGE: &str = "fold-coverage";
/// Meta-rule for malformed, unjustified, or unused suppressions; not
/// itself suppressible.
pub const SUPPRESSION: &str = "suppression";

/// `(id, summary)` for every suppressible rule.
pub const RULES: &[(&str, &str)] = &[
    (
        R1_NO_UNWRAP,
        "ban .unwrap()/.expect(..) in library (non-test, non-bin) code",
    ),
    (
        R2_DETERMINISM,
        "ban HashMap/HashSet in crates feeding serialized or scheduled output",
    ),
    (
        R3_CLOCK,
        "ban Instant::now/SystemTime::now outside obs, exec, and bench",
    ),
    (
        R4_FLOAT_EQ,
        "ban ==/!= against float literals or casts (use total_cmp or epsilon helpers)",
    ),
    (
        R5_UNSAFE_HYGIENE,
        "unsafe blocks need // SAFETY: comments; unsafe-free crates need #![forbid(unsafe_code)]",
    ),
    (
        R6_METRIC_NAMESPACE,
        "metric keys must match the subsystem/name namespace of DESIGN.md \u{a7}10.2",
    ),
    (
        R7_NO_EXIT,
        "ban process::exit/process::abort outside src/bin and the bench harness",
    ),
    (
        R8_DIGEST_COVERAGE,
        "fns annotated digest-of(Type) must reference every field, or justify the gap",
    ),
    (
        R9_CODEC_SYMMETRY,
        "codec-write/codec-read pairs must cover identical field sets in identical order",
    ),
    (
        R10_FOLD_COVERAGE,
        "fold/compare fns annotated fold-of(Type) must handle every field",
    ),
];

/// True iff `id` names a suppressible rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Rationale block for `--explain <rule>`: why the rule exists in
/// this codebase and how to satisfy or suppress it.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "no-unwrap" => {
            "Library code must stay panic-free: the evaluator runs inside long sweeps and the\n\
             crash-safe executor, where a panic poisons checkpoints. Return Result/Option,\n\
             or use unwrap_or/-default. Tests, benches, and bins are exempt."
        }
        "determinism" => {
            "Crates that feed serialized or scheduled output must iterate deterministically;\n\
             HashMap/HashSet iteration order is randomized per process and silently breaks\n\
             digest stability and golden files. Use BTreeMap/BTreeSet or sorted Vecs."
        }
        "clock" => {
            "Wall-clock reads outside obs/exec/bench make results time-dependent and\n\
             unreproducible. Thread time through the simulation clock or the metrics layer."
        }
        "float-eq" => {
            "==/!= against float literals or casts is almost always a tolerance bug. Compare\n\
             with total_cmp, epsilon helpers, or restructure to integers. Field-to-field\n\
             equality (derived PartialEq semantics) is allowed."
        }
        "unsafe-hygiene" => {
            "Every unsafe block needs a // SAFETY: comment; crates with no unsafe at all\n\
             must say so with #![forbid(unsafe_code)] in lib.rs."
        }
        "metric-namespace" => {
            "Metric keys are a public, grep-able contract (DESIGN.md \u{a7}10.2): literal keys\n\
             must match subsystem/name so dashboards and the obs registry stay coherent."
        }
        "no-exit" => {
            "process::exit/abort skips destructors and flushing; only bins and the bench\n\
             harness may terminate the process."
        }
        "digest-coverage" => {
            "R8. The memo and checkpoint caches key on hand-enumerated digests\n\
             (horizon_digest, track_digest, ScenarioHasher keys). A field that changes\n\
             results but is missing from its digest is a silent stale-cache bug — the exact\n\
             failure PR 8 paid for when mid-frame repair onsets were invisible to\n\
             horizon_digest v1.\n\n\
             Annotate the digest fn with\n\
                 // eagleeye-lint: digest-of(TypeA, TypeB)\n\
             and the rule requires every field of each named struct to be referenced in the\n\
             fn body. A deliberately cache-invisible field carries a justified exemption:\n\
                 // eagleeye-lint: digest-allow(Type::field): <why it cannot affect results>\n\
             Exemptions are pinned in lint-allowlist.txt and audited (stale or unused\n\
             exemptions are diagnostics)."
        }
        "codec-symmetry" => {
            "R9. Byte codecs here are hand-rolled (CoverageReport::to_bytes/from_bytes,\n\
             snapshot sections) and drift when a field is added to one side only — PR 9\n\
             hand-threaded four counters through the v3 report codec at five call sites.\n\n\
             Annotate the pair, in the same file:\n\
                 // eagleeye-lint: codec-write(Type)   on the encoder\n\
                 // eagleeye-lint: codec-read(Type)    on the decoder\n\
             The rule requires both fns to reference exactly the same field set, in the\n\
             same first-reference order. Fields intentionally outside the wire format take\n\
             codec-allow(Type::field): <why>."
        }
        "fold-coverage" => {
            "R10. Fold/compare fns (absorb, same_outcome, record_metrics, add_ilp_stats)\n\
             must decide something for every field — summing, comparing, or deliberately\n\
             skipping it. An unreferenced field is an unmerged counter or a comparison\n\
             blind spot.\n\n\
             Annotate with\n\
                 // eagleeye-lint: fold-of(Type)\n\
             and justify deliberate skips with fold-allow(Type::field): <why>. Pairing this\n\
             with an exhaustive `let Type { .. } = x;` destructure in the fn makes the\n\
             compiler enforce what the lint reports."
        }
        "suppression" => {
            "Meta-rule about the suppression/annotation comments themselves: malformed\n\
             markers, unknown rules, missing justifications, unused allows, and stale or\n\
             unused coverage exemptions. Not itself suppressible."
        }
        _ => return None,
    })
}

/// Minimal JSON string escaping (the only JSON this crate emits).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON document:
/// `{"count": N, "diagnostics": [{"file", "line", "rule", "message"}]}`.
/// Coverage findings additionally carry `"annotation_line"`,
/// `"struct"`, and `"fields"`.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&diags.len().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
        if let Some(detail) = &d.detail {
            out.push_str(&format!(
                ", \"annotation_line\": {}, \"struct\": \"{}\", \"fields\": [{}]",
                detail.annotation_line,
                json_escape(&detail.struct_name),
                detail
                    .fields
                    .iter()
                    .map(|f| format!("\"{}\"", json_escape(f)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic::new("crates/core/src/x.rs", 7, R1_NO_UNWRAP, "found .unwrap()");
        assert_eq!(
            d.to_string(),
            "crates/core/src/x.rs:7: [no-unwrap] found .unwrap()"
        );
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_document_shape() {
        let doc = diagnostics_json(&[Diagnostic::new("f.rs", 1, R3_CLOCK, "m")]);
        assert!(doc.contains("\"count\": 1"));
        assert!(doc.contains("\"rule\": \"clock\""));
        assert!(!doc.contains("annotation_line"));
    }

    #[test]
    fn json_includes_coverage_detail() {
        let mut d = Diagnostic::new("f.rs", 9, R8_DIGEST_COVERAGE, "missing");
        d.detail = Some(CoverageDetail {
            annotation_line: 9,
            struct_name: "Opts".into(),
            fields: vec!["seed".into(), "recall".into()],
        });
        let doc = diagnostics_json(&[d]);
        assert!(doc.contains("\"annotation_line\": 9"));
        assert!(doc.contains("\"struct\": \"Opts\""));
        assert!(doc.contains("\"fields\": [\"seed\", \"recall\"]"));
    }

    #[test]
    fn rule_ids_are_known() {
        assert!(is_rule("no-unwrap"));
        assert!(is_rule("metric-namespace"));
        assert!(is_rule("digest-coverage"));
        assert!(is_rule("codec-symmetry"));
        assert!(is_rule("fold-coverage"));
        assert!(!is_rule("suppression"));
        assert!(!is_rule("bogus"));
    }

    #[test]
    fn every_rule_and_the_meta_rule_have_rationale() {
        for (id, _) in RULES {
            assert!(explain(id).is_some(), "missing rationale for {id}");
        }
        assert!(explain("suppression").is_some());
        assert!(explain("bogus").is_none());
    }
}
