//! Mutation self-test for the coverage rules (R8–R10).
//!
//! Every fixture under `tests/fixtures/mutate/` is lint-clean as
//! checked in. Each deletable field-reference line carries a trailing
//! `// mutate-expect: <rule> <Type::field>` tag; this harness deletes
//! one tagged line at a time, re-lints, and asserts that exactly the
//! named rule fires naming the tagged field — both in the message and
//! in the structured [`CoverageDetail`] payload `--format json`
//! exposes. That proves the detection property end to end: a real
//! digest/codec/fold drifting by one field cannot pass `--deny`.
//!
//! Set `EAGLEEYE_LINT_MUTATE=1` for a per-mutation trace when
//! debugging a rule change.

use std::fs;
use std::path::{Path, PathBuf};

use eagleeye_lint::lint_source;

const TAG: &str = "// mutate-expect:";

fn mutate_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mutate")
}

fn verbose() -> bool {
    std::env::var_os("EAGLEEYE_LINT_MUTATE").is_some()
}

/// Loads a mutation fixture, returning `(virtual path, source)`.
fn load(path: &Path) -> (String, String) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let virt = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .unwrap_or_else(|| panic!("{} must start with `//@ path:`", path.display()))
        .trim()
        .to_string();
    (virt, src)
}

fn run_corpus(stem: &str) {
    let path = mutate_dir().join(format!("{stem}.rs"));
    let (virt, src) = load(&path);

    // The unmutated fixture must be clean — otherwise the mutations
    // below prove nothing.
    let base = lint_source(&virt, &src);
    assert!(
        base.diagnostics.is_empty(),
        "mutation fixture `{stem}` must lint clean before mutation:\n{}",
        base.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    let lines: Vec<&str> = src.lines().collect();
    let mut mutations = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = line.find(TAG) else {
            continue;
        };
        let spec = line[at + TAG.len()..].trim();
        let (rule, ty_field) = spec
            .split_once(' ')
            .unwrap_or_else(|| panic!("{stem}:{}: bad tag `{spec}`", i + 1));
        let (ty, field) = ty_field
            .split_once("::")
            .unwrap_or_else(|| panic!("{stem}:{}: tag needs Type::field, got `{ty_field}`", i + 1));

        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let lint = lint_source(&virt, &mutated);
        let hit = lint.diagnostics.iter().find(|d| {
            d.rule == rule
                && d.message.contains(&format!("`{field}`"))
                && d.detail.as_ref().is_some_and(|det| {
                    det.struct_name == ty && det.fields.iter().any(|f| f == field)
                })
        });
        if verbose() {
            eprintln!(
                "{stem}:{}: deleted `{}` -> {} diagnostic(s), expect [{rule}] {ty}::{field}: {}",
                i + 1,
                lines[i].trim(),
                lint.diagnostics.len(),
                if hit.is_some() { "HIT" } else { "MISS" }
            );
        }
        assert!(
            hit.is_some(),
            "{stem}:{}: deleting `{}` did not raise [{rule}] naming {ty}::{field}; got:\n{}",
            i + 1,
            lines[i].trim(),
            lint.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        mutations += 1;
    }
    assert!(
        mutations >= 3,
        "mutation fixture `{stem}` has only {mutations} tagged lines — corpus too thin"
    );
}

#[test]
fn digest_mutations_are_detected() {
    run_corpus("digest");
}

#[test]
fn codec_mutations_are_detected() {
    run_corpus("codec");
}

#[test]
fn fold_mutations_are_detected() {
    run_corpus("fold");
}

/// Every `.rs` file in the mutation corpus has a harness test above.
#[test]
fn corpus_is_fully_covered() {
    let mut found: Vec<String> = fs::read_dir(mutate_dir())
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    found.sort();
    assert_eq!(found, ["codec", "digest", "fold"]);
}
