//! Golden-file fixture tests for the lint engine.
//!
//! Each `tests/fixtures/<name>.rs` file opens with a `//@ path:`
//! directive naming the virtual workspace path the engine should
//! classify it under (crate, role, test regions); the rendered
//! diagnostics must match `tests/fixtures/<name>.expected` line for
//! line. Regenerate goldens after an intentional rule change with
//!
//! ```text
//! EAGLEEYE_LINT_BLESS=1 cargo test -p eagleeye-lint --test fixtures
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use eagleeye_lint::{lint_source, lint_workspace};

/// Fixture stems with a `#[test]` below; `goldens_cover_every_fixture`
/// keeps this list honest against the directory contents.
const FIXTURES: &[&str] = &[
    "clock_exempt",
    "clock_sim",
    "codec_symmetry",
    "determinism_core",
    "determinism_exempt",
    "digest_coverage",
    "float_eq",
    "fold_coverage",
    "item_parser_edge",
    "lexer_tricky",
    "metric_namespace",
    "no_exit",
    "no_unwrap_bin",
    "no_unwrap_lib",
    "suppression_audit",
    "unsafe_hygiene",
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture under its `//@ path:` directive and renders the
/// diagnostics as `line: [rule] message`, one per line.
fn render(name: &str) -> String {
    let path = fixtures_dir().join(format!("{name}.rs"));
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let virt = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .unwrap_or_else(|| panic!("{name}.rs must start with a `//@ path:` directive"))
        .trim()
        .to_string();
    let lint = lint_source(&virt, &src);
    let mut out = String::new();
    for d in &lint.diagnostics {
        out.push_str(&format!("{}: [{}] {}\n", d.line, d.rule, d.message));
    }
    out
}

fn check(name: &str) {
    let got = render(name);
    let golden = fixtures_dir().join(format!("{name}.expected"));
    if std::env::var_os("EAGLEEYE_LINT_BLESS").is_some() {
        fs::write(&golden, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with EAGLEEYE_LINT_BLESS=1",
            golden.display()
        )
    });
    assert_eq!(
        got, want,
        "diagnostics for fixture `{name}` drifted from its golden; if the change is \
         intentional, regenerate with EAGLEEYE_LINT_BLESS=1 cargo test -p eagleeye-lint \
         --test fixtures"
    );
}

#[test]
fn no_unwrap_lib() {
    check("no_unwrap_lib");
}

#[test]
fn no_unwrap_bin() {
    check("no_unwrap_bin");
}

#[test]
fn determinism_core() {
    check("determinism_core");
}

#[test]
fn determinism_exempt() {
    check("determinism_exempt");
}

#[test]
fn clock_sim() {
    check("clock_sim");
}

#[test]
fn clock_exempt() {
    check("clock_exempt");
}

#[test]
fn float_eq() {
    check("float_eq");
}

#[test]
fn unsafe_hygiene() {
    check("unsafe_hygiene");
}

#[test]
fn metric_namespace() {
    check("metric_namespace");
}

#[test]
fn no_exit() {
    check("no_exit");
}

#[test]
fn lexer_tricky() {
    check("lexer_tricky");
}

#[test]
fn digest_coverage() {
    check("digest_coverage");
}

#[test]
fn codec_symmetry() {
    check("codec_symmetry");
}

#[test]
fn fold_coverage() {
    check("fold_coverage");
}

#[test]
fn item_parser_edge() {
    check("item_parser_edge");
}

#[test]
fn suppression_audit() {
    check("suppression_audit");
}

/// A fixture dropped into the directory without a matching `#[test]`
/// (or a stale entry in [`FIXTURES`]) fails here instead of silently
/// never running.
#[test]
fn goldens_cover_every_fixture() {
    let mut found: Vec<String> = fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    found.sort();
    let found: Vec<&str> = found.iter().map(String::as_str).collect();
    assert_eq!(
        found, FIXTURES,
        "FIXTURES list out of sync with tests/fixtures/*.rs"
    );
}

/// The crate-level half of `unsafe-hygiene` needs a whole workspace:
/// `alpha` (unsafe-free, no forbid) must be flagged at lib.rs:1, while
/// `beta` (has the attribute) and `gamma` (contains justified unsafe)
/// must not.
#[test]
fn workspace_pass_requires_forbid_unsafe() {
    let report = lint_workspace(&fixtures_dir().join("ws_forbid")).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(report.files_scanned, 3);
    assert_eq!(
        rendered.len(),
        1,
        "expected exactly one diagnostic: {rendered:#?}"
    );
    assert!(rendered[0].starts_with("crates/alpha/src/lib.rs:1: [unsafe-hygiene]"));
    assert!(rendered[0].contains("crate `alpha`"));
}
