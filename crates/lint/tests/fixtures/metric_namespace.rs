//@ path: crates/core/src/demo.rs
use eagleeye_obs::Metrics;

pub fn good_keys(m: &Metrics) {
    m.incr("core/evaluate");
    m.add("ilp/nodes_explored", 3);
    m.observe("orbit/cache_hits_2", 7);
}

pub fn single_segment(m: &Metrics) {
    m.incr("core");
}

pub fn unknown_subsystem(m: &Metrics) {
    m.incr("warp/drive");
}

pub fn uppercase_segment(m: &Metrics) {
    m.gauge_max("core/Evaluate", 1.0);
}

pub fn wrong_separator(m: &Metrics) {
    m.span("core.evaluate");
}

pub fn non_literal_keys_are_invisible(m: &Metrics, key: &str) {
    m.incr(key);
}

#[cfg(test)]
mod tests {
    use eagleeye_obs::Metrics;

    #[test]
    fn throwaway_keys_allowed_in_tests() {
        let m = Metrics::enabled();
        m.incr("c");
    }
}
