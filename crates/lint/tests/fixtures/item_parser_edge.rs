//@ path: crates/geo/src/parser_edge.rs
//! Item-parser edge cases. A doc-comment fence quoting a raw-string
//! struct must not index a phantom type:
//!
//! ```text
//! let s = r#"struct Phantom { ghost: u32 }"#;
//! ```

/// Attribute-heavy struct: nested generics with fused `>>` tokens, a
/// where clause, a `#[doc]` attribute containing item keywords, and a
/// `#[cfg(test)]`-gated field coverage must not require.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize))]
pub struct Nested<T: Iterator<Item = Vec<u32>>>
where
    T: Clone,
{
    #[doc = "fn not_an_item() { struct AlsoNot; }"]
    pub cells: Vec<Vec<Vec<T>>>,
    pub map: Vec<(u32, Vec<u8>)>,
    #[cfg(test)]
    pub probe: u32,
    pub n: usize,
}

pub struct Pair(pub u32, pub Vec<u8>);

// eagleeye-lint: fold-of(Nested)
pub fn fold_nested<T: Iterator<Item = Vec<u32>>>(x: &Nested<T>) -> usize
where
    T: Clone,
{
    x.cells.len() + x.map.len() + x.n
}

// eagleeye-lint: fold-of(Pair)
pub fn fold_pair(p: &Pair) -> usize {
    (p.0 as usize) + p.1.len()
}

// eagleeye-lint: fold-of(Nested)
pub fn fold_gap<T: Iterator<Item = Vec<u32>>>(x: &Nested<T>) -> usize {
    let decoy = r#"map: 1, n: 2, probe: 3"#;
    x.cells.len() + decoy.len()
}
