//@ path: crates/core/src/digest_demo.rs
//! R8 `digest-coverage` fixture: a clean multi-struct digest, a
//! digest with a blind spot, audited exemptions (used, unused, and
//! stale), and an unknown struct name.

pub struct Opts {
    pub spec: u64,
    pub seed: u64,
    pub threads: usize,
}

pub struct Geom {
    pub bound_m: u64,
    pub half_m: u64,
}

// eagleeye-lint: digest-of(Opts, Geom)
pub fn full_digest(o: &Opts, g: &Geom) -> u64 {
    o.spec ^ o.seed ^ (o.threads as u64) ^ g.bound_m ^ g.half_m
}

// eagleeye-lint: digest-of(Opts)
pub fn gappy_digest(o: &Opts) -> u64 {
    o.spec
}

// eagleeye-lint: digest-of(Opts)
// eagleeye-lint: digest-allow(Opts::threads): execution shape; results are bit-identical at any thread count
pub fn exempted_digest(o: &Opts) -> u64 {
    o.spec ^ o.seed
}

// eagleeye-lint: digest-of(Opts)
// eagleeye-lint: digest-allow(Opts::spec): pointless — spec is digested right below
// eagleeye-lint: digest-allow(Opts::bogus): no struct field has this name
pub fn audited_digest(o: &Opts) -> u64 {
    o.spec ^ o.seed ^ (o.threads as u64)
}

// eagleeye-lint: digest-of(Missing)
pub fn unknown_type(o: &Opts) -> u64 {
    o.spec
}
