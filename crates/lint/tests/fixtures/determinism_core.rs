//@ path: crates/core/src/demo.rs
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u32]) -> usize {
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect();
    s.len()
}

#[cfg(test)]
mod tests {
    // Test regions are exempt: scratch HashMaps never reach output.
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
