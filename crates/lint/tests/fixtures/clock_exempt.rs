//@ path: crates/exec/src/demo.rs
// `exec` is one of the clock crates: direct wall-clock reads are its job.
use std::time::Instant;

pub fn pool_heartbeat() -> Instant {
    Instant::now()
}
