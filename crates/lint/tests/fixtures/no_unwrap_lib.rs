//@ path: crates/geo/src/demo.rs
pub fn bare_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bare_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // eagleeye-lint: allow(no-unwrap): fixture invariant, always Some
    x.unwrap()
}

pub fn not_fooled_by_literals() -> usize {
    let s = "call .unwrap() here";
    /* .expect("nope") in a block comment */
    // trailing .unwrap() in a line comment
    let r = r#"raw string .expect("x")"#;
    s.len() + r.len()
}

/// Docs may show `x.unwrap()` freely; doc comments are exempt.
pub fn documented(x: Option<u32>) -> Option<u32> {
    x
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
        Some(2).expect("test code is exempt");
    }
}
