//@ path: crates/core/src/demo.rs
pub fn bad_exit() {
    std::process::exit(1);
}

pub fn bad_abort() {
    std::process::abort();
}

pub fn suppressed_exit() {
    // eagleeye-lint: allow(no-exit): fixture — injected fault by design
    std::process::exit(42);
}

pub fn mentions_only() -> &'static str {
    // std::process::exit(1) in a comment never fires.
    "process::exit(1) in a string never fires"
}

pub fn unrelated(process: usize) -> usize {
    // A bare `exit` call or a `process` identifier is not the rule's
    // target.
    process
}
