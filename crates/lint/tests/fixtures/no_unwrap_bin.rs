//@ path: crates/geo/src/bin/tool.rs
fn main() {
    let arg = std::env::args().nth(1).unwrap();
    let n: u32 = arg.parse().expect("binary targets may panic on bad input");
    println!("{n}");
}
