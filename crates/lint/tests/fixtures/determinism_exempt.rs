//@ path: crates/exec/src/demo.rs
// `exec` is not one of the ordered crates, so HashMap is allowed here.
use std::collections::HashMap;

pub fn scratch(xs: &[u32]) -> usize {
    let m: HashMap<u32, ()> = xs.iter().map(|&x| (x, ())).collect();
    m.len()
}
