//! Fixture crate: carries justified unsafe, so `#![forbid(unsafe_code)]`
//! is impossible and must not be demanded.

pub fn first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: fixture — emptiness asserted on the line above.
    unsafe { *bytes.get_unchecked(0) }
}
