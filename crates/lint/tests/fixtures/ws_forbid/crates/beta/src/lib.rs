//! Fixture crate: unsafe-free and properly locked down.

#![forbid(unsafe_code)]

pub fn ok() -> u32 {
    2
}
