//! Fixture crate: no unsafe anywhere, but the lib.rs below is missing
//! `#![forbid(unsafe_code)]` — the workspace pass must flag it.

pub fn ok() -> u32 {
    1
}
