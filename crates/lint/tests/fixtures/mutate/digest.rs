//@ path: crates/core/src/mutate_digest.rs
//! Mutation corpus for R8: lint-clean as written; deleting any line
//! tagged `mutate-expect` must make the named rule fire for the named
//! field.

pub struct Opts {
    pub spec: u64,
    pub seed: u64,
    pub cap: u64,
}

// eagleeye-lint: digest-of(Opts)
pub fn digest(o: &Opts) -> u64 {
    let mut h = 0u64;
    h ^= o.spec; // mutate-expect: digest-coverage Opts::spec
    h ^= o.seed.rotate_left(7); // mutate-expect: digest-coverage Opts::seed
    h ^= o.cap.rotate_left(13); // mutate-expect: digest-coverage Opts::cap
    h
}
