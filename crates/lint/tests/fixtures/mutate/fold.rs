//@ path: crates/core/src/mutate_fold.rs
//! Mutation corpus for R10: both the accumulating fold and the
//! compare fn must notice a deleted field reference.

pub struct Acc {
    pub hits: u64,
    pub misses: u64,
    pub skipped: u64,
}

// eagleeye-lint: fold-of(Acc)
pub fn absorb(acc: &mut Acc, part: &Acc) {
    acc.hits += part.hits; // mutate-expect: fold-coverage Acc::hits
    acc.misses += part.misses; // mutate-expect: fold-coverage Acc::misses
    acc.skipped += part.skipped; // mutate-expect: fold-coverage Acc::skipped
}

// eagleeye-lint: fold-of(Acc)
pub fn same_outcome(a: &Acc, b: &Acc) -> bool {
    let hits_eq = a.hits == b.hits; // mutate-expect: fold-coverage Acc::hits
    let misses_eq = a.misses == b.misses; // mutate-expect: fold-coverage Acc::misses
    let skipped_eq = a.skipped == b.skipped; // mutate-expect: fold-coverage Acc::skipped
    hits_eq && misses_eq && skipped_eq
}
