//@ path: crates/core/src/mutate_codec.rs
//! Mutation corpus for R9: deleting one writer line must report the
//! field as read-but-never-written; deleting one reader line must
//! report it as written-but-never-read.

pub struct Rec {
    pub a: u32,
    pub b: u32,
    pub c: u32,
}

// eagleeye-lint: codec-write(Rec)
pub fn to_bytes(r: &Rec, out: &mut Vec<u8>) {
    put(out, r.a); // mutate-expect: codec-symmetry Rec::a
    put(out, r.b); // mutate-expect: codec-symmetry Rec::b
    put(out, r.c); // mutate-expect: codec-symmetry Rec::c
}

// eagleeye-lint: codec-read(Rec)
pub fn from_bytes(buf: &[u8]) -> Rec {
    Rec {
        a: get(buf, 0), // mutate-expect: codec-symmetry Rec::a
        b: get(buf, 4), // mutate-expect: codec-symmetry Rec::b
        c: get(buf, 8), // mutate-expect: codec-symmetry Rec::c
    }
}

fn put(out: &mut Vec<u8>, v: u32) {
    out.extend(v.to_le_bytes());
}

fn get(buf: &[u8], at: usize) -> u32 {
    u32::from(buf[at])
}
