//@ path: crates/geo/src/demo.rs
pub fn suppressed_but_unjustified(x: Option<u32>) -> u32 {
    // eagleeye-lint: allow(no-unwrap)
    x.unwrap()
}

pub fn standalone_only_reaches_next_line(x: Option<u32>) -> u32 {
    // eagleeye-lint: allow(no-unwrap): too far above, so unused AND the unwrap fires
    let y = x;
    y.unwrap()
}

// eagleeye-lint: allow(clock): nothing below ever reads the clock
pub fn unused_suppression() -> u32 {
    7
}

// eagleeye-lint: allow(warp-core): not a rule that exists
pub fn unknown_rule() -> u32 {
    9
}

pub fn trailing_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // eagleeye-lint: allow(no-unwrap): trailing form covers its own line
}
