//@ path: crates/geo/src/demo.rs
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

pub fn documented_two_lines_above(p: *const u8) -> u8 {
    // SAFETY: fixture — the comment may sit up to three lines above
    // the unsafe token and still count.
    unsafe { *p }
}
