//@ path: crates/detect/src/demo.rs
pub fn right_literal(a: f64) -> bool {
    a == 1.0
}

pub fn left_literal(a: f64) -> bool {
    0.5 != a
}

pub fn cast_operand(a: usize, b: f64) -> bool {
    a as f64 == b
}

pub fn negated_literal(a: f64) -> bool {
    a == -2.5
}

pub fn integers_are_fine(a: usize) -> bool {
    a == 1
}

pub fn ranges_are_not_floats(a: usize) -> bool {
    // `1..2` must lex as Int Punct Int, not as a float.
    (1..2).contains(&a)
}

pub fn variables_are_invisible(a: f64, b: f64) -> bool {
    // Left to clippy's float_cmp: no literal or cast in sight.
    a == b
}

#[cfg(test)]
mod tests {
    #[test]
    fn exactness_asserts_are_how_goldens_work() {
        let x = 1.0_f64;
        assert!(x == 1.0);
    }
}
