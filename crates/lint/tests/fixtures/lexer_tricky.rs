//@ path: crates/core/src/demo.rs
//! Every construct below is designed to trap a naive substring
//! scanner; only the last function holds a real violation.

/* outer /* nested HashMap inside a nested block comment */ still a comment */

pub fn tricky<'a>(s: &'a str) -> usize {
    let quote = '"';
    let raw = r##"HashMap, Instant::now(), .unwrap() — all inert in a raw string"##;
    let escaped = "an escaped quote \" then .expect(\"x\")";
    let lifetime_not_char = s.len();
    let _ = quote;
    raw.len() + escaped.len() + lifetime_not_char
}

pub fn real_violation_after_the_traps() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}
