//@ path: crates/obs/src/codec_demo.rs
//! R9 `codec-symmetry` fixture: a clean writer/reader pair with a
//! justified wire-format exemption, a drifted pair (set asymmetry and
//! order divergence), and an unpaired writer.

pub struct Rec {
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub pad: u32,
}

// eagleeye-lint: codec-write(Rec)
// eagleeye-lint: codec-allow(Rec::pad): padding never hits the wire; the reader zeroes it
pub fn write_rec(r: &Rec, out: &mut Vec<u8>) {
    out.extend(r.a.to_le_bytes());
    out.extend(r.b.to_le_bytes());
    out.extend(r.c.to_le_bytes());
}

// eagleeye-lint: codec-read(Rec)
pub fn read_rec(buf: &[u8]) -> Rec {
    Rec {
        a: get(buf, 0),
        b: get(buf, 4),
        c: get(buf, 8),
        pad: 0,
    }
}

pub struct Drift {
    pub x: u32,
    pub y: u32,
    pub z: u32,
    pub w: u32,
}

// eagleeye-lint: codec-write(Drift)
pub fn write_drift(d: &Drift, out: &mut Vec<u8>) {
    out.extend(d.x.to_le_bytes());
    out.extend(d.y.to_le_bytes());
    out.extend(d.w.to_le_bytes());
}

// eagleeye-lint: codec-read(Drift)
pub fn read_drift(buf: &[u8]) -> Drift {
    Drift {
        x: get(buf, 0),
        w: get(buf, 4),
        y: 0,
        z: get(buf, 8),
    }
}

pub struct Orphan {
    pub q: u32,
}

// eagleeye-lint: codec-write(Orphan)
pub fn write_orphan(o: &Orphan, out: &mut Vec<u8>) {
    out.extend(o.q.to_le_bytes());
}

fn get(buf: &[u8], at: usize) -> u32 {
    u32::from(buf[at])
}
