//@ path: crates/core/src/fold_demo.rs
//! R10 `fold-coverage` fixture: a clean accumulating fold with a
//! justified identity exemption, a compare fn proven exhaustive by
//! destructuring, a fold with a blind spot, and a dangling annotation.

pub struct Acc {
    pub hits: u64,
    pub misses: u64,
    pub elapsed: u64,
    pub label: u32,
}

// eagleeye-lint: fold-of(Acc)
// eagleeye-lint: fold-allow(Acc::label): identity, set at construction and never folded
pub fn absorb(acc: &mut Acc, part: &Acc) {
    acc.hits += part.hits;
    acc.misses += part.misses;
    acc.elapsed += part.elapsed;
}

// eagleeye-lint: fold-of(Acc)
pub fn same_outcome(a: &Acc, b: &Acc) -> bool {
    let Acc {
        hits,
        misses,
        elapsed: _,
        label,
    } = a;
    *hits == b.hits && *misses == b.misses && *label == b.label
}

// eagleeye-lint: fold-of(Acc)
pub fn record(acc: &Acc, sink: &mut Vec<u64>) {
    sink.push(acc.hits);
    sink.push(acc.misses);
}

// eagleeye-lint: fold-of(Acc)
pub struct NotAFn {
    pub v: u32,
}
