//@ path: crates/sim/src/demo.rs
use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now()
}

pub fn suppressed_deadline() -> Instant {
    // eagleeye-lint: allow(clock): fixture — wall-clock deadline by design
    Instant::now()
}

pub fn mentions_only() -> &'static str {
    // Instant::now() in a comment never fires.
    "Instant::now() in a string never fires"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn clock_rule_applies_even_in_tests() {
        let _ = Instant::now();
    }
}
