//! The lint engine must run clean on the workspace that ships it —
//! the same gate CI applies with `eagleeye-lint --deny` — and the
//! suppression inventory must match the checked-in
//! `lint-allowlist.txt` baseline exactly.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use eagleeye_lint::lint_workspace;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "the workspace must lint clean; violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "workspace walk looks broken: only {} files scanned",
        report.files_scanned
    );
}

/// Rebuilds `(rule, file) -> count` from the live suppressions and
/// compares it to `lint-allowlist.txt`, mirroring the binary's
/// `--baseline` check so a plain `cargo test` catches drift too.
#[test]
fn suppressions_match_checked_in_baseline() {
    let root = workspace_root();
    let report = lint_workspace(&root).expect("workspace walk");

    let mut live: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (file, supp) in &report.suppressions {
        for rule in &supp.rules {
            *live.entry((rule.clone(), file.clone())).or_insert(0) += 1;
        }
    }

    let baseline_path = root.join("lint-allowlist.txt");
    let text = fs::read_to_string(&baseline_path).expect("read lint-allowlist.txt");
    let mut baseline: BTreeMap<(String, String), usize> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let count: usize = parts
            .next()
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("bad baseline line: {line}"));
        let rule = parts.next().expect("rule field").to_string();
        let file = parts.next().expect("file field").to_string();
        assert!(
            baseline.insert((rule, file), count).is_none(),
            "duplicate baseline line: {line}"
        );
    }

    assert_eq!(
        live, baseline,
        "suppression inventory drifted from lint-allowlist.txt; \
         update the baseline in the same change that justifies it"
    );
}
