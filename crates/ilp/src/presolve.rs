//! Presolve reductions for the sparse solver tier, with an exact
//! postsolve map back to the original variable space.
//!
//! [`presolve`] runs a fixpoint loop of safe, equivalence-preserving
//! reductions over a [`Model`]:
//!
//! * **integer bound rounding** — integer domains shrink inward to the
//!   nearest integers (an empty rounded domain proves infeasibility);
//! * **fixed-variable elimination** — variables whose bounds collapse
//!   are substituted into every row and the objective offset;
//! * **singleton-row tightening** — one-term rows become variable
//!   bounds and are removed;
//! * **empty/redundant-row removal** — rows with no remaining terms
//!   are consistency-checked and dropped; rows whose activity bounds
//!   already imply them (dominated by the variable bounds) are dropped;
//! * **empty-column fixing** — variables in no remaining row are fixed
//!   at their objective-favored bound when it is finite (an unbounded
//!   favored direction is *left in the model* so the solver surfaces
//!   [`crate::IlpError::Unbounded`] exactly like the dense tier);
//! * **coefficient tightening** — for `Le`/`Ge` rows, a unit-range
//!   integer variable whose coefficient makes the row binding only at
//!   one of its bounds gets the classic Savelsbergh reduction, which
//!   preserves the integer feasible set while tightening the LP
//!   relaxation.
//!
//! Every reduction preserves the set of optimal solutions of the
//! original MILP (coefficient tightening changes only the *relaxation*,
//! never the integer-feasible set). The loop runs to a fixpoint, so
//! `presolve ∘ presolve = presolve`: re-presolving a reduced model
//! performs zero further reductions — a property the
//! `sparse_differential` suite pins.

use crate::model::{Model, ObjectiveDirection, RowDef, Sense, VarDef, VarKind};

/// Bounds closer than this collapse to a fixed variable.
const FIX_TOL: f64 = 1e-9;
/// Feasibility slack when checking empty rows and activity bounds.
const ROW_TOL: f64 = 1e-7;
/// Integer bounds within this of an integer round to it instead of
/// past it (matches the B&B integrality default).
const INT_TOL: f64 = 1e-9;

/// Outcome of a presolve pass.
#[derive(Debug, Clone)]
pub enum PresolveResult {
    /// The reduced model plus its postsolve map.
    Reduced(Presolved),
    /// The reductions proved the model infeasible (crossed bounds or
    /// an unsatisfiable row) before any solve was needed.
    Infeasible,
}

/// A presolved model: the reduced problem, the map back to the
/// original variable space, and what was done.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same objective direction as the original).
    pub model: Model,
    /// Restores original-space solutions from reduced-space ones.
    pub map: PostsolveMap,
    /// Objective contribution of the eliminated variables, in the
    /// model's own direction: `original = reduced + offset`.
    pub offset: f64,
    /// Reduction counters.
    pub stats: PresolveStats,
}

/// What a presolve pass eliminated or tightened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PresolveStats {
    /// Variables eliminated (fixed and substituted out).
    pub vars_eliminated: usize,
    /// Rows removed (empty, singleton, or dominated/redundant).
    pub rows_removed: usize,
    /// Variable bounds tightened (integer rounding and singleton rows).
    pub bounds_tightened: usize,
    /// Row coefficients tightened (Savelsbergh reductions).
    pub coeffs_tightened: usize,
}

impl PresolveStats {
    /// True when the pass changed nothing — the fixpoint/idempotence
    /// witness.
    pub fn is_noop(&self) -> bool {
        *self == PresolveStats::default()
    }
}

/// Per-original-variable disposition after presolve.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VarMap {
    /// Still present, at this index in the reduced model.
    Kept(usize),
    /// Eliminated at this fixed value.
    Fixed(f64),
}

/// Maps reduced-space solutions back to the original variable space.
#[derive(Debug, Clone, PartialEq)]
pub struct PostsolveMap {
    entries: Vec<VarMap>,
    n_reduced: usize,
}

impl PostsolveMap {
    /// Number of variables in the original model.
    pub fn n_original(&self) -> usize {
        self.entries.len()
    }

    /// Number of variables surviving into the reduced model.
    pub fn n_reduced(&self) -> usize {
        self.n_reduced
    }

    /// Restores an original-space solution vector from a reduced-space
    /// one: kept variables copy through, eliminated variables take
    /// their fixed values.
    ///
    /// # Panics
    ///
    /// Panics if `reduced` is not `n_reduced()` long.
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(reduced.len(), self.n_reduced, "reduced solution length");
        self.entries
            .iter()
            .map(|e| match e {
                VarMap::Kept(r) => reduced[*r],
                VarMap::Fixed(v) => *v,
            })
            .collect()
    }

    /// Projects an original-space candidate (e.g. an incumbent hint)
    /// into the reduced space. Returns `None` when the candidate
    /// disagrees with a presolve-fixed value — such a candidate cannot
    /// be represented in the reduced model. A candidate that satisfies
    /// the original bounds always agrees (fixings derive from those
    /// bounds), so this is a safety net, not a common path.
    pub fn project(&self, original: &[f64]) -> Option<Vec<f64>> {
        if original.len() != self.entries.len() {
            return None;
        }
        let mut reduced = vec![0.0; self.n_reduced];
        for (e, &x) in self.entries.iter().zip(original) {
            match e {
                VarMap::Kept(r) => reduced[*r] = x,
                VarMap::Fixed(v) => {
                    if (x - v).abs() > 1e-6 {
                        return None;
                    }
                }
            }
        }
        Some(reduced)
    }
}

/// In-flight row state during the reduction loop.
#[derive(Debug, Clone)]
struct WorkRow {
    terms: Vec<(usize, f64)>,
    sense: Sense,
    rhs: f64,
}

/// Runs the presolve fixpoint loop over `model`.
///
/// The input is never mutated; the reduced model shares its objective
/// direction and keeps surviving variables in their original relative
/// order.
pub fn presolve(model: &Model) -> PresolveResult {
    let n = model.vars.len();
    let minimize = matches!(model.direction(), ObjectiveDirection::Minimize);

    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    let kind: Vec<VarKind> = model.vars.iter().map(|v| v.kind).collect();
    let obj: Vec<f64> = model.vars.iter().map(|v| v.obj).collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut rows: Vec<Option<WorkRow>> = model
        .rows
        .iter()
        .map(|r| {
            Some(WorkRow {
                terms: r.terms.clone(),
                sense: r.sense,
                rhs: r.rhs,
            })
        })
        .collect();
    let mut stats = PresolveStats::default();

    // Initial integer bound rounding.
    for j in 0..n {
        if kind[j] == VarKind::Integer && !round_integer_bounds(&mut lower[j], &mut upper[j]) {
            stats.bounds_tightened += 1;
        }
        if lower[j] > upper[j] + FIX_TOL {
            return PresolveResult::Infeasible;
        }
    }

    // The fixpoint loop. Each reduction both shrinks the problem and
    // can expose further reductions (a substitution makes a row a
    // singleton, a singleton tightens a bound, a tightened bound fixes
    // a variable...), so iterate until a full pass changes nothing.
    // Every pass strictly reduces (vars + rows + coefficient mass) or
    // terminates, so the cap is generous slack, not a correctness
    // crutch.
    for _pass in 0..(2 * (n + rows.len()) + 8) {
        let mut changed = false;

        // Fixed-variable elimination: collapse bounds, substitute into
        // every live row.
        for j in 0..n {
            if fixed[j].is_some() {
                continue;
            }
            if upper[j] - lower[j] <= FIX_TOL {
                let v = if kind[j] == VarKind::Integer {
                    lower[j].round()
                } else {
                    lower[j]
                };
                fixed[j] = Some(v);
                stats.vars_eliminated += 1;
                changed = true;
                for row in rows.iter_mut().flatten() {
                    if let Some(pos) = row.terms.iter().position(|&(t, _)| t == j) {
                        let (_, c) = row.terms.remove(pos);
                        row.rhs -= c * v;
                    }
                }
            }
        }

        // Row scan: empty-row consistency, singleton tightening,
        // activity-bound redundancy/infeasibility, coefficient
        // tightening.
        for slot in rows.iter_mut() {
            let Some(row) = slot else { continue };

            // Exact-zero coefficients (merged duplicates) carry no
            // information; drop them so emptiness is detectable.
            let before = row.terms.len();
            // eagleeye-lint: allow(float-eq): exact-zero only — tiny nonzero coefficients must be kept
            row.terms.retain(|&(_, c)| c != 0.0);
            if row.terms.len() != before {
                changed = true;
            }

            if row.terms.is_empty() {
                let ok = match row.sense {
                    Sense::Le => 0.0 <= row.rhs + ROW_TOL,
                    Sense::Ge => 0.0 >= row.rhs - ROW_TOL,
                    Sense::Eq => row.rhs.abs() <= ROW_TOL,
                };
                if !ok {
                    return PresolveResult::Infeasible;
                }
                *slot = None;
                stats.rows_removed += 1;
                changed = true;
                continue;
            }

            if row.terms.len() == 1 {
                let (j, c) = row.terms[0];
                let bound = row.rhs / c;
                let (tighten_lo, tighten_hi) = match (row.sense, c > 0.0) {
                    (Sense::Le, true) | (Sense::Ge, false) => (false, true),
                    (Sense::Le, false) | (Sense::Ge, true) => (true, false),
                    (Sense::Eq, _) => (true, true),
                };
                if tighten_hi && bound < upper[j] - 1e-12 {
                    upper[j] = bound;
                    stats.bounds_tightened += 1;
                }
                if tighten_lo && bound > lower[j] + 1e-12 {
                    lower[j] = bound;
                    stats.bounds_tightened += 1;
                }
                if kind[j] == VarKind::Integer {
                    round_integer_bounds(&mut lower[j], &mut upper[j]);
                }
                if lower[j] > upper[j] + FIX_TOL {
                    return PresolveResult::Infeasible;
                }
                *slot = None;
                stats.rows_removed += 1;
                changed = true;
                continue;
            }

            // Activity bounds over the current domains.
            let (min_act, max_act) = activity_bounds(&row.terms, &lower, &upper);

            // Infeasibility by activity.
            let infeasible = match row.sense {
                Sense::Le => min_act > row.rhs + ROW_TOL,
                Sense::Ge => max_act < row.rhs - ROW_TOL,
                Sense::Eq => min_act > row.rhs + ROW_TOL || max_act < row.rhs - ROW_TOL,
            };
            if infeasible {
                return PresolveResult::Infeasible;
            }

            // Redundancy (dominated by the variable bounds).
            let redundant = match row.sense {
                Sense::Le => max_act <= row.rhs + 1e-9,
                Sense::Ge => min_act >= row.rhs - 1e-9,
                Sense::Eq => (max_act - row.rhs).abs() <= 1e-9 && (min_act - row.rhs).abs() <= 1e-9,
            };
            if redundant && max_act.is_finite() && min_act.is_finite() {
                *slot = None;
                stats.rows_removed += 1;
                changed = true;
                continue;
            }

            // Coefficient tightening on inequality rows.
            if matches!(row.sense, Sense::Le | Sense::Ge)
                && tighten_coefficients(row, &lower, &upper, &kind)
            {
                stats.coeffs_tightened += 1;
                changed = true;
            }
        }

        // Empty-column fixing: a variable in no live row moves freely
        // to its objective-favored bound.
        let mut in_a_row = vec![false; n];
        for row in rows.iter().flatten() {
            for &(j, _) in &row.terms {
                in_a_row[j] = true;
            }
        }
        for j in 0..n {
            if fixed[j].is_some() || in_a_row[j] {
                continue;
            }
            // In minimize direction: positive cost favors the lower
            // bound, negative the upper. Zero cost goes to the lower
            // bound for determinism. An infinite favored bound is left
            // for the solver to report as unbounded.
            let signed = if minimize { obj[j] } else { -obj[j] };
            let target = if signed >= 0.0 { lower[j] } else { upper[j] };
            if target.is_finite() {
                fixed[j] = Some(target);
                stats.vars_eliminated += 1;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Assemble the reduced model.
    let mut reduced_index = vec![usize::MAX; n];
    let mut reduced = Model {
        direction: model.direction,
        vars: Vec::new(),
        rows: Vec::new(),
    };
    let mut offset = 0.0;
    let mut entries = Vec::with_capacity(n);
    for j in 0..n {
        match fixed[j] {
            Some(v) => {
                offset += obj[j] * v;
                entries.push(VarMap::Fixed(v));
            }
            None => {
                reduced_index[j] = reduced.vars.len();
                entries.push(VarMap::Kept(reduced.vars.len()));
                reduced.vars.push(VarDef {
                    lower: lower[j],
                    upper: upper[j],
                    kind: kind[j],
                    obj: obj[j],
                });
            }
        }
    }
    for row in rows.into_iter().flatten() {
        reduced.rows.push(RowDef {
            terms: row
                .terms
                .iter()
                .map(|&(j, c)| (reduced_index[j], c))
                .collect(),
            sense: row.sense,
            rhs: row.rhs,
        });
    }
    let n_reduced = reduced.vars.len();
    PresolveResult::Reduced(Presolved {
        model: reduced,
        map: PostsolveMap { entries, n_reduced },
        offset,
        stats,
    })
}

/// Rounds an integer domain inward. Returns true when the bounds were
/// already integral (within `INT_TOL`), false when rounding moved one.
fn round_integer_bounds(lower: &mut f64, upper: &mut f64) -> bool {
    let mut unchanged = true;
    let lo = if (*lower - lower.round()).abs() <= INT_TOL {
        lower.round()
    } else {
        unchanged = false;
        lower.ceil()
    };
    let hi = if upper.is_finite() {
        if (*upper - upper.round()).abs() <= INT_TOL {
            upper.round()
        } else {
            unchanged = false;
            upper.floor()
        }
    } else {
        *upper
    };
    *lower = lo;
    *upper = hi;
    unchanged
}

/// Minimum and maximum activity of a row over the given domains
/// (±∞ when an unbounded variable points that way).
fn activity_bounds(terms: &[(usize, f64)], lower: &[f64], upper: &[f64]) -> (f64, f64) {
    let mut min_act = 0.0;
    let mut max_act = 0.0;
    for &(j, c) in terms {
        let (lo_c, hi_c) = if c >= 0.0 {
            (c * lower[j], c * upper[j])
        } else {
            (c * upper[j], c * lower[j])
        };
        min_act += lo_c;
        max_act += hi_c;
    }
    (min_act, max_act)
}

/// Savelsbergh coefficient tightening for one inequality row: find a
/// unit-range integer variable whose coefficient makes the row binding
/// only at one of its bounds, and shrink that coefficient to the
/// tightest value that keeps the integer feasible set identical.
/// `Ge` rows are handled through the `Le` form of their negation.
/// Applies at most one reduction per call (the row is rescanned on the
/// next fixpoint pass). Returns true when a coefficient changed.
fn tighten_coefficients(row: &mut WorkRow, lower: &[f64], upper: &[f64], kind: &[VarKind]) -> bool {
    // Work on the Le form: Σ c x ≤ b.
    let flip = matches!(row.sense, Sense::Ge);
    let le_coeff = |c: f64| if flip { -c } else { c };
    let b = le_coeff(row.rhs);

    let (min_le, max_le) = if flip {
        let (mn, mx) = activity_bounds(&row.terms, lower, upper);
        (-mx, -mn)
    } else {
        activity_bounds(&row.terms, lower, upper)
    };
    let _ = min_le;
    if !max_le.is_finite() {
        return false;
    }

    for idx in 0..row.terms.len() {
        let (j, raw_c) = row.terms[idx];
        if kind[j] != VarKind::Integer {
            continue;
        }
        let (l, u) = (lower[j], upper[j]);
        if !u.is_finite() || (u - l - 1.0).abs() > INT_TOL {
            continue; // unit-range integers only — exact for binaries
        }
        let c = le_coeff(raw_c);
        if c.abs() <= 1e-12 {
            continue;
        }
        // Max contribution of x_j and of the rest of the row.
        let contrib_max = if c > 0.0 { c * u } else { c * l };
        let rest_max = max_le - contrib_max;
        // Row must be redundant with x_j at its favorable bound and
        // binding at the other one; the new coefficient must strictly
        // improve (the strict-improvement guard is what makes the
        // fixpoint terminate and the pass idempotent).
        let (favorable_cap, other_cap) = if c > 0.0 {
            (b - c * l, b - c * u)
        } else {
            (b - c * u, b - c * l)
        };
        if rest_max <= favorable_cap + 1e-9 && other_cap < rest_max - 1e-9 {
            let new_mag = max_le - b; // |c'| for a unit range
            if new_mag > 1e-9 && new_mag < c.abs() - 1e-9 {
                let new_c = if c > 0.0 { new_mag } else { -new_mag };
                let new_b = if c > 0.0 {
                    rest_max + new_c * l
                } else {
                    rest_max + new_c * u
                };
                row.terms[idx].1 = if flip { -new_c } else { new_c };
                row.rhs = if flip { -new_b } else { new_b };
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense, SolveOptions};

    fn reduced(model: &Model) -> Presolved {
        match presolve(model) {
            PresolveResult::Reduced(p) => p,
            PresolveResult::Infeasible => panic!("unexpectedly infeasible"),
        }
    }

    #[test]
    fn fixed_variables_are_substituted_with_offset() {
        // min 2x + 3y with x fixed at 4 by its bounds, x + y >= 6.
        let mut m = Model::minimize();
        let x = m.add_continuous_var(4.0, 4.0, 2.0).unwrap();
        let y = m.add_continuous_var(0.0, 10.0, 3.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Ge, 6.0)
            .unwrap();
        let p = reduced(&m);
        // x substitutes out (offset 2·4 = 8); the row becomes the
        // singleton y ≥ 2, folds into y's lower bound, and disappears;
        // y is then an empty column favoring its (tightened) lower
        // bound — the whole model presolves away, offset 8 + 3·2 = 14.
        assert_eq!(p.model.num_vars(), 0);
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.stats.vars_eliminated, 2);
        assert!((p.offset - 14.0).abs() < 1e-12);
        assert_eq!(p.map.restore(&[]), vec![4.0, 2.0]);
        let _ = y;
    }

    #[test]
    fn integer_bounds_round_inward() {
        // The row keeps x and y from presolving away entirely (it can
        // bind, so it is neither redundant nor a singleton).
        let mut m = Model::minimize();
        let x = m.add_integer_var(0.3, 2.7, 1.0).unwrap();
        let y = m.add_continuous_var(0.0, 2.0, -1.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 3.0)
            .unwrap();
        let p = reduced(&m);
        // x rounded to [1, 2]; still two integer points so not fixed.
        assert_eq!(p.model.num_vars(), 2);
        assert!((p.model.vars[0].lower - 1.0).abs() < 1e-12);
        assert!((p.model.vars[0].upper - 2.0).abs() < 1e-12);
        assert!(p.stats.bounds_tightened >= 1);
        let _ = (x, y);
    }

    #[test]
    fn crossed_integer_rounding_is_infeasible() {
        let mut m = Model::minimize();
        let _x = m.add_integer_var(0.2, 0.8, 1.0).unwrap();
        assert!(matches!(presolve(&m), PresolveResult::Infeasible));
    }

    #[test]
    fn singleton_rows_become_bounds_and_conflicts_are_caught() {
        let mut m = Model::minimize();
        let x = m.add_continuous_var(0.0, 10.0, 1.0).unwrap();
        m.add_constraint([(x, 1.0)], Sense::Ge, 0.6).unwrap();
        m.add_constraint([(x, 1.0)], Sense::Le, 0.4).unwrap();
        assert!(matches!(presolve(&m), PresolveResult::Infeasible));
    }

    #[test]
    fn redundant_rows_are_removed() {
        // x + y <= 25 can never bind with x,y in [0,10].
        let mut m = Model::maximize();
        let x = m.add_continuous_var(0.0, 10.0, 1.0).unwrap();
        let y = m.add_continuous_var(0.0, 10.0, 1.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 25.0)
            .unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 12.0)
            .unwrap();
        let p = reduced(&m);
        assert_eq!(p.model.num_constraints(), 1);
        assert_eq!(p.stats.rows_removed, 1);
    }

    #[test]
    fn empty_columns_fix_to_favored_finite_bounds() {
        let mut m = Model::maximize();
        let _a = m.add_continuous_var(0.0, 5.0, 2.0).unwrap(); // favors upper
        let _b = m.add_continuous_var(1.0, 5.0, -3.0).unwrap(); // favors lower
        let p = reduced(&m);
        assert_eq!(p.model.num_vars(), 0);
        assert_eq!(p.map.restore(&[]), vec![5.0, 1.0]);
        assert!((p.offset - (2.0 * 5.0 + -3.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn unbounded_favored_direction_is_left_for_the_solver() {
        let mut m = Model::maximize();
        let _x = m.add_continuous_var(0.0, f64::INFINITY, 1.0).unwrap();
        let p = reduced(&m);
        assert_eq!(p.model.num_vars(), 1, "must stay for Unbounded detection");
    }

    #[test]
    fn coefficient_tightening_preserves_the_milp_optimum() {
        // 5x + y <= 6 with binary x: when x = 0 the row can't bind
        // (max rest = 4 ≤ 6), when x = 1 it caps y at 1. Tightened to
        // 2x + y <= 4 — same integer feasible set, tighter relaxation.
        let mut m = Model::maximize();
        let x = m.add_binary_var(3.0);
        let y = m.add_integer_var(0.0, 4.0, 1.0).unwrap();
        m.add_constraint([(x, 5.0), (y, 1.0)], Sense::Le, 6.0)
            .unwrap();
        let p = reduced(&m);
        assert_eq!(p.stats.coeffs_tightened, 1);
        let row = &p.model.rows[0];
        let cx = row.terms.iter().find(|&&(j, _)| j == 0).unwrap().1;
        assert!(cx < 5.0 - 1e-9, "coefficient must shrink, got {cx}");
        // Same optimum through the untightened dense solve.
        let dense = m.solve(&SolveOptions::default()).unwrap();
        let tight = p.model.solve(&SolveOptions::default()).unwrap();
        assert!((dense.objective() - (tight.objective() + p.offset)).abs() < 1e-9);
    }

    #[test]
    fn presolve_is_idempotent_on_its_own_output() {
        let mut m = Model::maximize();
        let x = m.add_binary_var(3.0);
        let y = m.add_integer_var(0.3, 4.6, 1.0).unwrap();
        let z = m.add_continuous_var(2.0, 2.0, 1.0).unwrap();
        let w = m.add_continuous_var(0.0, 9.0, 4.0).unwrap();
        m.add_constraint([(x, 5.0), (y, 1.0), (z, 1.0)], Sense::Le, 8.0)
            .unwrap();
        m.add_constraint([(w, 1.0)], Sense::Le, 7.0).unwrap();
        let first = reduced(&m);
        assert!(!first.stats.is_noop());
        let second = reduced(&first.model);
        assert!(
            second.stats.is_noop(),
            "second pass must be a no-op, got {:?}",
            second.stats
        );
        assert_eq!(second.model.num_vars(), first.model.num_vars());
        assert_eq!(
            second.model.num_constraints(),
            first.model.num_constraints()
        );
    }

    #[test]
    fn project_round_trips_restore() {
        let mut m = Model::minimize();
        let _f = m.add_continuous_var(3.0, 3.0, 1.0).unwrap();
        let x = m.add_continuous_var(0.0, 5.0, 1.0).unwrap();
        let y = m.add_binary_var(-1.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Sense::Le, 4.0)
            .unwrap();
        let p = reduced(&m);
        assert_eq!(p.map.n_original(), 3);
        assert_eq!(p.map.n_reduced(), 2);
        let reduced_point = vec![1.5, 1.0];
        let restored = p.map.restore(&reduced_point);
        assert_eq!(p.map.project(&restored), Some(reduced_point));
        // A candidate that contradicts the fixing cannot project.
        let mut bad = restored.clone();
        bad[0] = 9.0;
        assert_eq!(p.map.project(&bad), None);
        let _ = (x, y);
    }
}
