//! A small, exact mixed-integer linear programming solver.
//!
//! The EagleEye paper solves two optimization problems with Google
//! OR-Tools: target clustering (a planar rectangle cover) and
//! actuation-aware follower scheduling (a generalized-TSP-style flow
//! problem). This crate provides the solver substrate from scratch:
//!
//! * [`Model`] — a builder for LP/MILP models: variables with bounds
//!   (continuous or integer), linear constraints, and a linear objective.
//! * A dense, bounded-variable, two-phase **primal simplex** for the LP
//!   relaxation ([`simplex`] module).
//! * A depth-first **branch-and-bound** with most-fractional branching,
//!   incumbent pruning, and time/node limits for integrality.
//! * A **sparse tier** ([`SolverTier::Sparse`]): a [`presolve`] pass
//!   with an exact postsolve map, a CSC-based **sparse revised
//!   simplex** ([`sparse`] module), and **pseudocost branching** —
//!   selected per solve via [`SolveOptions::tier`], observationally
//!   equivalent to the dense tier (same statuses, objectives within
//!   1e-9) but faster on large sparse instances.
//!
//! The instances EagleEye produces are small (hundreds of variables per
//! scheduling frame) and near-network-structured, so an exact dense solver
//! closes them in milliseconds — reproducing the runtime behaviour of
//! Fig. 12a. The sparse tier exists for the full-scale workloads where
//! the dense tableau is the named bottleneck.
//!
//! # Example: a tiny knapsack
//!
//! ```
//! use eagleeye_ilp::{Model, Sense, SolveOptions};
//!
//! let mut m = Model::maximize();
//! let x = m.add_binary_var(8.0);  // value 8, weight 5
//! let y = m.add_binary_var(5.0);  // value 5, weight 3
//! let z = m.add_binary_var(4.0);  // value 4, weight 3
//! m.add_constraint([(x, 5.0), (y, 3.0), (z, 3.0)], Sense::Le, 6.0)?;
//! let sol = m.solve(&SolveOptions::default())?;
//! assert!((sol.objective() - 9.0).abs() < 1e-6); // take y and z
//! # Ok::<(), eagleeye_ilp::IlpError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod branch;
mod error;
mod model;
pub mod presolve;
pub mod simplex;
pub mod sparse;

pub use branch::{Frontier, SolveOptions, SolveStats, SolverTier, AUTO_SPARSE_THRESHOLD};
pub use error::IlpError;
pub use model::{Model, ObjectiveDirection, Sense, Solution, SolveStatus, VarId, VarKind};
