//! A sparse, bounded-variable, two-phase revised simplex over CSC
//! column storage.
//!
//! This is the LP engine behind the `Sparse` solver tier
//! ([`crate::SolverTier`]). It solves the same computational standard
//! form as the dense tableau in [`crate::simplex`] —
//!
//! ```text
//! minimize    cᵀx
//! subject to  aᵢᵀx {≤,=,≥} bᵢ      for every row i
//!             0 ≤ xⱼ ≤ uⱼ          (uⱼ may be +∞)
//! ```
//!
//! — but instead of maintaining the m×n tableau `B⁻¹A` it keeps the
//! constraint matrix once in compressed sparse column (CSC) form and
//! maintains only the m×m basis inverse `B⁻¹`. Per iteration this
//! costs `O(m² + nnz)` (pricing via `y = c_B B⁻¹`, one FTRAN, one
//! product-form update of `B⁻¹`) instead of the tableau's `O(m·n)`,
//! which is the win on scheduling-shaped instances where the column
//! count dwarfs the row count.
//!
//! The engine deliberately shares every *contract* with the dense
//! tableau:
//!
//! * rows are normalized by [`crate::simplex::normalized_rows`] and
//!   columns laid out by [`crate::simplex::column_layout`], so a
//!   [`WarmBasis`] captured by either engine installs into the other;
//! * phase 1 minimizes the artificial sum, phase 2 pins artificials;
//! * Dantzig pricing with the same stall→Bland anti-cycling switch,
//!   bound flips, and strided wall-clock deadline polls;
//! * the warm path (install + dual restore) rejects deterministically
//!   and never declares infeasibility itself — that verdict always
//!   comes from the cold path's phase 1.
//!
//! The two engines are *not* bit-identical to each other (different
//! arithmetic orders reach different — equally optimal — bases); each
//! engine is bit-deterministic on its own, and the
//! `sparse_differential` suite pins agreement on status, objective,
//! and selected solution.

use crate::simplex::{
    column_layout, normalized_rows, LpProblem, LpResult, LpSolution, WarmBasis, COST_TOL,
    DEADLINE_CHECK_STRIDE, FEAS_TOL, INSTALL_PIVOT_TOL, PIVOT_TOL, STALL_LIMIT,
};
use crate::IlpError;
use std::time::Instant;

/// Solves the LP with the sparse revised simplex.
///
/// # Errors
///
/// Same as [`crate::simplex::solve`]: [`IlpError::Unbounded`],
/// [`IlpError::IterationLimit`], [`IlpError::NonFiniteValue`] /
/// [`IlpError::UnknownVariable`] for malformed input.
pub fn solve_sparse(problem: &LpProblem) -> Result<LpResult, IlpError> {
    solve_sparse_with_warm_start(problem, None, None)
}

/// Solves the LP with the sparse revised simplex, optionally aborting
/// at `deadline` and/or warm-starting from a basis captured off a
/// nearby problem (either engine's — the layouts are identical).
///
/// The warm path factors the basis, verifies dual feasibility, and
/// runs a bounded-variable dual simplex to restore primal feasibility;
/// any failure rejects the basis and falls back to the cold two-phase
/// solve, exactly like [`crate::simplex::solve_with_warm_start`].
///
/// # Errors
///
/// Same as [`solve_sparse`], plus [`IlpError::Deadline`].
pub fn solve_sparse_with_warm_start(
    problem: &LpProblem,
    deadline: Option<Instant>,
    warm: Option<&WarmBasis>,
) -> Result<LpResult, IlpError> {
    if let Some(basis) = warm {
        let mut s = RevisedSimplex::new(problem)?;
        s.deadline = deadline;
        if let Some(result) = s.solve_warm(basis) {
            return result;
        }
    }
    let mut s = RevisedSimplex::new(problem)?;
    s.deadline = deadline;
    s.solve()
}

/// Revised simplex state: CSC columns of the (normalized) constraint
/// matrix plus a dense basis inverse.
struct RevisedSimplex {
    /// Number of structural variables (prefix of the column space).
    n_struct: usize,
    /// Total columns (structural + slack/surplus + artificial).
    n_cols: usize,
    /// Number of rows.
    m: usize,
    /// CSC column pointers, length `n_cols + 1`.
    col_ptr: Vec<usize>,
    /// CSC row indices.
    col_rows: Vec<usize>,
    /// CSC values.
    col_vals: Vec<f64>,
    /// Row-major dense `B⁻¹`, `m x m`.
    binv: Vec<f64>,
    /// Normalized right-hand side (immutable; basic values derive from it).
    b0: Vec<f64>,
    /// Current basic variable values, one per row.
    xb: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Whether each *nonbasic* column currently sits at its upper bound.
    at_upper: Vec<bool>,
    /// Whether each column is basic.
    is_basic: Vec<bool>,
    /// Upper bound per column.
    upper: Vec<f64>,
    /// First artificial column index.
    art_start: usize,
    /// Phase-2 cost per column.
    cost: Vec<f64>,
    /// Iterations used so far.
    iterations: usize,
    /// Basis-changing pivots so far (excludes bound flips).
    pivots: usize,
    /// Iteration cap.
    max_iterations: usize,
    /// Optional wall-clock deadline.
    deadline: Option<Instant>,
}

impl RevisedSimplex {
    fn new(p: &LpProblem) -> Result<Self, IlpError> {
        let n_struct = p.cost.len();
        let m = p.rows.len();
        let norm_rows = normalized_rows(p)?;
        let layout = column_layout(n_struct, &norm_rows);
        let art_start = layout.art_start;
        let n_cols = layout.n_cols;

        // Build CSC storage. Structural columns first (entries gathered
        // from the row-major input, duplicates summed to match the
        // dense tableau's `row[j] += c` accumulation), then the
        // singleton slack/surplus and artificial columns in row order.
        let mut col_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_cols];
        let mut b0 = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = layout.slack_start;
        let mut next_art = art_start;
        for (i, (coeffs, sense, rhs)) in norm_rows.iter().enumerate() {
            for &(j, c) in coeffs {
                match col_entries[j].iter_mut().find(|(r, _)| *r == i) {
                    Some((_, acc)) => *acc += c,
                    None => col_entries[j].push((i, c)),
                }
            }
            b0[i] = *rhs;
            match sense {
                crate::simplex::RowSense::Le => {
                    col_entries[next_slack].push((i, 1.0));
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                crate::simplex::RowSense::Ge => {
                    col_entries[next_slack].push((i, -1.0));
                    next_slack += 1;
                    col_entries[next_art].push((i, 1.0));
                    basis[i] = next_art;
                    next_art += 1;
                }
                crate::simplex::RowSense::Eq => {
                    col_entries[next_art].push((i, 1.0));
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        let mut col_ptr = Vec::with_capacity(n_cols + 1);
        let mut col_rows = Vec::new();
        let mut col_vals = Vec::new();
        col_ptr.push(0);
        for entries in &col_entries {
            for &(i, c) in entries {
                col_rows.push(i);
                col_vals.push(c);
            }
            col_ptr.push(col_rows.len());
        }

        let mut upper = Vec::with_capacity(n_cols);
        upper.extend_from_slice(&p.upper);
        upper.resize(n_cols, f64::INFINITY);

        let mut is_basic = vec![false; n_cols];
        for &j in &basis {
            is_basic[j] = true;
        }

        let mut cost = Vec::with_capacity(n_cols);
        cost.extend_from_slice(&p.cost);
        cost.resize(n_cols, 0.0);

        // Initial basis is the slack/artificial identity, so B⁻¹ = I
        // and the basic values are the normalized right-hand side.
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }

        Ok(RevisedSimplex {
            n_struct,
            n_cols,
            m,
            col_ptr,
            col_rows,
            col_vals,
            binv,
            xb: b0.clone(),
            b0,
            basis,
            at_upper: vec![false; n_cols],
            is_basic,
            upper,
            art_start,
            cost,
            iterations: 0,
            pivots: 0,
            max_iterations: 2_000 + 40 * (m + n_cols),
            deadline: None,
        })
    }

    /// Simplex multipliers `y = c_Bᵀ B⁻¹` for the given cost vector.
    fn dual_values(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            // eagleeye-lint: allow(float-eq): exact-zero sparsity skip; basis costs are copied, never computed, so 0.0 is exact
            if cb != 0.0 {
                let row = &self.binv[i * self.m..(i + 1) * self.m];
                for (yk, &bik) in y.iter_mut().zip(row) {
                    *yk += cb * bik;
                }
            }
        }
        y
    }

    /// Reduced cost `d_j = c_j - y·A_j` via the sparse column.
    #[inline]
    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        let mut d = cost[j];
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            d -= y[self.col_rows[idx]] * self.col_vals[idx];
        }
        d
    }

    /// FTRAN: the updated column `α = B⁻¹ A_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut alpha = vec![0.0; self.m];
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            let k = self.col_rows[idx];
            let v = self.col_vals[idx];
            for (i, a) in alpha.iter_mut().enumerate() {
                *a += self.binv[i * self.m + k] * v;
            }
        }
        alpha
    }

    /// Row `r` of `B⁻¹ A_j` alone (cheap per-candidate probe for the
    /// dual ratio test).
    #[inline]
    fn tableau_entry(&self, r: usize, j: usize) -> f64 {
        let row = &self.binv[r * self.m..(r + 1) * self.m];
        let mut a = 0.0;
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            a += row[self.col_rows[idx]] * self.col_vals[idx];
        }
        a
    }

    /// Product-form update of `B⁻¹` after pivoting column `j` into row
    /// `r`, where `alpha = B⁻¹ A_j` (the same elementary row operations
    /// the dense tableau applies, restricted to the inverse).
    fn update_binv(&mut self, r: usize, alpha: &[f64]) {
        let m = self.m;
        let inv = 1.0 / alpha[r];
        for x in self.binv[r * m..(r + 1) * m].iter_mut() {
            *x *= inv;
        }
        let row_r: Vec<f64> = self.binv[r * m..(r + 1) * m].to_vec();
        for i in 0..m {
            if i == r {
                continue;
            }
            let factor = alpha[i];
            if factor.abs() > 1e-13 {
                let row_i = &mut self.binv[i * m..(i + 1) * m];
                for (x, &rr) in row_i.iter_mut().zip(&row_r) {
                    *x -= factor * rr;
                }
            }
        }
    }

    fn solve(mut self) -> Result<LpResult, IlpError> {
        // Phase 1: minimize the sum of artificials.
        if self.art_start < self.n_cols {
            let phase1_cost: Vec<f64> = (0..self.n_cols)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            let obj = self.run_phase(&phase1_cost, /*ban_artificials=*/ false)?;
            if obj > FEAS_TOL {
                return Ok(LpResult::Infeasible);
            }
            // Pin artificials at zero for phase 2.
            for j in self.art_start..self.n_cols {
                self.upper[j] = 0.0;
            }
        }

        // Phase 2: the real objective.
        let cost = self.cost.clone();
        let obj = self.run_phase(&cost, /*ban_artificials=*/ true)?;
        Ok(LpResult::Optimal(self.extract(obj, false)))
    }

    /// Reads the optimal solution (and its reusable basis) out of the
    /// final state.
    fn extract(&self, obj: f64, warmed: bool) -> LpSolution {
        let mut values = vec![0.0; self.n_struct];
        for j in 0..self.n_struct {
            if !self.is_basic[j] && self.at_upper[j] {
                values[j] = self.upper[j];
            }
        }
        for (i, &j) in self.basis.iter().enumerate() {
            if j < self.n_struct {
                values[j] = self.xb[i].max(0.0);
            }
        }
        LpSolution {
            objective: obj,
            values,
            iterations: self.iterations,
            pivots: self.pivots,
            basis: WarmBasis {
                basis: self.basis.clone(),
                at_upper: self.at_upper.clone(),
                n_cols: self.n_cols,
            },
            warmed,
        }
    }

    /// Attempts the warm-start path: factor the basis, restore primal
    /// feasibility with the dual simplex, then polish with the primal
    /// phase-2 loop. Returns `None` to reject (caller falls back to a
    /// fresh cold solve).
    fn solve_warm(&mut self, warm: &WarmBasis) -> Option<Result<LpResult, IlpError>> {
        if !self.install(warm) {
            return None;
        }
        if !self.dual_restore() {
            return None;
        }
        let cost = self.cost.clone();
        match self.run_phase(&cost, /*ban_artificials=*/ true) {
            Ok(obj) => Some(Ok(LpResult::Optimal(self.extract(obj, true)))),
            Err(e) => Some(Err(e)),
        }
    }

    /// Installs a warm basis: validates the layout, pins artificials at
    /// zero, places nonbasic columns at their recorded bounds, factors
    /// `B⁻¹` with Gauss-Jordan elimination (partial pivoting over
    /// unassigned rows — the same row-assignment rule as the dense
    /// engine), and recomputes the basic values. Returns false to
    /// reject.
    fn install(&mut self, warm: &WarmBasis) -> bool {
        if warm.n_cols != self.n_cols
            || warm.basis.len() != self.m
            || warm.at_upper.len() != self.n_cols
        {
            return false;
        }
        let mut in_basis = vec![false; self.n_cols];
        for &j in &warm.basis {
            if j >= self.n_cols || in_basis[j] {
                return false;
            }
            in_basis[j] = true;
        }
        // The warm path skips phase 1 entirely: pin artificials so any
        // that remain basic are forced to zero by the dual loop.
        for j in self.art_start..self.n_cols {
            self.upper[j] = 0.0;
        }
        // Nonbasic columns at their recorded bound. An at-upper flag on
        // a column whose bound is now infinite cannot be honored.
        for j in 0..self.art_start {
            if !in_basis[j] && warm.at_upper[j] {
                if !self.upper[j].is_finite() {
                    return false;
                }
                self.at_upper[j] = true;
            }
        }
        // Factor B⁻¹: Gauss-Jordan on the dense gather of the basis
        // columns, processing them in ascending order and pivoting on
        // the largest-magnitude entry among unassigned rows (the rule
        // the dense install uses, so both engines accept/reject the
        // same bases up to arithmetic noise).
        let m = self.m;
        let mut cols: Vec<usize> = warm.basis.clone();
        cols.sort_unstable();
        let mut mat = vec![0.0; m * m]; // column t of `cols` in mat[..][t]
        for (t, &j) in cols.iter().enumerate() {
            for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
                mat[self.col_rows[idx] * m + t] = self.col_vals[idx];
            }
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut assigned = vec![false; m];
        let mut new_basis = vec![0usize; m];
        for (t, &j) in cols.iter().enumerate() {
            let mut best_row = usize::MAX;
            let mut best_mag = 0.0f64;
            for i in 0..m {
                if assigned[i] {
                    continue;
                }
                let mag = mat[i * m + t].abs();
                if mag > best_mag {
                    best_mag = mag;
                    best_row = i;
                }
            }
            if best_mag <= INSTALL_PIVOT_TOL {
                return false; // singular for this problem
            }
            let r = best_row;
            let inv = 1.0 / mat[r * m + t];
            for k in 0..m {
                mat[r * m + k] *= inv;
                binv[r * m + k] *= inv;
            }
            for i in 0..m {
                if i == r {
                    continue;
                }
                let factor = mat[i * m + t];
                if factor.abs() > 1e-13 {
                    for k in 0..m {
                        let mr = mat[r * m + k];
                        let br = binv[r * m + k];
                        mat[i * m + k] -= factor * mr;
                        binv[i * m + k] -= factor * br;
                    }
                }
            }
            assigned[r] = true;
            new_basis[r] = j;
        }
        self.binv = binv;
        self.basis = new_basis;
        for flag in self.is_basic.iter_mut() {
            *flag = false;
        }
        for &j in &self.basis {
            self.is_basic[j] = true;
            self.at_upper[j] = false;
        }
        // Basic values: xb = B⁻¹ (b - Σ_{nonbasic at upper} A_j u_j).
        let mut rhs = self.b0.clone();
        for j in 0..self.art_start {
            if self.at_upper[j] && !self.is_basic[j] {
                let u = self.upper[j];
                if u > 0.0 {
                    for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
                        rhs[self.col_rows[idx]] -= self.col_vals[idx] * u;
                    }
                }
            }
        }
        let mut xb = vec![0.0; m];
        for (i, x) in xb.iter_mut().enumerate() {
            let row = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for (bik, &rk) in row.iter().zip(&rhs) {
                acc += bik * rk;
            }
            *x = acc;
        }
        self.xb = xb;
        true
    }

    /// Restores primal feasibility with a bounded-variable dual
    /// simplex, assuming (and first verifying) dual feasibility of the
    /// installed basis. Returns false to reject the warm start — this
    /// path never declares infeasibility (the cold path adjudicates).
    fn dual_restore(&mut self) -> bool {
        let cost = self.cost.clone();
        let mut y = self.dual_values(&cost);
        // Dual feasibility: nonbasic at lower needs d_j ≥ 0, at upper
        // needs d_j ≤ 0. Fixed columns cannot move.
        for j in 0..self.n_cols {
            if self.is_basic[j] || j >= self.art_start || self.upper[j] <= PIVOT_TOL {
                continue;
            }
            let dj = self.reduced_cost(j, &cost, &y);
            let violated = if self.at_upper[j] {
                dj > FEAS_TOL
            } else {
                dj < -FEAS_TOL
            };
            if violated {
                return false;
            }
        }

        let max_dual_iterations = 4 * self.m + 100;
        let mut dual_iterations = 0usize;
        loop {
            // Leaving row: the largest bound violation (ties → lowest
            // row, via strict improvement).
            let mut leave: Option<(usize, f64, bool)> = None;
            for i in 0..self.m {
                let ub = self.upper[self.basis[i]];
                let below = -self.xb[i];
                let above = if ub.is_finite() {
                    self.xb[i] - ub
                } else {
                    f64::NEG_INFINITY
                };
                let (viol, upper_side) = if above > below {
                    (above, true)
                } else {
                    (below, false)
                };
                if viol > FEAS_TOL {
                    match leave {
                        Some((_, best, _)) if viol <= best => {}
                        _ => leave = Some((i, viol, upper_side)),
                    }
                }
            }
            let Some((r, _, upper_side)) = leave else {
                return true; // primal feasible
            };
            dual_iterations += 1;
            if dual_iterations > max_dual_iterations {
                return false;
            }
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return false;
            }

            // Entering column: sign-eligible nonbasic column with the
            // minimum dual ratio |d_j| / |α_rj| (ties → lowest j).
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                if self.is_basic[j] || self.upper[j] <= PIVOT_TOL {
                    continue;
                }
                let alpha_rj = self.tableau_entry(r, j);
                let eligible = if upper_side {
                    if self.at_upper[j] {
                        alpha_rj < -PIVOT_TOL
                    } else {
                        alpha_rj > PIVOT_TOL
                    }
                } else if self.at_upper[j] {
                    alpha_rj > PIVOT_TOL
                } else {
                    alpha_rj < -PIVOT_TOL
                };
                if !eligible {
                    continue;
                }
                let dj = self.reduced_cost(j, &cost, &y);
                let ratio = dj.abs() / alpha_rj.abs();
                match enter {
                    Some((_, best)) if ratio >= best => {}
                    _ => enter = Some((j, ratio)),
                }
            }
            let Some((j, _)) = enter else {
                return false; // likely infeasible — let the cold path decide
            };

            // Pivot: drive the leaving variable exactly to its violated
            // bound; the entering variable absorbs the step.
            self.pivots += 1;
            let target = if upper_side {
                self.upper[self.basis[r]]
            } else {
                0.0
            };
            let alpha = self.ftran(j);
            let step = (self.xb[r] - target) / alpha[r];
            let entering_value = if self.at_upper[j] {
                self.upper[j] + step
            } else {
                step
            };
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= step * alpha[i];
                }
            }
            let leaving = self.basis[r];
            self.is_basic[leaving] = false;
            self.at_upper[leaving] = upper_side;
            self.basis[r] = j;
            self.is_basic[j] = true;
            self.at_upper[j] = false;
            self.xb[r] = entering_value;
            self.update_binv(r, &alpha);
            y = self.dual_values(&cost);
        }
    }

    /// Runs revised-simplex iterations for one phase with the given
    /// cost vector. Returns the phase objective value at optimality.
    fn run_phase(&mut self, cost: &[f64], ban_artificials: bool) -> Result<f64, IlpError> {
        let mut obj = {
            let mut o = 0.0;
            for (i, &bj) in self.basis.iter().enumerate() {
                o += cost[bj] * self.xb[i];
            }
            for j in 0..self.n_cols {
                if !self.is_basic[j] && self.at_upper[j] && self.upper[j].is_finite() {
                    o += cost[j] * self.upper[j];
                }
            }
            o
        };

        let mut stall = 0usize;
        loop {
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return Err(IlpError::IterationLimit {
                    limit: self.max_iterations,
                });
            }
            if self.iterations.is_multiple_of(DEADLINE_CHECK_STRIDE) {
                if let Some(d) = self.deadline {
                    // eagleeye-lint: allow(clock): strided deadline poll is wall-clock by design (DESIGN.md §8); deterministic whenever no deadline is set
                    if Instant::now() >= d {
                        return Err(IlpError::Deadline);
                    }
                }
            }
            let use_bland = stall >= STALL_LIMIT;

            // Pricing: fresh multipliers, then Dantzig (or Bland)
            // selection over the reduced costs.
            let y = self.dual_values(cost);
            let mut enter: Option<(usize, f64, f64)> = None; // (col, d_j, |d_j|)
            for j in 0..self.n_cols {
                if self.is_basic[j] || (ban_artificials && j >= self.art_start) {
                    continue;
                }
                if self.upper[j] <= PIVOT_TOL && self.at_upper[j] {
                    continue;
                }
                let dj = self.reduced_cost(j, cost, &y);
                let eligible = if self.at_upper[j] {
                    dj > COST_TOL
                } else {
                    dj < -COST_TOL
                };
                if !eligible {
                    continue;
                }
                if self.upper[j] <= PIVOT_TOL && !self.at_upper[j] && dj < -COST_TOL {
                    // Fixed-at-zero column: a "flip" moves nothing; skip
                    // to avoid cycling between bounds.
                    continue;
                }
                if use_bland {
                    enter = Some((j, dj, dj.abs()));
                    break;
                }
                match enter {
                    Some((_, _, best)) if dj.abs() <= best => {}
                    _ => enter = Some((j, dj, dj.abs())),
                }
            }
            let Some((j, dj, _)) = enter else {
                return Ok(obj);
            };

            // Direction: +1 if entering increases from its lower bound,
            // -1 if it decreases from its upper bound.
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };

            // Ratio test over the updated column.
            let alpha = self.ftran(j);
            let mut t_limit = if self.upper[j].is_finite() {
                self.upper[j]
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_to_upper)
            for (i, &aij) in alpha.iter().enumerate() {
                let delta = sigma * aij;
                if delta > PIVOT_TOL {
                    // Basic value decreases toward 0.
                    let t = self.xb[i] / delta;
                    if t < t_limit - 1e-12 || (use_bland && t <= t_limit && leave.is_none()) {
                        t_limit = t.max(0.0);
                        leave = Some((i, false));
                    }
                } else if delta < -PIVOT_TOL {
                    // Basic value increases toward its upper bound.
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        let t = (ub - self.xb[i]) / (-delta);
                        if t < t_limit - 1e-12 {
                            t_limit = t.max(0.0);
                            leave = Some((i, true));
                        }
                    }
                }
            }

            if !t_limit.is_finite() {
                return Err(IlpError::Unbounded);
            }
            let t = t_limit.max(0.0);
            if t < 1e-11 {
                stall += 1;
            } else {
                stall = 0;
            }

            obj += dj * sigma * t;

            match leave {
                None => {
                    // Bound flip: the entering variable runs to its
                    // other bound without changing the basis.
                    for (i, &aij) in alpha.iter().enumerate() {
                        self.xb[i] -= sigma * t * aij;
                    }
                    self.at_upper[j] = !self.at_upper[j];
                }
                Some((r, to_upper)) => {
                    self.pivots += 1;
                    for (i, &aij) in alpha.iter().enumerate() {
                        if i != r {
                            self.xb[i] -= sigma * t * aij;
                        }
                    }
                    let entering_value = if sigma > 0.0 { t } else { self.upper[j] - t };
                    let v = self.basis[r];
                    self.is_basic[v] = false;
                    self.at_upper[v] = to_upper;
                    self.basis[r] = j;
                    self.is_basic[j] = true;
                    self.xb[r] = entering_value;
                    self.update_binv(r, &alpha);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{self, LpRow, RowSense};

    fn row(coeffs: &[(usize, f64)], sense: RowSense, rhs: f64) -> LpRow {
        LpRow {
            coeffs: coeffs.to_vec(),
            sense,
            rhs,
        }
    }

    fn optimal(result: Result<LpResult, IlpError>) -> LpSolution {
        match result.unwrap() {
            LpResult::Optimal(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization_matches_dense() {
        let p = LpProblem {
            cost: vec![-3.0, -5.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Le, 4.0),
                row(&[(1, 2.0)], RowSense::Le, 12.0),
                row(&[(0, 3.0), (1, 2.0)], RowSense::Le, 18.0),
            ],
        };
        let s = optimal(solve_sparse(&p));
        assert_close(s.objective, -36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn equality_rows_run_phase_one() {
        let p = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Eq, 10.0),
                row(&[(0, 1.0), (1, -1.0)], RowSense::Eq, 2.0),
            ],
        };
        let s = optimal(solve_sparse(&p));
        assert_close(s.objective, 10.0);
        assert_close(s.values[0], 6.0);
        assert_close(s.values[1], 4.0);
    }

    #[test]
    fn infeasible_and_unbounded_match_dense_verdicts() {
        let infeasible = LpProblem {
            cost: vec![0.0],
            upper: vec![f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Ge, 5.0),
                row(&[(0, 1.0)], RowSense::Le, 3.0),
            ],
        };
        assert_eq!(solve_sparse(&infeasible).unwrap(), LpResult::Infeasible);
        let unbounded = LpProblem {
            cost: vec![-1.0],
            upper: vec![f64::INFINITY],
            rows: vec![row(&[(0, 1.0)], RowSense::Ge, 0.0)],
        };
        assert_eq!(solve_sparse(&unbounded), Err(IlpError::Unbounded));
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let s = optimal(solve_sparse(&LpProblem::default()));
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn rejects_malformed_input_like_dense() {
        let nan = LpProblem {
            cost: vec![f64::NAN],
            upper: vec![1.0],
            rows: vec![],
        };
        assert!(matches!(
            solve_sparse(&nan),
            Err(IlpError::NonFiniteValue { .. })
        ));
        let oor = LpProblem {
            cost: vec![1.0],
            upper: vec![1.0],
            rows: vec![row(&[(5, 1.0)], RowSense::Le, 1.0)],
        };
        assert!(matches!(
            solve_sparse(&oor),
            Err(IlpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn warm_bases_interchange_between_engines() {
        // A basis captured by the dense tableau must install into the
        // revised engine and vice versa: same normalization, same
        // column layout.
        let p = LpProblem {
            cost: vec![-2.0, -3.0, -1.0],
            upper: vec![4.0, 4.0, 4.0],
            rows: vec![
                row(&[(0, 1.0), (1, 2.0), (2, 1.0)], RowSense::Le, 9.0),
                row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 5.0),
            ],
        };
        let dense = optimal(simplex::solve(&p));
        let sparse = optimal(solve_sparse(&p));
        assert!((dense.objective - sparse.objective).abs() < 1e-9);

        let warm_from_dense = optimal(solve_sparse_with_warm_start(&p, None, Some(&dense.basis)));
        assert!(warm_from_dense.warmed, "dense basis must install sparsely");
        assert!((warm_from_dense.objective - dense.objective).abs() < 1e-9);

        let warm_from_sparse = optimal(simplex::solve_with_warm_start(
            &p,
            None,
            Some(&sparse.basis),
        ));
        assert!(warm_from_sparse.warmed, "sparse basis must install densely");
        assert!((warm_from_sparse.objective - dense.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_with_nudged_bounds_matches_cold() {
        let parent = LpProblem {
            cost: vec![-2.0, -3.0, -1.0],
            upper: vec![4.0, 4.0, 4.0],
            rows: vec![
                row(&[(0, 1.0), (1, 2.0), (2, 1.0)], RowSense::Le, 9.0),
                row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 5.0),
            ],
        };
        let base = optimal(solve_sparse(&parent));
        for cap in [3.0, 2.0, 1.0, 0.0] {
            let mut child = parent.clone();
            child.upper[1] = cap;
            let cold = optimal(solve_sparse(&child));
            let warm = optimal(solve_sparse_with_warm_start(
                &child,
                None,
                Some(&base.basis),
            ));
            assert!(
                (warm.objective - cold.objective).abs() < 1e-9,
                "cap {cap}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn warm_start_never_declares_infeasibility_itself() {
        let parent = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![10.0, 10.0],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Ge, 8.0),
                row(&[(0, 1.0)], RowSense::Le, 6.0),
            ],
        };
        let base = optimal(solve_sparse(&parent));
        let mut child = parent.clone();
        child.upper[0] = 1.0;
        child.upper[1] = 1.0;
        assert_eq!(
            solve_sparse_with_warm_start(&child, None, Some(&base.basis)).unwrap(),
            LpResult::Infeasible
        );
    }

    #[test]
    fn malformed_warm_bases_fall_back_to_cold() {
        let p = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Eq, 10.0),
                row(&[(0, 1.0), (1, -1.0)], RowSense::Eq, 2.0),
            ],
        };
        let cold = optimal(solve_sparse(&p));
        let bad = WarmBasis {
            basis: vec![0, 0],
            at_upper: vec![false; cold.basis.n_cols],
            n_cols: cold.basis.n_cols,
        };
        let s = optimal(solve_sparse_with_warm_start(&p, None, Some(&bad)));
        assert!(!s.warmed);
        assert_eq!(s.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn degenerate_ties_terminate() {
        // Same cycling-bait shape as the dense anti-cycling regression:
        // duplicated budget rows all active at one vertex.
        let n = 4;
        let cost: Vec<f64> = (0..n).map(|j| -(1.0 + 0.1 * j as f64)).collect();
        let budget: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(LpRow {
                coeffs: budget.clone(),
                sense: RowSense::Le,
                rhs: 1.0,
            });
        }
        for j in 0..n {
            rows.push(row(&[(j, 1.0)], RowSense::Le, 1.0));
        }
        let p = LpProblem {
            cost,
            upper: vec![f64::INFINITY; n],
            rows,
        };
        let s = optimal(solve_sparse(&p));
        assert_close(s.objective, -1.3); // whole budget on the best variable
    }
}
