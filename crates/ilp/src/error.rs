use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IlpError {
    /// A constraint or objective referenced a variable that does not
    /// belong to this model.
    UnknownVariable {
        /// The out-of-range variable index.
        index: usize,
        /// The number of variables in the model.
        var_count: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite where
    /// a finite value is required.
    NonFiniteValue {
        /// Human-readable description of where the value appeared.
        context: &'static str,
    },
    /// A variable was created with `lower > upper`.
    EmptyDomain {
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// Free (lower-unbounded) variables are not supported by this solver.
    ///
    /// Every variable must have a finite lower bound; shift or split
    /// variables in the model formulation instead.
    UnboundedBelow,
    /// The LP relaxation is unbounded, so no finite optimum exists.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The solver's wall-clock deadline expired mid-LP. Branch-and-bound
    /// converts this into a limit status rather than surfacing it.
    Deadline,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable { index, var_count } => {
                write!(
                    f,
                    "variable index {index} out of range (model has {var_count})"
                )
            }
            IlpError::NonFiniteValue { context } => {
                write!(f, "non-finite value in {context}")
            }
            IlpError::EmptyDomain { lower, upper } => {
                write!(f, "variable domain [{lower}, {upper}] is empty")
            }
            IlpError::UnboundedBelow => {
                write!(
                    f,
                    "variables without a finite lower bound are not supported"
                )
            }
            IlpError::Unbounded => write!(f, "the linear relaxation is unbounded"),
            IlpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded the iteration limit of {limit}")
            }
            IlpError::Deadline => write!(f, "solver deadline expired"),
        }
    }
}

impl Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            IlpError::UnknownVariable {
                index: 3,
                var_count: 1,
            },
            IlpError::NonFiniteValue {
                context: "objective",
            },
            IlpError::EmptyDomain {
                lower: 2.0,
                upper: 1.0,
            },
            IlpError::UnboundedBelow,
            IlpError::Unbounded,
            IlpError::IterationLimit { limit: 10 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<IlpError>();
    }
}
