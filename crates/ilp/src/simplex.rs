//! A dense, bounded-variable, two-phase primal simplex solver.
//!
//! This is the LP engine underneath [`crate::Model`]. It solves problems
//! in the computational standard form
//!
//! ```text
//! minimize    cᵀx
//! subject to  aᵢᵀx {≤,=,≥} bᵢ      for every row i
//!             0 ≤ xⱼ ≤ uⱼ          (uⱼ may be +∞)
//! ```
//!
//! Upper bounds are handled *implicitly* (nonbasic variables may sit at
//! either bound, and the ratio test allows bound flips), so binary
//! variables do not inflate the row count. Phase 1 minimizes the sum of
//! artificial variables; phase 2 optimizes the true objective with
//! artificials pinned at zero. Degeneracy is handled by switching from
//! Dantzig pricing to Bland's rule after a stretch of non-improving
//! iterations, which guarantees termination.
//!
//! Most users should go through [`crate::Model`]; this module is public
//! for callers who already have a standard-form problem (and for the
//! property-based tests that hammer the engine directly).

use crate::IlpError;
use std::time::Instant;

/// Relational sense of a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSense {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// A single constraint row in sparse form.
#[derive(Debug, Clone, PartialEq)]
pub struct LpRow {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational sense.
    pub sense: RowSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program in computational standard form (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LpProblem {
    /// Objective coefficients (minimization), one per variable.
    pub cost: Vec<f64>,
    /// Upper bounds, one per variable; `f64::INFINITY` means unbounded.
    /// All lower bounds are zero.
    pub upper: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (for the minimization form).
    pub objective: f64,
    /// Optimal value of every variable.
    pub values: Vec<f64>,
    /// Total simplex iterations across both phases.
    pub iterations: usize,
    /// Basis-changing pivots across both phases. Iterations that
    /// resolve as bound flips (the entering variable runs to its other
    /// bound without a basis change) are counted in `iterations` but
    /// not here, so `pivots <= iterations`.
    pub pivots: usize,
    /// The optimal basis, reusable to warm-start a solve of a nearby
    /// problem (same rows and columns, nudged bounds) via
    /// [`solve_with_warm_start`].
    pub basis: WarmBasis,
    /// True when this solve skipped phase 1 by installing a caller
    /// supplied [`WarmBasis`]; false for a cold two-phase solve
    /// (including the fallback after a rejected warm basis).
    pub warmed: bool,
}

/// A simplex basis snapshot: which column is basic in each row, plus
/// the bound each nonbasic column rests at.
///
/// Captured from every [`LpSolution`] and accepted by
/// [`solve_with_warm_start`] for a problem with the *same column
/// layout* (identical rows and variables; only the bounds and
/// right-hand sides may differ — exactly the shape of adjacent
/// branch-and-bound nodes). An incompatible or numerically unusable
/// basis is rejected deterministically and the solve falls back to the
/// cold two-phase path, so warm starts can change iteration counts but
/// never the outcome semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmBasis {
    /// Basic column per row (a set of `m` distinct column indices).
    pub basis: Vec<usize>,
    /// Whether each nonbasic column rests at its upper bound
    /// (length `n_cols`; `false` for basic columns).
    pub at_upper: Vec<bool>,
    /// Total tableau columns the basis was captured against
    /// (structural + slack/surplus + artificial); a mismatch rejects
    /// the warm start.
    pub n_cols: usize,
}

pub(crate) const COST_TOL: f64 = 1e-9;
pub(crate) const PIVOT_TOL: f64 = 1e-9;
pub(crate) const FEAS_TOL: f64 = 1e-7;
/// Minimum acceptable pivot magnitude while factoring a warm basis;
/// anything smaller means the basis is (near-)singular for this
/// problem and the warm start is rejected.
pub(crate) const INSTALL_PIVOT_TOL: f64 = 1e-8;
/// Consecutive non-improving iterations before switching to Bland's rule.
pub(crate) const STALL_LIMIT: usize = 64;
/// Pivot iterations between deadline checks. `Instant::now()` in the
/// pivot loop is pure overhead at this granularity; checking every
/// 128 iterations keeps overshoot well under a millisecond.
pub(crate) const DEADLINE_CHECK_STRIDE: usize = 128;

/// A row after standard-form normalization: coefficients, sense, and a
/// non-negative right-hand side.
pub(crate) type NormRow = (Vec<(usize, f64)>, RowSense, f64);

/// Validates `p` and normalizes every row to a non-negative right-hand
/// side (negative-rhs rows have coefficients negated and the sense
/// flipped). Shared by the dense tableau and the sparse revised
/// simplex so both engines see the *same* rows in the same order —
/// the precondition for [`WarmBasis`] interchangeability.
pub(crate) fn normalized_rows(p: &LpProblem) -> Result<Vec<NormRow>, IlpError> {
    let n_struct = p.cost.len();
    if p.upper.len() != n_struct {
        return Err(IlpError::NonFiniteValue {
            context: "upper bound vector length",
        });
    }
    for &c in &p.cost {
        if !c.is_finite() {
            return Err(IlpError::NonFiniteValue {
                context: "objective coefficient",
            });
        }
    }
    for &u in &p.upper {
        if u.is_nan() || u < 0.0 {
            return Err(IlpError::NonFiniteValue {
                context: "variable upper bound",
            });
        }
    }
    let mut norm_rows: Vec<NormRow> = Vec::with_capacity(p.rows.len());
    for row in &p.rows {
        if !row.rhs.is_finite() {
            return Err(IlpError::NonFiniteValue {
                context: "row right-hand side",
            });
        }
        for &(j, c) in &row.coeffs {
            if j >= n_struct {
                return Err(IlpError::UnknownVariable {
                    index: j,
                    var_count: n_struct,
                });
            }
            if !c.is_finite() {
                return Err(IlpError::NonFiniteValue {
                    context: "row coefficient",
                });
            }
        }
        if row.rhs < 0.0 {
            let flipped: Vec<(usize, f64)> = row.coeffs.iter().map(|&(j, c)| (j, -c)).collect();
            let sense = match row.sense {
                RowSense::Le => RowSense::Ge,
                RowSense::Eq => RowSense::Eq,
                RowSense::Ge => RowSense::Le,
            };
            norm_rows.push((flipped, sense, -row.rhs));
        } else {
            norm_rows.push((row.coeffs.clone(), row.sense, row.rhs));
        }
    }
    Ok(norm_rows)
}

/// The `[structural | slack/surplus | artificial]` column layout both
/// engines share for a given normalized row set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ColumnLayout {
    /// Structural column count (columns `0..slack_start`).
    pub n_struct: usize,
    /// First slack/surplus column.
    pub slack_start: usize,
    /// First artificial column.
    pub art_start: usize,
    /// Total column count.
    pub n_cols: usize,
}

/// Computes the shared column layout: one slack/surplus column per
/// `Le`/`Ge` row, one artificial per `Eq`/`Ge` row, in row order.
pub(crate) fn column_layout(n_struct: usize, rows: &[NormRow]) -> ColumnLayout {
    let n_slack = rows
        .iter()
        .filter(|(_, s, _)| matches!(s, RowSense::Le | RowSense::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, s, _)| matches!(s, RowSense::Eq | RowSense::Ge))
        .count();
    ColumnLayout {
        n_struct,
        slack_start: n_struct,
        art_start: n_struct + n_slack,
        n_cols: n_struct + n_slack + n_art,
    }
}

/// Solves the LP.
///
/// # Errors
///
/// * [`IlpError::Unbounded`] when the objective is unbounded below.
/// * [`IlpError::IterationLimit`] if the iteration cap is exceeded
///   (indicates numerical trouble; the cap scales with problem size).
/// * [`IlpError::NonFiniteValue`] for NaN/infinite input data.
pub fn solve(problem: &LpProblem) -> Result<LpResult, IlpError> {
    solve_with_deadline(problem, None)
}

/// Solves the LP, aborting with [`IlpError::Deadline`] if the wall clock
/// passes `deadline` mid-solve (checked every few hundred iterations).
///
/// # Errors
///
/// Same as [`solve`], plus [`IlpError::Deadline`].
pub fn solve_with_deadline(
    problem: &LpProblem,
    deadline: Option<Instant>,
) -> Result<LpResult, IlpError> {
    solve_with_warm_start(problem, deadline, None)
}

/// Solves the LP, optionally warm-starting from a basis captured off a
/// nearby problem (see [`WarmBasis`]).
///
/// The warm path installs the basis, verifies dual feasibility of the
/// reduced costs, and runs a bounded-variable dual simplex to restore
/// primal feasibility — typically a handful of pivots when only bounds
/// changed. Every failure mode (layout mismatch, singular basis, dual
/// infeasibility, stalled dual loop) rejects the warm basis and falls
/// back to the cold two-phase solve, so the result is always valid;
/// [`LpSolution::warmed`] records which path produced it. The warm
/// path never declares infeasibility itself — that verdict is always
/// delegated to the cold path's phase 1.
///
/// # Errors
///
/// Same as [`solve_with_deadline`].
pub fn solve_with_warm_start(
    problem: &LpProblem,
    deadline: Option<Instant>,
    warm: Option<&WarmBasis>,
) -> Result<LpResult, IlpError> {
    if let Some(basis) = warm {
        let mut t = Tableau::new(problem)?;
        t.deadline = deadline;
        if let Some(result) = t.solve_warm(basis) {
            return result;
        }
    }
    let mut t = Tableau::new(problem)?;
    t.deadline = deadline;
    t.solve()
}

/// Dense simplex tableau with bounded variables.
struct Tableau {
    /// Number of structural variables (prefix of the column space).
    n_struct: usize,
    /// Total columns (structural + slack/surplus + artificial).
    n_cols: usize,
    /// Number of rows.
    m: usize,
    /// Row-major dense tableau, `m x n_cols`, maintained as `B⁻¹A`.
    a: Vec<f64>,
    /// Current basic variable values, one per row.
    b: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Whether each *nonbasic* column currently sits at its upper bound.
    at_upper: Vec<bool>,
    /// Whether each column is basic.
    is_basic: Vec<bool>,
    /// Upper bound per column.
    upper: Vec<f64>,
    /// First artificial column index (artificials are `art_start..n_cols`).
    art_start: usize,
    /// Phase-2 cost per column.
    cost: Vec<f64>,
    /// Iterations used so far.
    iterations: usize,
    /// Basis-changing pivots so far (excludes bound flips).
    pivots: usize,
    /// Iteration cap.
    max_iterations: usize,
    /// Optional wall-clock deadline.
    deadline: Option<Instant>,
}

impl Tableau {
    fn new(p: &LpProblem) -> Result<Self, IlpError> {
        let n_struct = p.cost.len();
        let m = p.rows.len();

        // Normalize rows so every right-hand side is non-negative.
        let norm_rows = normalized_rows(p)?;

        // Column layout: [structural | slack/surplus | artificial].
        let layout = column_layout(n_struct, &norm_rows);
        let slack_start = layout.slack_start;
        let art_start = layout.art_start;
        let n_cols = layout.n_cols;

        let mut a = vec![0.0; m * n_cols];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut upper = Vec::with_capacity(n_cols);
        upper.extend_from_slice(&p.upper);
        upper.resize(n_cols, f64::INFINITY);

        let mut next_slack = slack_start;
        let mut next_art = art_start;
        for (i, (coeffs, sense, rhs)) in norm_rows.iter().enumerate() {
            let row = &mut a[i * n_cols..(i + 1) * n_cols];
            for &(j, c) in coeffs {
                row[j] += c;
            }
            b[i] = *rhs;
            match sense {
                RowSense::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                RowSense::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                RowSense::Eq => {
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let mut is_basic = vec![false; n_cols];
        for &j in &basis {
            is_basic[j] = true;
        }

        let mut cost = Vec::with_capacity(n_cols);
        cost.extend_from_slice(&p.cost);
        cost.resize(n_cols, 0.0);

        let max_iterations = 2_000 + 40 * (m + n_cols);

        Ok(Tableau {
            n_struct,
            n_cols,
            m,
            a,
            b,
            basis,
            at_upper: vec![false; n_cols],
            is_basic,
            upper,
            art_start,
            cost,
            iterations: 0,
            pivots: 0,
            max_iterations,
            deadline: None,
        })
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.n_cols..(i + 1) * self.n_cols]
    }

    fn solve(mut self) -> Result<LpResult, IlpError> {
        // Phase 1: minimize the sum of artificials.
        if self.art_start < self.n_cols {
            let phase1_cost: Vec<f64> = (0..self.n_cols)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            let obj = self.run_phase(&phase1_cost, /*ban_artificials=*/ false)?;
            if obj > FEAS_TOL {
                return Ok(LpResult::Infeasible);
            }
            // Pin artificials at zero for phase 2.
            for j in self.art_start..self.n_cols {
                self.upper[j] = 0.0;
            }
        }

        // Phase 2: the real objective.
        let cost = self.cost.clone();
        let obj = self.run_phase(&cost, /*ban_artificials=*/ true)?;
        Ok(LpResult::Optimal(self.extract(obj, false)))
    }

    /// Reads the optimal solution (and its reusable basis) out of the
    /// final tableau.
    fn extract(&self, obj: f64, warmed: bool) -> LpSolution {
        let mut values = vec![0.0; self.n_struct];
        for j in 0..self.n_struct {
            if !self.is_basic[j] && self.at_upper[j] {
                values[j] = self.upper[j];
            }
        }
        for (i, &j) in self.basis.iter().enumerate() {
            if j < self.n_struct {
                values[j] = self.b[i].max(0.0);
            }
        }
        LpSolution {
            objective: obj,
            values,
            iterations: self.iterations,
            pivots: self.pivots,
            basis: WarmBasis {
                basis: self.basis.clone(),
                at_upper: self.at_upper.clone(),
                n_cols: self.n_cols,
            },
            warmed,
        }
    }

    /// Attempts the warm-start path: install the basis, restore primal
    /// feasibility with the dual simplex, then polish with the primal
    /// phase-2 loop. Returns `None` to reject (caller falls back to a
    /// fresh cold solve).
    fn solve_warm(&mut self, warm: &WarmBasis) -> Option<Result<LpResult, IlpError>> {
        if !self.install(warm) {
            return None;
        }
        if !self.dual_restore() {
            return None;
        }
        let cost = self.cost.clone();
        match self.run_phase(&cost, /*ban_artificials=*/ true) {
            Ok(obj) => Some(Ok(LpResult::Optimal(self.extract(obj, true)))),
            Err(e) => Some(Err(e)),
        }
    }

    /// Installs a warm basis into the fresh tableau: validates the
    /// layout, pins artificials at zero (the warm path replaces
    /// phase 1), places nonbasic columns at their recorded bounds, and
    /// factors the basis with Gauss-Jordan elimination (partial
    /// pivoting over unassigned rows). Returns false to reject.
    fn install(&mut self, warm: &WarmBasis) -> bool {
        if warm.n_cols != self.n_cols
            || warm.basis.len() != self.m
            || warm.at_upper.len() != self.n_cols
        {
            return false;
        }
        let mut in_basis = vec![false; self.n_cols];
        for &j in &warm.basis {
            if j >= self.n_cols || in_basis[j] {
                return false;
            }
            in_basis[j] = true;
        }
        // The warm path skips phase 1 entirely: pin artificials so any
        // that remain basic are forced to zero by the dual loop and no
        // nonbasic one can ever re-enter at a nonzero value.
        for j in self.art_start..self.n_cols {
            self.upper[j] = 0.0;
        }
        // Nonbasic columns at their recorded bound. An at-upper flag on
        // a column whose bound is now infinite cannot be honored.
        for j in 0..self.art_start {
            if !in_basis[j] && warm.at_upper[j] {
                if !self.upper[j].is_finite() {
                    return false;
                }
                self.at_upper[j] = true;
            }
        }
        // Shift the right-hand side by the nonbasic-at-upper columns
        // while `a` still holds the original (unpivoted) matrix.
        for j in 0..self.art_start {
            if self.at_upper[j] && !in_basis[j] {
                let u = self.upper[j];
                if u > 0.0 {
                    for i in 0..self.m {
                        self.b[i] -= self.a[i * self.n_cols + j] * u;
                    }
                }
            }
        }
        // Factor: process basis columns in ascending order; for each,
        // pivot on the largest-magnitude entry among unassigned rows
        // (row reduction includes `b`, yielding B⁻¹ applied to both).
        let mut cols: Vec<usize> = warm.basis.clone();
        cols.sort_unstable();
        let mut assigned = vec![false; self.m];
        let mut new_basis = vec![0usize; self.m];
        for &j in &cols {
            let mut best_row = usize::MAX;
            let mut best_mag = 0.0f64;
            for i in 0..self.m {
                if assigned[i] {
                    continue;
                }
                let mag = self.a[i * self.n_cols + j].abs();
                if mag > best_mag {
                    best_mag = mag;
                    best_row = i;
                }
            }
            if best_mag <= INSTALL_PIVOT_TOL {
                return false; // singular for this problem
            }
            let r = best_row;
            let inv = 1.0 / self.a[r * self.n_cols + j];
            {
                let row_r = &mut self.a[r * self.n_cols..(r + 1) * self.n_cols];
                for x in row_r.iter_mut() {
                    *x *= inv;
                }
                row_r[j] = 1.0;
            }
            self.b[r] *= inv;
            let row_r: Vec<f64> = self.a[r * self.n_cols..(r + 1) * self.n_cols].to_vec();
            let b_r = self.b[r];
            for i in 0..self.m {
                if i == r {
                    continue;
                }
                let factor = self.a[i * self.n_cols + j];
                if factor.abs() > 1e-13 {
                    let row_i = &mut self.a[i * self.n_cols..(i + 1) * self.n_cols];
                    for (x, &rr) in row_i.iter_mut().zip(&row_r) {
                        *x -= factor * rr;
                    }
                    row_i[j] = 0.0;
                    self.b[i] -= factor * b_r;
                }
            }
            assigned[r] = true;
            new_basis[r] = j;
        }
        self.basis = new_basis;
        for flag in self.is_basic.iter_mut() {
            *flag = false;
        }
        for &j in &self.basis {
            self.is_basic[j] = true;
            self.at_upper[j] = false;
        }
        true
    }

    /// Restores primal feasibility with a bounded-variable dual
    /// simplex, assuming (and first verifying) dual feasibility of the
    /// installed basis. Returns false to reject the warm start — on a
    /// dual-infeasible basis, a stalled/capped loop, or a row with no
    /// eligible entering column (which the cold path must adjudicate;
    /// this path never declares infeasibility).
    fn dual_restore(&mut self) -> bool {
        let cost = self.cost.clone();
        // Reduced costs from the freshly factored tableau.
        let mut d = cost.clone();
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            // eagleeye-lint: allow(float-eq): exact-zero sparsity skip; basis costs are copied, never computed, so 0.0 is exact
            if cb != 0.0 {
                let row = self.row(i).to_vec();
                for (dj, &aij) in d.iter_mut().zip(&row) {
                    *dj -= cb * aij;
                }
            }
        }
        // Dual feasibility: nonbasic at lower needs d_j ≥ 0, at upper
        // needs d_j ≤ 0. Fixed columns (bound-collapsed or artificial)
        // cannot move, so their sign is irrelevant.
        for j in 0..self.n_cols {
            if self.is_basic[j] || j >= self.art_start || self.upper[j] <= PIVOT_TOL {
                continue;
            }
            let violated = if self.at_upper[j] {
                d[j] > FEAS_TOL
            } else {
                d[j] < -FEAS_TOL
            };
            if violated {
                return false;
            }
        }

        let max_dual_iterations = 4 * self.m + 100;
        let mut dual_iterations = 0usize;
        loop {
            // Leaving row: the largest bound violation (ties → lowest
            // row, via strict improvement).
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, upper side)
            for i in 0..self.m {
                let ub = self.upper[self.basis[i]];
                let below = -self.b[i];
                let above = if ub.is_finite() {
                    self.b[i] - ub
                } else {
                    f64::NEG_INFINITY
                };
                let (viol, upper_side) = if above > below {
                    (above, true)
                } else {
                    (below, false)
                };
                if viol > FEAS_TOL {
                    match leave {
                        Some((_, best, _)) if viol <= best => {}
                        _ => leave = Some((i, viol, upper_side)),
                    }
                }
            }
            let Some((r, _, upper_side)) = leave else {
                return true; // primal feasible
            };
            dual_iterations += 1;
            if dual_iterations > max_dual_iterations {
                return false;
            }
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return false;
            }

            // Entering column: sign-eligible nonbasic column with the
            // minimum dual ratio |d_j| / |α_rj| (ties → lowest j).
            let row_base = r * self.n_cols;
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                if self.is_basic[j] || self.upper[j] <= PIVOT_TOL {
                    continue;
                }
                let alpha = self.a[row_base + j];
                let eligible = if upper_side {
                    // Basic value must decrease toward its upper bound.
                    if self.at_upper[j] {
                        alpha < -PIVOT_TOL
                    } else {
                        alpha > PIVOT_TOL
                    }
                } else {
                    // Basic value must increase toward zero.
                    if self.at_upper[j] {
                        alpha > PIVOT_TOL
                    } else {
                        alpha < -PIVOT_TOL
                    }
                };
                if !eligible {
                    continue;
                }
                let ratio = d[j].abs() / alpha.abs();
                match enter {
                    Some((_, best)) if ratio >= best => {}
                    _ => enter = Some((j, ratio)),
                }
            }
            let Some((j, _)) = enter else {
                return false; // likely infeasible — let the cold path decide
            };

            // Pivot: drive the leaving variable exactly to its violated
            // bound; the entering variable absorbs the step.
            self.pivots += 1;
            let target = if upper_side {
                self.upper[self.basis[r]]
            } else {
                0.0
            };
            let alpha = self.a[row_base + j];
            let step = (self.b[r] - target) / alpha;
            let entering_value = if self.at_upper[j] {
                self.upper[j] + step
            } else {
                step
            };
            for i in 0..self.m {
                if i != r {
                    self.b[i] -= step * self.a[i * self.n_cols + j];
                }
            }
            let leaving = self.basis[r];
            self.is_basic[leaving] = false;
            self.at_upper[leaving] = upper_side;
            self.basis[r] = j;
            self.is_basic[j] = true;
            self.at_upper[j] = false;
            self.b[r] = entering_value;

            let inv = 1.0 / alpha;
            {
                let row_r = &mut self.a[row_base..row_base + self.n_cols];
                for x in row_r.iter_mut() {
                    *x *= inv;
                }
                row_r[j] = 1.0;
            }
            let row_r: Vec<f64> = self.a[row_base..row_base + self.n_cols].to_vec();
            for i in 0..self.m {
                if i == r {
                    continue;
                }
                let factor = self.a[i * self.n_cols + j];
                if factor.abs() > 1e-13 {
                    let row_i = &mut self.a[i * self.n_cols..(i + 1) * self.n_cols];
                    for (x, &rr) in row_i.iter_mut().zip(&row_r) {
                        *x -= factor * rr;
                    }
                    row_i[j] = 0.0;
                }
            }
            let dj = d[j];
            if dj.abs() > 1e-13 {
                for (x, &rr) in d.iter_mut().zip(&row_r) {
                    *x -= dj * rr;
                }
                d[j] = 0.0;
            }
        }
    }

    /// Runs simplex iterations for one phase with the given cost vector.
    /// Returns the phase objective value at optimality.
    fn run_phase(&mut self, cost: &[f64], ban_artificials: bool) -> Result<f64, IlpError> {
        // Reduced costs: d_j = c_j - c_Bᵀ (B⁻¹ A)_j, computed from the
        // current (already pivoted) tableau.
        let mut d = cost.to_vec();
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            // eagleeye-lint: allow(float-eq): exact-zero sparsity skip; basis costs are copied, never computed, so 0.0 is exact
            if cb != 0.0 {
                let row = self.row(i).to_vec();
                for (dj, &aij) in d.iter_mut().zip(&row) {
                    *dj -= cb * aij;
                }
            }
        }
        let mut obj = {
            let mut o = 0.0;
            for (i, &bj) in self.basis.iter().enumerate() {
                o += cost[bj] * self.b[i];
            }
            for j in 0..self.n_cols {
                if !self.is_basic[j] && self.at_upper[j] && self.upper[j].is_finite() {
                    o += cost[j] * self.upper[j];
                }
            }
            o
        };

        let mut stall = 0usize;
        loop {
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return Err(IlpError::IterationLimit {
                    limit: self.max_iterations,
                });
            }
            if self.iterations.is_multiple_of(DEADLINE_CHECK_STRIDE) {
                if let Some(d) = self.deadline {
                    // eagleeye-lint: allow(clock): strided deadline poll is wall-clock by design (DESIGN.md §8); deterministic whenever no deadline is set
                    if Instant::now() >= d {
                        return Err(IlpError::Deadline);
                    }
                }
            }
            let use_bland = stall >= STALL_LIMIT;

            // Entering-variable selection.
            let mut enter: Option<(usize, f64)> = None; // (col, |d|)
            for j in 0..self.n_cols {
                if self.is_basic[j] || (ban_artificials && j >= self.art_start) {
                    continue;
                }
                // Columns fixed at zero can never usefully move.
                if self.upper[j] <= PIVOT_TOL && self.at_upper[j] {
                    continue;
                }
                let dj = d[j];
                let eligible = if self.at_upper[j] {
                    dj > COST_TOL
                } else {
                    dj < -COST_TOL
                };
                if !eligible {
                    continue;
                }
                if self.upper[j] <= PIVOT_TOL && !self.at_upper[j] && dj < -COST_TOL {
                    // Fixed-at-zero column: a "flip" moves nothing; skip to
                    // avoid cycling between bounds.
                    continue;
                }
                if use_bland {
                    enter = Some((j, dj.abs()));
                    break;
                }
                match enter {
                    Some((_, best)) if dj.abs() <= best => {}
                    _ => enter = Some((j, dj.abs())),
                }
            }
            let Some((j, _)) = enter else {
                return Ok(obj);
            };

            // Direction: +1 if entering increases from its lower bound,
            // -1 if it decreases from its upper bound.
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };

            // Ratio test.
            let mut t_limit = if self.upper[j].is_finite() {
                self.upper[j]
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_to_upper)
            for i in 0..self.m {
                let aij = self.a[i * self.n_cols + j];
                let delta = sigma * aij;
                if delta > PIVOT_TOL {
                    // Basic value decreases toward 0.
                    let t = self.b[i] / delta;
                    if t < t_limit - 1e-12 || (use_bland && t <= t_limit && leave.is_none()) {
                        t_limit = t.max(0.0);
                        leave = Some((i, false));
                    }
                } else if delta < -PIVOT_TOL {
                    // Basic value increases toward its upper bound.
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        let t = (ub - self.b[i]) / (-delta);
                        if t < t_limit - 1e-12 {
                            t_limit = t.max(0.0);
                            leave = Some((i, true));
                        }
                    }
                }
            }

            if !t_limit.is_finite() {
                return Err(IlpError::Unbounded);
            }
            let t = t_limit.max(0.0);
            if t < 1e-11 {
                stall += 1;
            } else {
                stall = 0;
            }

            obj += d[j] * sigma * t;

            match leave {
                None => {
                    // Bound flip: the entering variable runs to its other
                    // bound without changing the basis.
                    for i in 0..self.m {
                        let aij = self.a[i * self.n_cols + j];
                        self.b[i] -= sigma * t * aij;
                    }
                    self.at_upper[j] = !self.at_upper[j];
                }
                Some((r, to_upper)) => {
                    self.pivots += 1;
                    // Update basic values for the step.
                    for i in 0..self.m {
                        if i != r {
                            let aij = self.a[i * self.n_cols + j];
                            self.b[i] -= sigma * t * aij;
                        }
                    }
                    let entering_value = if sigma > 0.0 { t } else { self.upper[j] - t };
                    // Leaving variable bookkeeping.
                    let v = self.basis[r];
                    self.is_basic[v] = false;
                    self.at_upper[v] = to_upper;
                    self.basis[r] = j;
                    self.is_basic[j] = true;
                    self.b[r] = entering_value;

                    // Pivot: normalize row r, eliminate column j elsewhere.
                    let piv = self.a[r * self.n_cols + j];
                    debug_assert!(piv.abs() > PIVOT_TOL * 0.5, "tiny pivot {piv}");
                    let inv = 1.0 / piv;
                    {
                        let row_r = &mut self.a[r * self.n_cols..(r + 1) * self.n_cols];
                        for x in row_r.iter_mut() {
                            *x *= inv;
                        }
                        row_r[j] = 1.0;
                    }
                    // Copy row r once to avoid aliasing during elimination.
                    let row_r: Vec<f64> = self.a[r * self.n_cols..(r + 1) * self.n_cols].to_vec();
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let factor = self.a[i * self.n_cols + j];
                        if factor.abs() > 1e-13 {
                            let row_i = &mut self.a[i * self.n_cols..(i + 1) * self.n_cols];
                            for (x, &rr) in row_i.iter_mut().zip(&row_r) {
                                *x -= factor * rr;
                            }
                            row_i[j] = 0.0;
                        }
                    }
                    let dj = d[j];
                    if dj.abs() > 1e-13 {
                        for (x, &rr) in d.iter_mut().zip(&row_r) {
                            *x -= dj * rr;
                        }
                        d[j] = 0.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: &[(usize, f64)], sense: RowSense, rhs: f64) -> LpRow {
        LpRow {
            coeffs: coeffs.to_vec(),
            sense,
            rhs,
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 => x=2, y=6, obj 36.
        let p = LpProblem {
            cost: vec![-3.0, -5.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Le, 4.0),
                row(&[(1, 2.0)], RowSense::Le, 12.0),
                row(&[(0, 3.0), (1, 2.0)], RowSense::Le, 18.0),
            ],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, -36.0);
                assert_close(s.values[0], 2.0);
                assert_close(s.values[1], 6.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y st x + y = 10, x - y = 2 => x=6, y=4, obj 10.
        let p = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Eq, 10.0),
                row(&[(0, 1.0), (1, -1.0)], RowSense::Eq, 2.0),
            ],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, 10.0);
                assert_close(s.values[0], 6.0);
                assert_close(s.values[1], 4.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_system_detected() {
        // x >= 5 and x <= 3.
        let p = LpProblem {
            cost: vec![0.0],
            upper: vec![f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Ge, 5.0),
                row(&[(0, 1.0)], RowSense::Le, 3.0),
            ],
        };
        assert_eq!(solve(&p).unwrap(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unconstrained above.
        let p = LpProblem {
            cost: vec![-1.0],
            upper: vec![f64::INFINITY],
            rows: vec![row(&[(0, 1.0)], RowSense::Ge, 0.0)],
        };
        assert_eq!(solve(&p), Err(IlpError::Unbounded));
    }

    #[test]
    fn upper_bounds_are_respected_without_rows() {
        // max x + y with x <= 1, y <= 1 via bounds only, x + y <= 1.5.
        let p = LpProblem {
            cost: vec![-1.0, -1.0],
            upper: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 1.5)],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, -1.5);
                assert!(s.values[0] <= 1.0 + 1e-9);
                assert!(s.values[1] <= 1.0 + 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bound_flip_only_problem() {
        // max x + 2y, x,y in [0,1], no rows at all => obj 3 at (1,1).
        let p = LpProblem {
            cost: vec![-1.0, -2.0],
            upper: vec![1.0, 1.0],
            rows: vec![],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, -3.0);
                assert_close(s.values[0], 1.0);
                assert_close(s.values[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2  (i.e. y >= x + 2), minimize y with x >= 0 => x=0,y=2.
        let p = LpProblem {
            cost: vec![0.0, 1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![row(&[(0, 1.0), (1, -1.0)], RowSense::Le, -2.0)],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, 2.0);
                assert_close(s.values[1], 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (multiple optimal bases at the same vertex).
        let p = LpProblem {
            cost: vec![-1.0, -1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 1.0),
                row(&[(0, 1.0)], RowSense::Le, 1.0),
                row(&[(1, 1.0)], RowSense::Le, 1.0),
                row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 1.0),
            ],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => assert_close(s.objective, -1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transportation_problem_is_integral() {
        // 2 sources (supply 3, 2), 2 sinks (demand 2, 3); costs 1,2,3,1.
        // Optimal: x00=2, x01=1, x11=2 => cost 2*1 + 1*2 + 2*1 = 6.
        let p = LpProblem {
            cost: vec![1.0, 2.0, 3.0, 1.0], // x00 x01 x10 x11
            upper: vec![f64::INFINITY; 4],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Eq, 3.0),
                row(&[(2, 1.0), (3, 1.0)], RowSense::Eq, 2.0),
                row(&[(0, 1.0), (2, 1.0)], RowSense::Eq, 2.0),
                row(&[(1, 1.0), (3, 1.0)], RowSense::Eq, 3.0),
            ],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, 6.0);
                for v in &s.values {
                    assert!((v - v.round()).abs() < 1e-7, "fractional {v}");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ge_rows_with_positive_rhs() {
        // min 2x + 3y st x + y >= 4, x >= 1 => (4-y at y=0) x=4? cost 8;
        // or x=1,y=3 cost 11. Optimum x=4, y=0, obj 8.
        let p = LpProblem {
            cost: vec![2.0, 3.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Ge, 4.0),
                row(&[(0, 1.0)], RowSense::Ge, 1.0),
            ],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => assert_close(s.objective, 8.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_nan_input() {
        let p = LpProblem {
            cost: vec![f64::NAN],
            upper: vec![1.0],
            rows: vec![],
        };
        assert!(matches!(solve(&p), Err(IlpError::NonFiniteValue { .. })));
    }

    #[test]
    fn rejects_out_of_range_variable() {
        let p = LpProblem {
            cost: vec![1.0],
            upper: vec![1.0],
            rows: vec![row(&[(5, 1.0)], RowSense::Le, 1.0)],
        };
        assert!(matches!(solve(&p), Err(IlpError::UnknownVariable { .. })));
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        // y fixed at 0 by upper bound; max x + 10y, x + y <= 1.
        let p = LpProblem {
            cost: vec![-1.0, -10.0],
            upper: vec![f64::INFINITY, 0.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 1.0)],
        };
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_close(s.objective, -1.0);
                assert_close(s.values[1], 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pivot_count_separates_bound_flips_from_basis_changes() {
        // Bound-flip-only problem: iterations advance but no basis change.
        let flips = LpProblem {
            cost: vec![-1.0, -2.0],
            upper: vec![1.0, 1.0],
            rows: vec![],
        };
        match solve(&flips).unwrap() {
            LpResult::Optimal(s) => {
                assert_eq!(s.pivots, 0);
                assert!(s.iterations >= 2, "two flips expected");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A problem with rows needs real pivots to reach the vertex.
        let vertex = LpProblem {
            cost: vec![-3.0, -5.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Le, 4.0),
                row(&[(1, 2.0)], RowSense::Le, 12.0),
                row(&[(0, 3.0), (1, 2.0)], RowSense::Le, 18.0),
            ],
        };
        match solve(&vertex).unwrap() {
            LpResult::Optimal(s) => {
                assert!(s.pivots >= 1);
                assert!(s.pivots <= s.iterations);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = LpProblem::default();
        match solve(&p).unwrap() {
            LpResult::Optimal(s) => {
                assert_eq!(s.objective, 0.0);
                assert!(s.values.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn optimal(result: Result<LpResult, IlpError>) -> LpSolution {
        match result.unwrap() {
            LpResult::Optimal(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warm_restart_from_own_basis_is_accepted() {
        let p = LpProblem {
            cost: vec![-3.0, -5.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0)], RowSense::Le, 4.0),
                row(&[(1, 2.0)], RowSense::Le, 12.0),
                row(&[(0, 3.0), (1, 2.0)], RowSense::Le, 18.0),
            ],
        };
        let cold = optimal(solve(&p));
        assert!(!cold.warmed);
        let warm = optimal(solve_with_warm_start(&p, None, Some(&cold.basis)));
        assert!(warm.warmed, "own optimal basis must be accepted");
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.values, cold.values);
        assert!(
            warm.pivots <= cold.pivots,
            "restart from the optimal basis cannot need more pivots"
        );
    }

    #[test]
    fn warm_start_with_nudged_bounds_matches_cold() {
        // A parent LP and a "child" with a tightened upper bound — the
        // exact shape branch-and-bound produces. The parent basis stays
        // dual feasible, so the warm path must accept it and land on
        // the same optimum the cold solve finds.
        let parent = LpProblem {
            cost: vec![-2.0, -3.0, -1.0],
            upper: vec![4.0, 4.0, 4.0],
            rows: vec![
                row(&[(0, 1.0), (1, 2.0), (2, 1.0)], RowSense::Le, 9.0),
                row(&[(0, 1.0), (1, 1.0)], RowSense::Le, 5.0),
            ],
        };
        let base = optimal(solve(&parent));
        for cap in [3.0, 2.0, 1.0, 0.0] {
            let mut child = parent.clone();
            child.upper[1] = cap;
            let cold = optimal(solve(&child));
            let warm = optimal(solve_with_warm_start(&child, None, Some(&base.basis)));
            assert!(
                (warm.objective - cold.objective).abs() < 1e-9,
                "cap {cap}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn malformed_warm_bases_fall_back_to_cold() {
        let p = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Eq, 10.0),
                row(&[(0, 1.0), (1, -1.0)], RowSense::Eq, 2.0),
            ],
        };
        let cold = optimal(solve(&p));
        let bad = [
            // Wrong column count.
            WarmBasis {
                basis: vec![0, 1],
                at_upper: vec![false; 3],
                n_cols: 3,
            },
            // Duplicate basic column.
            WarmBasis {
                basis: vec![0, 0],
                at_upper: vec![false; cold.basis.n_cols],
                n_cols: cold.basis.n_cols,
            },
            // Out-of-range basic column.
            WarmBasis {
                basis: vec![0, 99],
                at_upper: vec![false; cold.basis.n_cols],
                n_cols: cold.basis.n_cols,
            },
            // At-upper flag on a nonbasic unbounded column: basis on
            // the two artificials leaves both structurals nonbasic,
            // and x0 has no finite upper bound to rest at.
            WarmBasis {
                basis: vec![cold.basis.n_cols - 2, cold.basis.n_cols - 1],
                at_upper: {
                    let mut f = vec![false; cold.basis.n_cols];
                    f[0] = true;
                    f
                },
                n_cols: cold.basis.n_cols,
            },
        ];
        for (k, basis) in bad.iter().enumerate() {
            let s = optimal(solve_with_warm_start(&p, None, Some(basis)));
            assert!(!s.warmed, "bad basis {k} must be rejected");
            assert_eq!(s.objective.to_bits(), cold.objective.to_bits());
            assert_eq!(s.values, cold.values);
        }
    }

    #[test]
    fn warm_start_never_declares_infeasibility_itself() {
        // Child bounds make the system infeasible; the warm path must
        // hand the verdict to the cold path rather than guessing.
        let parent = LpProblem {
            cost: vec![1.0, 1.0],
            upper: vec![10.0, 10.0],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], RowSense::Ge, 8.0),
                row(&[(0, 1.0)], RowSense::Le, 6.0),
            ],
        };
        let base = optimal(solve(&parent));
        let mut child = parent.clone();
        child.upper[0] = 1.0;
        child.upper[1] = 1.0;
        assert_eq!(
            solve_with_warm_start(&child, None, Some(&base.basis)).unwrap(),
            LpResult::Infeasible
        );
    }

    /// Seeded degenerate LP with deliberate ratio-test ties: `copies`
    /// duplicated rows all active at the same vertex, plus a redundant
    /// row per variable. Classic cycling bait for simplex variants.
    fn degenerate_tie_problem(seed: u64, n: usize, copies: usize) -> LpProblem {
        let mix = |k: u64| {
            let mut x = seed.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 32;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let cost: Vec<f64> = (0..n).map(|j| -(1.0 + mix(j as u64))).collect();
        let mut rows = Vec::new();
        // Identical budget rows: every one ties in the ratio test.
        let budget: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
        for _ in 0..copies {
            rows.push(LpRow {
                coeffs: budget.clone(),
                sense: RowSense::Le,
                rhs: 1.0,
            });
        }
        // Per-variable caps at the same level — more degenerate ties.
        for j in 0..n {
            rows.push(LpRow {
                coeffs: vec![(j, 1.0)],
                sense: RowSense::Le,
                rhs: 1.0,
            });
        }
        LpProblem {
            cost,
            upper: vec![f64::INFINITY; n],
            rows,
        }
    }

    #[test]
    fn degenerate_ties_terminate_cold_and_warm() {
        // Anti-cycling regression (satellite for the warm-start work):
        // the stall→Bland switch must keep terminating when the solve
        // is warm-started from a degenerate optimal basis, and both
        // paths must agree with the analytic optimum (put the whole
        // budget on the most valuable variable).
        for seed in [1u64, 7, 42, 1234, 99999] {
            for (n, copies) in [(3usize, 3usize), (4, 5), (6, 4)] {
                let p = degenerate_tie_problem(seed, n, copies);
                let cold = optimal(solve(&p));
                let want = p.cost.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(
                    (cold.objective - want).abs() < 1e-9,
                    "seed {seed} n {n}: cold {} want {want}",
                    cold.objective
                );
                // Warm restart from the degenerate optimal basis.
                let warm = optimal(solve_with_warm_start(&p, None, Some(&cold.basis)));
                assert!((warm.objective - want).abs() < 1e-9);
                // Warm start a *perturbed* child (tighter caps) from
                // the degenerate parent basis: must terminate and
                // match its own cold solve.
                let mut child = p.clone();
                child.rows[copies].rhs = 0.5; // first per-variable cap
                let child_cold = optimal(solve(&child));
                let child_warm = optimal(solve_with_warm_start(&child, None, Some(&cold.basis)));
                assert!(
                    (child_warm.objective - child_cold.objective).abs() < 1e-9,
                    "seed {seed} n {n}: warm child {} vs cold child {}",
                    child_warm.objective,
                    child_cold.objective
                );
            }
        }
    }
}
