//! Depth-first branch-and-bound over the LP relaxation.

use crate::model::{Model, ObjectiveDirection, Solution, SolveStatus, VarKind};
use crate::IlpError;
use std::time::{Duration, Instant};

/// Options controlling a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Wall-clock limit; `None` means unlimited. When the limit is hit
    /// the best incumbent is returned with [`SolveStatus::Feasible`]
    /// (or [`SolveStatus::Unknown`] if none was found).
    pub time_limit: Option<Duration>,
    /// Maximum branch-and-bound nodes to explore; `None` means unlimited.
    pub node_limit: Option<usize>,
    /// Absolute tolerance for considering an LP value integral.
    pub integrality_tol: f64,
    /// Absolute objective gap below which a node is pruned against the
    /// incumbent. Zero proves exact optimality.
    pub absolute_gap: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_limit: None,
            node_limit: None,
            integrality_tol: 1e-6,
            absolute_gap: 1e-9,
        }
    }
}

impl SolveOptions {
    /// Convenience constructor with a wall-clock limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolveOptions {
            time_limit: Some(limit),
            ..SolveOptions::default()
        }
    }
}

/// Statistics accumulated during a solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Total simplex iterations across all nodes.
    pub lp_iterations: usize,
    /// Total basis-changing simplex pivots across all nodes (bound
    /// flips are counted in `lp_iterations` only).
    pub lp_pivots: usize,
    /// Nodes whose LP relaxation was solved but that were discarded by
    /// the incumbent bound (never branched).
    pub nodes_pruned: usize,
    /// How many times a new best integral solution replaced the
    /// incumbent (1 = the first feasible solution was already optimal).
    pub incumbent_updates: usize,
    /// Wall-clock time from solve start until the first incumbent was
    /// found; `None` when the search ended with no feasible solution.
    pub time_to_first_incumbent: Option<Duration>,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// A search node: a set of variable bound overrides.
#[derive(Debug, Clone)]
struct Node {
    overrides: Vec<(usize, f64, f64)>,
}

pub(crate) fn solve_milp(model: &Model, options: &SolveOptions) -> Result<Solution, IlpError> {
    // eagleeye-lint: allow(clock): anchors the optional B&B wall-clock deadline; deterministic whenever no deadline is set
    let start = Instant::now();
    let sign = match model.direction() {
        ObjectiveDirection::Minimize => 1.0,
        ObjectiveDirection::Maximize => -1.0,
    };
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    let mut stats = SolveStats::default();
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // internal (minimize) objective
    let mut stack: Vec<Node> = vec![Node {
        overrides: Vec::new(),
    }];
    let mut limit_hit = false;
    let deadline = options.time_limit.map(|tl| start + tl);

    while let Some(node) = stack.pop() {
        if let Some(tl) = options.time_limit {
            if start.elapsed() >= tl {
                limit_hit = true;
                break;
            }
        }
        if let Some(nl) = options.node_limit {
            if stats.nodes_explored >= nl {
                limit_hit = true;
                break;
            }
        }

        stats.nodes_explored += 1;
        let relaxed = match model.solve_relaxation(&node.overrides, deadline) {
            Ok(r) => r,
            Err(IlpError::Deadline) => {
                limit_hit = true;
                break;
            }
            Err(IlpError::Unbounded) if stats.nodes_explored > 1 => {
                // A child with tightened integer bounds cannot be unbounded
                // unless a continuous direction is unbounded — surface it.
                return Err(IlpError::Unbounded);
            }
            Err(e) => return Err(e),
        };
        let Some((obj, values, iters, pivots)) = relaxed else {
            continue; // infeasible node
        };
        stats.lp_iterations += iters;
        stats.lp_pivots += pivots;

        // Bound pruning.
        if let Some((best, _)) = &incumbent {
            if obj >= *best - options.absolute_gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None; // (var, fractional part dist)
        for &j in &int_vars {
            let v = values[j];
            let frac = (v - v.round()).abs();
            if frac > options.integrality_tol {
                let dist_to_half = (v - v.floor() - 0.5).abs();
                match branch_var {
                    Some((_, best)) if dist_to_half >= best => {}
                    _ => branch_var = Some((j, dist_to_half)),
                }
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent.
                let better = match &incumbent {
                    Some((best, _)) => obj < *best - 1e-12,
                    None => true,
                };
                if better {
                    stats.incumbent_updates += 1;
                    if stats.time_to_first_incumbent.is_none() {
                        stats.time_to_first_incumbent = Some(start.elapsed());
                    }
                    incumbent = Some((obj, values));
                }
            }
            Some((j, _)) => {
                let v = values[j];
                let floor = v.floor();
                let ceil = v.ceil();
                let mut down = node.overrides.clone();
                down.push((j, f64::NEG_INFINITY.max(model.vars[j].lower), floor));
                let mut up = node.overrides.clone();
                up.push((j, ceil, model.vars[j].upper));
                // Explore the side closer to the LP value first (pushed
                // last so it pops first).
                if v - floor < 0.5 {
                    stack.push(Node { overrides: up });
                    stack.push(Node { overrides: down });
                } else {
                    stack.push(Node { overrides: down });
                    stack.push(Node { overrides: up });
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    let solution = match incumbent {
        Some((internal_obj, values)) => Solution {
            status: if limit_hit {
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            },
            objective: sign * internal_obj,
            values,
            stats,
        },
        None => Solution {
            status: if limit_hit {
                SolveStatus::Unknown
            } else {
                SolveStatus::Infeasible
            },
            objective: f64::NAN,
            values: vec![f64::NAN; model.num_vars()],
            stats,
        },
    };
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (Model, Vec<crate::VarId>) {
        let mut m = Model::maximize();
        let vars: Vec<_> = values.iter().map(|&v| m.add_binary_var(v)).collect();
        m.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)),
            Sense::Le,
            cap,
        )
        .unwrap();
        (m, vars)
    }

    /// Brute-force knapsack optimum for cross-checking.
    fn knapsack_brute(values: &[f64], weights: &[f64], cap: f64) -> f64 {
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let mut w = 0.0;
            let mut v = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn knapsack_matches_brute_force() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0];
        for cap in [0.0, 3.0, 7.0, 11.0, 24.0] {
            let (m, _) = knapsack(&values, &weights, cap);
            let sol = m.solve(&SolveOptions::default()).unwrap();
            let want = knapsack_brute(&values, &weights, cap);
            assert!(
                (sol.objective() - want).abs() < 1e-6,
                "cap {cap}: got {} want {want}",
                sol.objective()
            );
            assert_eq!(sol.status(), SolveStatus::Optimal);
        }
    }

    #[test]
    fn integer_solution_has_integral_values() {
        let values = [3.0, 5.0, 4.0, 6.0];
        let weights = [2.0, 3.0, 3.0, 4.0];
        let (m, vars) = knapsack(&values, &weights, 6.0);
        let sol = m.solve(&SolveOptions::default()).unwrap();
        for &v in &vars {
            let x = sol.value(v);
            assert!((x - x.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn assignment_problem_optimal() {
        // 3x3 assignment, cost matrix; optimal = 1 + 2 + 3 = 6 on diagonal
        // after permutation.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::minimize();
        let mut x = [[None; 3]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, xij) in xi.iter_mut().enumerate() {
                *xij = Some(m.add_binary_var(cost[i][j]));
            }
        }
        for i in 0..3 {
            m.add_constraint((0..3).map(|j| (x[i][j].unwrap(), 1.0)), Sense::Eq, 1.0)
                .unwrap();
            m.add_constraint((0..3).map(|j| (x[j][i].unwrap(), 1.0)), Sense::Eq, 1.0)
                .unwrap();
        }
        let sol = m.solve(&SolveOptions::default()).unwrap();
        // Optimal assignment: (0,1)=1, (1,0)=2, (2,2)=2 => 5.
        assert!((sol.objective() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_or_unknown() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0, 6.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0, 3.0];
        let (m, _) = knapsack(&values, &weights, 12.0);
        let opts = SolveOptions {
            node_limit: Some(1),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts).unwrap();
        assert!(matches!(
            sol.status(),
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
    }

    #[test]
    fn time_limit_zero_returns_quickly() {
        let values = [10.0, 13.0, 7.0, 8.0];
        let weights = [5.0, 6.0, 3.0, 4.0];
        let (m, _) = knapsack(&values, &weights, 12.0);
        let opts = SolveOptions::with_time_limit(Duration::from_secs(0));
        let sol = m.solve(&opts).unwrap();
        assert!(matches!(
            sol.status(),
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
    }

    #[test]
    fn general_integer_variables() {
        // max 2x + 3y, 4x + 5y <= 17, x,y integer >= 0 => x=3,y=1 (9) or
        // x=0,y=3 (9)? 4*0+15<=17 y=3 obj 9; x=3,y=1: 12+5=17 obj 9.
        let mut m = Model::maximize();
        let x = m.add_integer_var(0.0, 10.0, 2.0).unwrap();
        let y = m.add_integer_var(0.0, 10.0, 3.0).unwrap();
        m.add_constraint([(x, 4.0), (y, 5.0)], Sense::Le, 17.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 9.0).abs() < 1e-6);
        let xv = sol.value(x);
        let yv = sol.value(y);
        assert!((xv - xv.round()).abs() < 1e-6);
        assert!((yv - yv.round()).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + y, x binary, y continuous <= 2.5, x + y <= 3 =>
        // x=1, y=2 (y <= 2.5 and x+y<=3) obj 3.
        let mut m = Model::maximize();
        let x = m.add_binary_var(1.0);
        let y = m.add_continuous_var(0.0, 2.5, 1.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 3.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-6);
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_are_populated() {
        let (m, _) = knapsack(&[3.0, 5.0, 4.0], &[2.0, 3.0, 3.0], 5.0);
        let sol = m.solve(&SolveOptions::default()).unwrap();
        let stats = sol.stats();
        assert!(stats.nodes_explored >= 1);
        assert!(stats.lp_pivots <= stats.lp_iterations);
        // This knapsack has a feasible optimum, so the incumbent was
        // set at least once and its discovery time was stamped.
        assert!(stats.incumbent_updates >= 1);
        assert!(stats.time_to_first_incumbent.is_some());
        assert!(stats.time_to_first_incumbent.unwrap() <= stats.elapsed);
    }

    #[test]
    fn infeasible_solve_has_no_incumbent_stats() {
        let mut m = Model::minimize();
        let x = m.add_binary_var(1.0);
        m.add_constraint([(x, 1.0)], crate::Sense::Ge, 2.0).unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), SolveStatus::Infeasible);
        assert_eq!(sol.stats().incumbent_updates, 0);
        assert_eq!(sol.stats().time_to_first_incumbent, None);
    }
}
