//! Depth-first branch-and-bound over the LP relaxation.

use crate::model::{Model, ObjectiveDirection, Sense, Solution, SolveStatus, VarKind};
use crate::simplex::WarmBasis;
use crate::IlpError;
use eagleeye_harden::{crash_point, ByteReader, ByteWriter, CodecError};
use std::time::{Duration, Instant};

/// Which LP engine (and surrounding machinery) a solve runs on.
///
/// The tiers are *observationally equivalent*: same
/// [`SolveStatus`], objectives within 1e-9, and — on instances with a
/// unique optimum — the same solution vector (the
/// `sparse_differential` suite is the oracle for this claim). They
/// are **not** bit-identical in general: the sparse tier presolves,
/// prices over CSC columns, and branches on pseudocosts, so its node
/// ordering and float accumulation differ from the dense tableau.
/// Anything that pins exact digests (golden regression, crash-resume)
/// must therefore pick one tier and stay on it; the default is
/// [`SolverTier::Dense`], the historical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverTier {
    /// Dense-tableau two-phase simplex with most-fractional branching
    /// — the original engine, and the only one with
    /// [`Frontier`] checkpoint/resume support.
    #[default]
    Dense,
    /// Presolve + sparse revised simplex (CSC columns, explicit basis
    /// inverse) + pseudocost branching. Faster on large sparse
    /// instances; solutions are restored to the original variable
    /// space through the postsolve map.
    Sparse,
    /// Choose per instance: [`SolverTier::Sparse`] when
    /// `num_vars + num_constraints >=` [`AUTO_SPARSE_THRESHOLD`],
    /// [`SolverTier::Dense`] below it.
    Auto,
}

/// Instance size (`num_vars + num_constraints`) at which
/// [`SolverTier::Auto`] switches from the dense to the sparse tier.
pub const AUTO_SPARSE_THRESHOLD: usize = 256;

impl SolverTier {
    /// Resolves `Auto` against an instance size; `Dense` and `Sparse`
    /// return themselves.
    pub fn resolve(self, n_vars: usize, n_rows: usize) -> SolverTier {
        match self {
            SolverTier::Auto => {
                if n_vars + n_rows >= AUTO_SPARSE_THRESHOLD {
                    SolverTier::Sparse
                } else {
                    SolverTier::Dense
                }
            }
            tier => tier,
        }
    }
}

/// Options controlling a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Wall-clock limit; `None` means unlimited. When the limit is hit
    /// the best incumbent is returned with [`SolveStatus::Feasible`]
    /// (or [`SolveStatus::Unknown`] if none was found).
    pub time_limit: Option<Duration>,
    /// Maximum branch-and-bound nodes to explore; `None` means unlimited.
    pub node_limit: Option<usize>,
    /// Absolute tolerance for considering an LP value integral.
    pub integrality_tol: f64,
    /// Absolute objective gap below which a node is pruned against the
    /// incumbent. Zero proves exact optimality.
    pub absolute_gap: f64,
    /// Optional candidate solution (one value per variable, in
    /// [`crate::VarId::index`] order) used to seed the incumbent bound
    /// before the search starts. The hint is validated against the
    /// model — bounds, integrality, and every constraint — and
    /// silently discarded if it fails, so a stale or foreign hint can
    /// never corrupt a solve; an accepted hint is counted in
    /// [`SolveStats::hints_accepted`]. Ignored when resuming from a
    /// [`Frontier`], whose incumbent already reflects it. On the
    /// sparse tier the validated hint is additionally projected into
    /// the presolved variable space through the postsolve map, so a
    /// hint survives presolve eliminating variables.
    pub incumbent_hint: Option<Vec<f64>>,
    /// Which solver tier runs the search (default
    /// [`SolverTier::Dense`], the bit-stable historical path).
    pub tier: SolverTier,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_limit: None,
            node_limit: None,
            integrality_tol: 1e-6,
            absolute_gap: 1e-9,
            incumbent_hint: None,
            tier: SolverTier::Dense,
        }
    }
}

impl SolveOptions {
    /// Convenience constructor with a wall-clock limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolveOptions {
            time_limit: Some(limit),
            ..SolveOptions::default()
        }
    }
}

/// Statistics accumulated during a solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Total simplex iterations across all nodes.
    pub lp_iterations: usize,
    /// Total basis-changing simplex pivots across all nodes (bound
    /// flips are counted in `lp_iterations` only).
    pub lp_pivots: usize,
    /// Nodes whose LP relaxation was solved but that were discarded by
    /// the incumbent bound (never branched).
    pub nodes_pruned: usize,
    /// How many times a new best integral solution replaced the
    /// incumbent (1 = the first feasible solution was already optimal).
    pub incumbent_updates: usize,
    /// Nodes whose LP relaxation was solved from an inherited warm
    /// basis (parent's optimal basis, installed and dual-simplex
    /// restored) instead of a cold two-phase solve.
    pub warm_starts: usize,
    /// Nodes that carried a warm basis which the simplex rejected
    /// (layout mismatch, singular factorization, dual infeasibility),
    /// falling back to a cold solve. Counted on feasible nodes, where
    /// the outcome of the attempt is observable.
    pub warm_rejects: usize,
    /// Incumbent hints ([`SolveOptions::incumbent_hint`]) that passed
    /// validation and seeded the initial bound (0 or 1 per solve).
    pub hints_accepted: usize,
    /// Solves that ran on the sparse tier (0 or 1 per solve; always 0
    /// on the dense path, so dense digests are unaffected).
    pub sparse_solves: usize,
    /// Variables eliminated by presolve before the search (sparse tier
    /// only; 0 on the dense path).
    pub presolve_vars_eliminated: usize,
    /// Constraint rows removed by presolve before the search (sparse
    /// tier only; 0 on the dense path).
    pub presolve_rows_removed: usize,
    /// Wall-clock time from solve start until the first incumbent was
    /// found; `None` when the search ended with no feasible solution.
    pub time_to_first_incumbent: Option<Duration>,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// A search node: a set of variable bound overrides plus the parent
/// relaxation's optimal basis to warm-start this node's LP.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    overrides: Vec<(usize, f64, f64)>,
    warm: Option<WarmBasis>,
}

/// A paused branch-and-bound search: the best incumbent found so far
/// plus the open-node frontier (DFS stack of bound-override sets) and
/// the deterministic solve statistics.
///
/// A frontier is produced by [`crate::Model::solve_resumable`] when a
/// node or time limit interrupts the search, serializes bit-exactly
/// ([`Frontier::to_bytes`] stores floats as raw IEEE-754 bits), and can
/// be fed back to `solve_resumable` — on the same model — to continue
/// the search precisely where it stopped. An interrupted-and-resumed
/// solve explores the same nodes in the same order as an uninterrupted
/// one, so the final solution and deterministic stats are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Internal (minimize-sign) incumbent objective and values.
    incumbent: Option<(f64, Vec<f64>)>,
    /// Open nodes, bottom of the DFS stack first. Each node carries
    /// its inherited warm basis so a resumed search warm-starts the
    /// same nodes an uninterrupted one would — keeping the warm
    /// counters and LP effort stats bit-identical across resumes.
    open: Vec<Node>,
    /// Deterministic counters carried across segments; wall-clock
    /// fields accumulate per-segment elapsed time.
    stats: SolveStats,
}

impl Frontier {
    /// Number of open nodes awaiting exploration.
    pub fn nodes_open(&self) -> usize {
        self.open.len()
    }

    /// True when an integral incumbent has been found.
    pub fn has_incumbent(&self) -> bool {
        self.incumbent.is_some()
    }

    /// The deterministic statistics accumulated so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Serializes the frontier (little-endian, floats as raw bits).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(2); // format version (2 = warm bases + warm/hint stats)
        w.bool(self.incumbent.is_some());
        if let Some((obj, values)) = &self.incumbent {
            w.f64(*obj);
            w.usize(values.len());
            for &v in values {
                w.f64(v);
            }
        }
        w.usize(self.open.len());
        for node in &self.open {
            w.usize(node.overrides.len());
            for &(j, lo, hi) in &node.overrides {
                w.usize(j);
                w.f64(lo);
                w.f64(hi);
            }
            w.bool(node.warm.is_some());
            if let Some(basis) = &node.warm {
                w.usize(basis.n_cols);
                w.usize(basis.basis.len());
                for &j in &basis.basis {
                    w.usize(j);
                }
                for &flag in &basis.at_upper {
                    w.bool(flag);
                }
            }
        }
        w.u64(self.stats.nodes_explored as u64);
        w.u64(self.stats.lp_iterations as u64);
        w.u64(self.stats.lp_pivots as u64);
        w.u64(self.stats.nodes_pruned as u64);
        w.u64(self.stats.incumbent_updates as u64);
        w.u64(self.stats.warm_starts as u64);
        w.u64(self.stats.warm_rejects as u64);
        w.u64(self.stats.hints_accepted as u64);
        // Sparse-tier counters (sparse_solves, presolve_*) are not
        // serialized: frontiers are produced only by the dense
        // resumable path, where those counters are always zero — and
        // `from_bytes` restores them as zero via `SolveStats::default`.
        w.bool(self.stats.time_to_first_incumbent.is_some());
        if let Some(t) = self.stats.time_to_first_incumbent {
            w.u64(t.as_secs());
            w.u32(t.subsec_nanos());
        }
        w.u64(self.stats.elapsed.as_secs());
        w.u32(self.stats.elapsed.subsec_nanos());
        w.into_bytes()
    }

    /// Restores a frontier written by [`Frontier::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an unknown format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.u8()? != 2 {
            return Err(CodecError {
                context: "frontier format version",
            });
        }
        let incumbent = if r.bool()? {
            let obj = r.f64()?;
            let n = r.usize()?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            Some((obj, values))
        } else {
            None
        };
        let n_open = r.usize()?;
        let mut open = Vec::with_capacity(n_open);
        for _ in 0..n_open {
            let n_ov = r.usize()?;
            let mut overrides = Vec::with_capacity(n_ov);
            for _ in 0..n_ov {
                overrides.push((r.usize()?, r.f64()?, r.f64()?));
            }
            let warm = if r.bool()? {
                let n_cols = r.usize()?;
                let n_basis = r.usize()?;
                let mut basis = Vec::with_capacity(n_basis);
                for _ in 0..n_basis {
                    basis.push(r.usize()?);
                }
                let mut at_upper = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    at_upper.push(r.bool()?);
                }
                Some(WarmBasis {
                    basis,
                    at_upper,
                    n_cols,
                })
            } else {
                None
            };
            open.push(Node { overrides, warm });
        }
        let mut stats = SolveStats {
            nodes_explored: r.u64()? as usize,
            lp_iterations: r.u64()? as usize,
            lp_pivots: r.u64()? as usize,
            nodes_pruned: r.u64()? as usize,
            incumbent_updates: r.u64()? as usize,
            warm_starts: r.u64()? as usize,
            warm_rejects: r.u64()? as usize,
            hints_accepted: r.u64()? as usize,
            ..SolveStats::default()
        };
        if r.bool()? {
            stats.time_to_first_incumbent = Some(Duration::new(r.u64()?, r.u32()?));
        }
        stats.elapsed = Duration::new(r.u64()?, r.u32()?);
        if !r.is_exhausted() {
            return Err(CodecError {
                context: "trailing frontier bytes",
            });
        }
        Ok(Frontier {
            incumbent,
            open,
            stats,
        })
    }
}

/// Validates an incumbent hint against the model: length, bounds,
/// integrality of integer variables, and every constraint row. Returns
/// the hint's objective value (model direction) when valid.
fn validated_hint_objective(model: &Model, hint: &[f64], integrality_tol: f64) -> Option<f64> {
    if hint.len() != model.num_vars() {
        return None;
    }
    for (var, &x) in model.vars.iter().zip(hint) {
        if !x.is_finite() || x < var.lower - 1e-9 || x > var.upper + 1e-9 {
            return None;
        }
        if var.kind == VarKind::Integer && (x - x.round()).abs() > integrality_tol {
            return None;
        }
    }
    for row in &model.rows {
        let lhs: f64 = row.terms.iter().map(|&(j, c)| c * hint[j]).sum();
        let ok = match row.sense {
            Sense::Le => lhs <= row.rhs + 1e-6,
            Sense::Ge => lhs >= row.rhs - 1e-6,
            Sense::Eq => (lhs - row.rhs).abs() <= 1e-6,
        };
        if !ok {
            return None;
        }
    }
    Some(model.vars.iter().zip(hint).map(|(v, &x)| v.obj * x).sum())
}

pub(crate) fn solve_milp(model: &Model, options: &SolveOptions) -> Result<Solution, IlpError> {
    match options
        .tier
        .resolve(model.num_vars(), model.num_constraints())
    {
        SolverTier::Sparse => solve_milp_sparse(model, options),
        // `Auto` has been resolved away; anything else is the dense path.
        _ => solve_milp_resumable(model, options, None).map(|(solution, _)| solution),
    }
}

/// Per-variable pseudocost record: observed objective degradation per
/// unit of fractional distance, separately for up and down branches,
/// blended with a cost-magnitude prior until real observations arrive.
#[derive(Debug, Clone)]
struct PseudoCost {
    prior: f64,
    up_sum: f64,
    up_n: f64,
    down_sum: f64,
    down_n: f64,
}

impl PseudoCost {
    fn new(obj_coeff: f64) -> Self {
        PseudoCost {
            prior: 1.0 + obj_coeff.abs(),
            up_sum: 0.0,
            up_n: 0.0,
            down_sum: 0.0,
            down_n: 0.0,
        }
    }

    fn observe(&mut self, is_up: bool, per_unit: f64) {
        if is_up {
            self.up_sum += per_unit;
            self.up_n += 1.0;
        } else {
            self.down_sum += per_unit;
            self.down_n += 1.0;
        }
    }

    fn up_estimate(&self) -> f64 {
        (self.prior + self.up_sum) / (1.0 + self.up_n)
    }

    fn down_estimate(&self) -> f64 {
        (self.prior + self.down_sum) / (1.0 + self.down_n)
    }
}

/// A sparse-tier search node. Unlike the dense [`Node`] it also
/// remembers *how* it was created (branch variable, direction, and the
/// parent relaxation objective) so the pseudocost table can be updated
/// once this node's own relaxation is solved.
#[derive(Debug, Clone)]
struct SparseNode {
    overrides: Vec<(usize, f64, f64)>,
    warm: Option<WarmBasis>,
    /// `(reduced var, branched up, fractional distance, parent obj)`.
    branch: Option<(usize, bool, f64, f64)>,
}

/// Depth-first branch-and-bound on the sparse tier: presolve the
/// model, search the reduced space with sparse-revised-simplex
/// relaxations and pseudocost branching, then postsolve the incumbent
/// back to the original variable space. Deadline, node-limit,
/// warm-start, and status semantics mirror the dense path; node
/// *ordering* intentionally does not (pseudocost selection is the
/// point — it is what shrinks the node counts the obs counters track).
fn solve_milp_sparse(model: &Model, options: &SolveOptions) -> Result<Solution, IlpError> {
    use crate::presolve::{presolve, PresolveResult};

    // eagleeye-lint: allow(clock): anchors the optional B&B wall-clock deadline; deterministic whenever no deadline is set
    let start = Instant::now();
    let sign = match model.direction() {
        ObjectiveDirection::Minimize => 1.0,
        ObjectiveDirection::Maximize => -1.0,
    };

    let pre = match presolve(model) {
        PresolveResult::Reduced(p) => p,
        PresolveResult::Infeasible => {
            // Proven infeasible before any LP ran.
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                objective: f64::NAN,
                values: vec![f64::NAN; model.num_vars()],
                stats: SolveStats {
                    sparse_solves: 1,
                    elapsed: start.elapsed(),
                    ..SolveStats::default()
                },
            });
        }
    };
    let reduced = &pre.model;
    let mut stats = SolveStats {
        sparse_solves: 1,
        presolve_vars_eliminated: pre.stats.vars_eliminated,
        presolve_rows_removed: pre.stats.rows_removed,
        ..SolveStats::default()
    };

    // Seed the incumbent from a validated hint. Validation runs
    // against the ORIGINAL model (the caller's space); the accepted
    // hint is then projected through the postsolve map into the
    // reduced space, so presolve eliminating variables no longer
    // drops the hint. Internal objectives are minimize-signed over the
    // reduced model: original = reduced + offset (model direction).
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(hint) = options.incumbent_hint.as_deref() {
        if let Some(obj) = validated_hint_objective(model, hint, options.integrality_tol) {
            if let Some(projected) = pre.map.project(hint) {
                stats.hints_accepted += 1;
                incumbent = Some((sign * (obj - pre.offset), projected));
            }
        }
    }

    let int_vars: Vec<usize> = reduced
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();
    let mut pseudo: Vec<PseudoCost> = reduced
        .vars
        .iter()
        .map(|v| PseudoCost::new(v.obj))
        .collect();

    let mut stack = vec![SparseNode {
        overrides: Vec::new(),
        warm: None,
        branch: None,
    }];
    let mut limit_hit = false;
    let deadline = options.time_limit.map(|tl| start + tl);

    while let Some(node) = stack.pop() {
        if let Some(tl) = options.time_limit {
            if start.elapsed() >= tl {
                limit_hit = true;
                break;
            }
        }
        if let Some(nl) = options.node_limit {
            if stats.nodes_explored >= nl {
                limit_hit = true;
                break;
            }
        }
        // Same crash-injection site as the dense path, so fault drills
        // exercise both tiers.
        crash_point("bnb_node");

        stats.nodes_explored += 1;
        let relaxed =
            match reduced.solve_relaxation_sparse(&node.overrides, deadline, node.warm.as_ref()) {
                Ok(r) => r,
                Err(IlpError::Deadline) => {
                    stats.nodes_explored -= 1;
                    limit_hit = true;
                    break;
                }
                Err(IlpError::Unbounded) if stats.nodes_explored > 1 => {
                    return Err(IlpError::Unbounded);
                }
                Err(e) => return Err(e),
            };
        let Some(rlp) = relaxed else {
            continue; // infeasible node
        };
        if rlp.warmed {
            stats.warm_starts += 1;
        } else if node.warm.is_some() {
            stats.warm_rejects += 1;
        }
        let (obj, values) = (rlp.obj, rlp.values);
        stats.lp_iterations += rlp.iterations;
        stats.lp_pivots += rlp.pivots;

        // Feed the pseudocost table: this node's relaxation tells us
        // what the branch that created it actually cost per unit of
        // fractional distance.
        if let Some((j, is_up, dist, parent_obj)) = node.branch {
            if dist > 1e-9 {
                let per_unit = (obj - parent_obj).max(0.0) / dist;
                pseudo[j].observe(is_up, per_unit);
            }
        }

        // Bound pruning.
        if let Some((best, _)) = &incumbent {
            if obj >= *best - options.absolute_gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Pseudocost branching: pick the fractional integer variable
        // with the largest product of estimated up/down degradations.
        // Strict `>` keeps ties on the lowest index — deterministic.
        let mut branch_var: Option<(usize, f64, f64)> = None; // (var, score, lp value)
        for &j in &int_vars {
            let v = values[j];
            if (v - v.round()).abs() > options.integrality_tol {
                let frac = v - v.floor();
                let score = (pseudo[j].down_estimate() * frac).max(1e-6)
                    * (pseudo[j].up_estimate() * (1.0 - frac)).max(1e-6);
                match branch_var {
                    Some((_, best_score, _)) if score <= best_score => {}
                    _ => branch_var = Some((j, score, v)),
                }
            }
        }

        match branch_var {
            None => {
                let better = match &incumbent {
                    Some((best, _)) => obj < *best - 1e-12,
                    None => true,
                };
                if better {
                    stats.incumbent_updates += 1;
                    if stats.time_to_first_incumbent.is_none() {
                        stats.time_to_first_incumbent = Some(start.elapsed());
                    }
                    incumbent = Some((obj, values));
                }
            }
            Some((j, _, v)) => {
                let floor = v.floor();
                let ceil = v.ceil();
                let frac = v - floor;
                let mut down = node.overrides.clone();
                down.push((j, reduced.vars[j].lower, floor));
                let mut up = node.overrides.clone();
                up.push((j, ceil, reduced.vars[j].upper));
                let down_node = SparseNode {
                    overrides: down,
                    warm: Some(rlp.basis.clone()),
                    branch: Some((j, false, frac, obj)),
                };
                let up_node = SparseNode {
                    overrides: up,
                    warm: Some(rlp.basis),
                    branch: Some((j, true, 1.0 - frac, obj)),
                };
                // Explore the side closer to the LP value first
                // (pushed last so it pops first), like the dense path.
                if frac < 0.5 {
                    stack.push(up_node);
                    stack.push(down_node);
                } else {
                    stack.push(down_node);
                    stack.push(up_node);
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    Ok(match incumbent {
        Some((internal_obj, reduced_values)) => Solution {
            status: if limit_hit {
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            },
            // original = reduced + offset, both in the model direction.
            objective: sign * internal_obj + pre.offset,
            values: pre.map.restore(&reduced_values),
            stats,
        },
        None => Solution {
            status: if limit_hit {
                SolveStatus::Unknown
            } else {
                SolveStatus::Infeasible
            },
            objective: f64::NAN,
            values: vec![f64::NAN; model.num_vars()],
            stats,
        },
    })
}

pub(crate) fn solve_milp_resumable(
    model: &Model,
    options: &SolveOptions,
    resume: Option<Frontier>,
) -> Result<(Solution, Option<Frontier>), IlpError> {
    // eagleeye-lint: allow(clock): anchors the optional B&B wall-clock deadline; deterministic whenever no deadline is set
    let start = Instant::now();
    let sign = match model.direction() {
        ObjectiveDirection::Minimize => 1.0,
        ObjectiveDirection::Maximize => -1.0,
    };
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    // Either pick the search up exactly where a prior segment stopped,
    // or start fresh from the root relaxation.
    let (mut stats, mut incumbent, mut stack, prior_elapsed) = match resume {
        Some(frontier) => (
            SolveStats {
                elapsed: Duration::ZERO,
                ..frontier.stats
            },
            frontier.incumbent,
            frontier.open,
            frontier.stats.elapsed,
        ),
        None => {
            let mut stats = SolveStats::default();
            // Seed the incumbent bound from a validated hint (the
            // internal objective is always minimize-signed). The hint
            // only prunes; it never counts as an incumbent update and
            // never stamps a discovery time.
            let incumbent = options.incumbent_hint.as_deref().and_then(|hint| {
                validated_hint_objective(model, hint, options.integrality_tol).map(|obj| {
                    stats.hints_accepted += 1;
                    (sign * obj, hint.to_vec())
                })
            });
            (
                stats,
                incumbent,
                vec![Node {
                    overrides: Vec::new(),
                    warm: None,
                }],
                Duration::ZERO,
            )
        }
    };
    let mut limit_hit = false;
    let deadline = options.time_limit.map(|tl| start + tl);

    while let Some(node) = stack.pop() {
        if let Some(tl) = options.time_limit {
            if start.elapsed() >= tl {
                stack.push(node);
                limit_hit = true;
                break;
            }
        }
        if let Some(nl) = options.node_limit {
            if stats.nodes_explored >= nl {
                stack.push(node);
                limit_hit = true;
                break;
            }
        }
        // Crash-injection site: one hit per explored node, so a crash
        // test can kill the solver mid-search and assert the resumed
        // search matches an uninterrupted one.
        crash_point("bnb_node");

        stats.nodes_explored += 1;
        let relaxed = match model.solve_relaxation(&node.overrides, deadline, node.warm.as_ref()) {
            Ok(r) => r,
            Err(IlpError::Deadline) => {
                // The node was not fully explored: give it back to the
                // frontier and undo its exploration count so a resumed
                // search replays it exactly.
                stats.nodes_explored -= 1;
                stack.push(node);
                limit_hit = true;
                break;
            }
            Err(IlpError::Unbounded) if stats.nodes_explored > 1 => {
                // A child with tightened integer bounds cannot be unbounded
                // unless a continuous direction is unbounded — surface it.
                return Err(IlpError::Unbounded);
            }
            Err(e) => return Err(e),
        };
        let Some(rlp) = relaxed else {
            continue; // infeasible node
        };
        if rlp.warmed {
            stats.warm_starts += 1;
        } else if node.warm.is_some() {
            stats.warm_rejects += 1;
        }
        let (obj, values) = (rlp.obj, rlp.values);
        stats.lp_iterations += rlp.iterations;
        stats.lp_pivots += rlp.pivots;

        // Bound pruning.
        if let Some((best, _)) = &incumbent {
            if obj >= *best - options.absolute_gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None; // (var, fractional part dist)
        for &j in &int_vars {
            let v = values[j];
            let frac = (v - v.round()).abs();
            if frac > options.integrality_tol {
                let dist_to_half = (v - v.floor() - 0.5).abs();
                match branch_var {
                    Some((_, best)) if dist_to_half >= best => {}
                    _ => branch_var = Some((j, dist_to_half)),
                }
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent.
                let better = match &incumbent {
                    Some((best, _)) => obj < *best - 1e-12,
                    None => true,
                };
                if better {
                    stats.incumbent_updates += 1;
                    if stats.time_to_first_incumbent.is_none() {
                        stats.time_to_first_incumbent = Some(prior_elapsed + start.elapsed());
                    }
                    incumbent = Some((obj, values));
                }
            }
            Some((j, _)) => {
                let v = values[j];
                let floor = v.floor();
                let ceil = v.ceil();
                let mut down = node.overrides.clone();
                down.push((j, f64::NEG_INFINITY.max(model.vars[j].lower), floor));
                let mut up = node.overrides.clone();
                up.push((j, ceil, model.vars[j].upper));
                // Both children inherit this node's optimal basis:
                // only one variable's bound tightened, so the basis
                // stays dual feasible and re-solves in a few dual
                // pivots. Explore the side closer to the LP value
                // first (pushed last so it pops first).
                let warm_a = Some(rlp.basis.clone());
                let warm_b = Some(rlp.basis);
                if v - floor < 0.5 {
                    stack.push(Node {
                        overrides: up,
                        warm: warm_a,
                    });
                    stack.push(Node {
                        overrides: down,
                        warm: warm_b,
                    });
                } else {
                    stack.push(Node {
                        overrides: down,
                        warm: warm_a,
                    });
                    stack.push(Node {
                        overrides: up,
                        warm: warm_b,
                    });
                }
            }
        }
    }

    stats.elapsed = prior_elapsed + start.elapsed();
    // An interrupted search with open nodes is resumable; a drained
    // stack means the solve finished (no frontier to hand back).
    let frontier = if limit_hit && !stack.is_empty() {
        Some(Frontier {
            incumbent: incumbent.clone(),
            open: stack,
            stats,
        })
    } else {
        None
    };
    let solution = match incumbent {
        Some((internal_obj, values)) => Solution {
            status: if limit_hit {
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            },
            objective: sign * internal_obj,
            values,
            stats,
        },
        None => Solution {
            status: if limit_hit {
                SolveStatus::Unknown
            } else {
                SolveStatus::Infeasible
            },
            objective: f64::NAN,
            values: vec![f64::NAN; model.num_vars()],
            stats,
        },
    };
    Ok((solution, frontier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (Model, Vec<crate::VarId>) {
        let mut m = Model::maximize();
        let vars: Vec<_> = values.iter().map(|&v| m.add_binary_var(v)).collect();
        m.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)),
            Sense::Le,
            cap,
        )
        .unwrap();
        (m, vars)
    }

    /// Brute-force knapsack optimum for cross-checking.
    fn knapsack_brute(values: &[f64], weights: &[f64], cap: f64) -> f64 {
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let mut w = 0.0;
            let mut v = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn knapsack_matches_brute_force() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0];
        for cap in [0.0, 3.0, 7.0, 11.0, 24.0] {
            let (m, _) = knapsack(&values, &weights, cap);
            let sol = m.solve(&SolveOptions::default()).unwrap();
            let want = knapsack_brute(&values, &weights, cap);
            assert!(
                (sol.objective() - want).abs() < 1e-6,
                "cap {cap}: got {} want {want}",
                sol.objective()
            );
            assert_eq!(sol.status(), SolveStatus::Optimal);
        }
    }

    #[test]
    fn integer_solution_has_integral_values() {
        let values = [3.0, 5.0, 4.0, 6.0];
        let weights = [2.0, 3.0, 3.0, 4.0];
        let (m, vars) = knapsack(&values, &weights, 6.0);
        let sol = m.solve(&SolveOptions::default()).unwrap();
        for &v in &vars {
            let x = sol.value(v);
            assert!((x - x.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn assignment_problem_optimal() {
        // 3x3 assignment, cost matrix; optimal = 1 + 2 + 3 = 6 on diagonal
        // after permutation.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::minimize();
        let mut x = [[None; 3]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, xij) in xi.iter_mut().enumerate() {
                *xij = Some(m.add_binary_var(cost[i][j]));
            }
        }
        for i in 0..3 {
            m.add_constraint((0..3).map(|j| (x[i][j].unwrap(), 1.0)), Sense::Eq, 1.0)
                .unwrap();
            m.add_constraint((0..3).map(|j| (x[j][i].unwrap(), 1.0)), Sense::Eq, 1.0)
                .unwrap();
        }
        let sol = m.solve(&SolveOptions::default()).unwrap();
        // Optimal assignment: (0,1)=1, (1,0)=2, (2,2)=2 => 5.
        assert!((sol.objective() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_or_unknown() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0, 6.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0, 3.0];
        let (m, _) = knapsack(&values, &weights, 12.0);
        let opts = SolveOptions {
            node_limit: Some(1),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts).unwrap();
        assert!(matches!(
            sol.status(),
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
    }

    #[test]
    fn time_limit_zero_returns_quickly() {
        let values = [10.0, 13.0, 7.0, 8.0];
        let weights = [5.0, 6.0, 3.0, 4.0];
        let (m, _) = knapsack(&values, &weights, 12.0);
        let opts = SolveOptions::with_time_limit(Duration::from_secs(0));
        let sol = m.solve(&opts).unwrap();
        assert!(matches!(
            sol.status(),
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
    }

    #[test]
    fn general_integer_variables() {
        // max 2x + 3y, 4x + 5y <= 17, x,y integer >= 0 => x=3,y=1 (9) or
        // x=0,y=3 (9)? 4*0+15<=17 y=3 obj 9; x=3,y=1: 12+5=17 obj 9.
        let mut m = Model::maximize();
        let x = m.add_integer_var(0.0, 10.0, 2.0).unwrap();
        let y = m.add_integer_var(0.0, 10.0, 3.0).unwrap();
        m.add_constraint([(x, 4.0), (y, 5.0)], Sense::Le, 17.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 9.0).abs() < 1e-6);
        let xv = sol.value(x);
        let yv = sol.value(y);
        assert!((xv - xv.round()).abs() < 1e-6);
        assert!((yv - yv.round()).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + y, x binary, y continuous <= 2.5, x + y <= 3 =>
        // x=1, y=2 (y <= 2.5 and x+y<=3) obj 3.
        let mut m = Model::maximize();
        let x = m.add_binary_var(1.0);
        let y = m.add_continuous_var(0.0, 2.5, 1.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 3.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-6);
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_are_populated() {
        let (m, _) = knapsack(&[3.0, 5.0, 4.0], &[2.0, 3.0, 3.0], 5.0);
        let sol = m.solve(&SolveOptions::default()).unwrap();
        let stats = sol.stats();
        assert!(stats.nodes_explored >= 1);
        assert!(stats.lp_pivots <= stats.lp_iterations);
        // This knapsack has a feasible optimum, so the incumbent was
        // set at least once and its discovery time was stamped.
        assert!(stats.incumbent_updates >= 1);
        assert!(stats.time_to_first_incumbent.is_some());
        assert!(stats.time_to_first_incumbent.unwrap() <= stats.elapsed);
    }

    /// Deterministic stats: everything except the wall-clock fields.
    #[allow(clippy::type_complexity)]
    fn det_stats(s: &SolveStats) -> (usize, usize, usize, usize, usize, usize, usize, usize) {
        (
            s.nodes_explored,
            s.lp_iterations,
            s.lp_pivots,
            s.nodes_pruned,
            s.incumbent_updates,
            s.warm_starts,
            s.warm_rejects,
            s.hints_accepted,
        )
    }

    #[test]
    fn interrupted_and_resumed_solve_matches_uninterrupted() {
        // A knapsack the solver genuinely branches on (~69 nodes), so
        // every stride interrupts the search several times.
        let values = [41.0, 50.0, 49.0, 59.0, 45.0, 47.0];
        let weights = [31.0, 37.0, 38.0, 46.0, 35.0, 40.0];
        let (m, _) = knapsack(&values, &weights, 100.0);
        let baseline = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(baseline.status(), SolveStatus::Optimal);
        assert!(baseline.stats().nodes_explored > 10);

        // Interrupt the search every few nodes and resume until done.
        for stride in [1usize, 2, 3, 5] {
            let mut frontier: Option<Frontier> = None;
            let mut segments = 0;
            let solution = loop {
                segments += 1;
                assert!(segments < 10_000, "stride {stride} never converged");
                let opts = SolveOptions {
                    node_limit: Some(
                        frontier.as_ref().map_or(0, |f| f.stats().nodes_explored) + stride,
                    ),
                    ..SolveOptions::default()
                };
                let (sol, next) = m.solve_resumable(&opts, frontier.take()).unwrap();
                match next {
                    Some(f) => frontier = Some(f),
                    None => break sol,
                }
            };
            assert!(segments > 1, "stride {stride} should actually interrupt");
            assert_eq!(solution.status(), SolveStatus::Optimal, "stride {stride}");
            assert_eq!(
                solution.objective().to_bits(),
                baseline.objective().to_bits(),
                "stride {stride}"
            );
            assert_eq!(solution.values, baseline.values, "stride {stride}");
            assert_eq!(
                det_stats(solution.stats()),
                det_stats(baseline.stats()),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn frontier_round_trips_through_bytes() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0, 6.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0, 3.0];
        let (m, _) = knapsack(&values, &weights, 12.0);
        let opts = SolveOptions {
            node_limit: Some(3),
            ..SolveOptions::default()
        };
        let (_, frontier) = m.solve_resumable(&opts, None).unwrap();
        let frontier = frontier.expect("3-node limit must interrupt this knapsack");
        assert!(frontier.nodes_open() > 0);
        let bytes = frontier.to_bytes();
        let back = Frontier::from_bytes(&bytes).unwrap();
        assert_eq!(back, frontier);
        assert_eq!(back.to_bytes(), bytes);

        // Resuming from the deserialized frontier finishes the solve
        // identically to resuming from the in-memory one.
        let baseline = m.solve(&SolveOptions::default()).unwrap();
        let (from_mem, none_a) = m
            .solve_resumable(&SolveOptions::default(), Some(frontier))
            .unwrap();
        let (from_bytes, none_b) = m
            .solve_resumable(&SolveOptions::default(), Some(back))
            .unwrap();
        assert!(none_a.is_none() && none_b.is_none());
        assert_eq!(from_mem.values, from_bytes.values);
        assert_eq!(from_mem.values, baseline.values);
        assert_eq!(det_stats(from_mem.stats()), det_stats(baseline.stats()));
    }

    #[test]
    fn frontier_rejects_malformed_bytes() {
        assert!(Frontier::from_bytes(&[]).is_err());
        assert!(Frontier::from_bytes(&[9]).is_err());
        // Version-1 payloads (pre warm-basis format) must be rejected.
        assert!(Frontier::from_bytes(&[1, 0, 0]).is_err());
        let f = Frontier {
            incumbent: Some((1.5, vec![0.0, 1.0])),
            open: vec![
                Node {
                    overrides: vec![(0, 0.0, 1.0)],
                    warm: Some(WarmBasis {
                        basis: vec![2],
                        at_upper: vec![false, true, false],
                        n_cols: 3,
                    }),
                },
                Node {
                    overrides: vec![],
                    warm: None,
                },
            ],
            stats: SolveStats::default(),
        };
        let bytes = f.to_bytes();
        assert_eq!(Frontier::from_bytes(&bytes).unwrap(), f);
        assert!(Frontier::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Frontier::from_bytes(&trailing).is_err());
    }

    #[test]
    fn warm_starts_are_counted_and_deterministic() {
        // A knapsack that genuinely branches: every non-root node
        // carries its parent's basis, so warm attempts must be
        // recorded, and two identical solves must agree exactly.
        let values = [41.0, 50.0, 49.0, 59.0, 45.0, 47.0];
        let weights = [31.0, 37.0, 38.0, 46.0, 35.0, 40.0];
        let (m, _) = knapsack(&values, &weights, 100.0);
        let a = m.solve(&SolveOptions::default()).unwrap();
        let b = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(det_stats(a.stats()), det_stats(b.stats()));
        let stats = a.stats();
        assert!(stats.nodes_explored > 10);
        assert!(
            stats.warm_starts + stats.warm_rejects > 0,
            "branching nodes must at least attempt warm starts"
        );
        assert!(
            stats.warm_starts > 0,
            "bound-tightened children should mostly accept the parent basis"
        );
        assert_eq!(stats.hints_accepted, 0);
    }

    #[test]
    fn valid_incumbent_hint_seeds_the_bound() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0];
        let (m, _) = knapsack(&values, &weights, 11.0);
        let baseline = m.solve(&SolveOptions::default()).unwrap();
        // Seed with the known optimum: the search must accept the hint
        // and still prove optimality of the same objective.
        let opts = SolveOptions {
            incumbent_hint: Some(baseline.values().to_vec()),
            ..SolveOptions::default()
        };
        let hinted = m.solve(&opts).unwrap();
        assert_eq!(hinted.status(), SolveStatus::Optimal);
        assert_eq!(hinted.stats().hints_accepted, 1);
        // The hint's objective is recomputed from the model, so it can
        // differ from the LP-accumulated baseline in the last bits.
        assert!((hinted.objective() - baseline.objective()).abs() < 1e-9);
        // A seeded optimal incumbent means no node can improve on it.
        assert_eq!(hinted.stats().incumbent_updates, 0);
        assert!(hinted.stats().time_to_first_incumbent.is_none());
        assert!(
            hinted.stats().nodes_pruned >= baseline.stats().nodes_pruned,
            "an optimal seed can only prune more"
        );
    }

    #[test]
    fn invalid_incumbent_hints_are_discarded() {
        let values = [10.0, 13.0, 7.0];
        let weights = [5.0, 6.0, 3.0];
        let (m, _) = knapsack(&values, &weights, 8.0);
        let baseline = m.solve(&SolveOptions::default()).unwrap();
        let bad_hints = [
            vec![1.0],                // wrong length
            vec![1.0, 1.0, 1.0],      // violates the knapsack row
            vec![0.5, 0.0, 0.0],      // fractional integer variable
            vec![2.0, 0.0, 0.0],      // out of bounds
            vec![f64::NAN, 0.0, 0.0], // non-finite
        ];
        for hint in bad_hints {
            let opts = SolveOptions {
                incumbent_hint: Some(hint.clone()),
                ..SolveOptions::default()
            };
            let sol = m.solve(&opts).unwrap();
            assert_eq!(sol.stats().hints_accepted, 0, "hint {hint:?}");
            assert_eq!(sol.objective().to_bits(), baseline.objective().to_bits());
            assert_eq!(sol.values, baseline.values);
            assert_eq!(
                sol.stats().incumbent_updates,
                baseline.stats().incumbent_updates
            );
        }
    }

    #[test]
    fn suboptimal_hint_is_replaced_by_the_true_optimum() {
        let values = [10.0, 13.0, 7.0, 8.0];
        let weights = [5.0, 6.0, 3.0, 4.0];
        let (m, _) = knapsack(&values, &weights, 9.0);
        let baseline = m.solve(&SolveOptions::default()).unwrap();
        // All-zeros is always feasible for a knapsack but far from
        // optimal: the search must accept it, then beat it.
        let opts = SolveOptions {
            incumbent_hint: Some(vec![0.0; 4]),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts).unwrap();
        assert_eq!(sol.stats().hints_accepted, 1);
        assert!(sol.stats().incumbent_updates >= 1);
        assert_eq!(sol.objective().to_bits(), baseline.objective().to_bits());
        assert_eq!(sol.values, baseline.values);
    }

    #[test]
    fn completed_solve_returns_no_frontier() {
        let (m, _) = knapsack(&[3.0, 5.0], &[2.0, 3.0], 4.0);
        let (sol, frontier) = m.solve_resumable(&SolveOptions::default(), None).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!(frontier.is_none());
    }

    #[test]
    fn infeasible_solve_has_no_incumbent_stats() {
        let mut m = Model::minimize();
        let x = m.add_binary_var(1.0);
        m.add_constraint([(x, 1.0)], crate::Sense::Ge, 2.0).unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), SolveStatus::Infeasible);
        assert_eq!(sol.stats().incumbent_updates, 0);
        assert_eq!(sol.stats().time_to_first_incumbent, None);
    }
}
