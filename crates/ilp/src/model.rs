use crate::branch::{self, SolveOptions, SolveStats};
use crate::simplex::{self, LpProblem, LpResult, LpRow, RowSense, WarmBasis};
use crate::IlpError;
use std::fmt;

/// LP-relaxation outcome for a feasible node: the internal (minimize
/// sign) objective, variable values in model space, solver effort, and
/// the optimal basis for warm-starting child nodes.
#[derive(Debug, Clone)]
pub(crate) struct RelaxedLp {
    pub obj: f64,
    pub values: Vec<f64>,
    pub iterations: usize,
    pub pivots: usize,
    pub basis: WarmBasis,
    /// Whether the supplied warm basis was actually used.
    pub warmed: bool,
}

/// Handle to a variable in a [`Model`].
///
/// `VarId`s are only meaningful for the model that created them; using one
/// with another model yields [`IlpError::UnknownVariable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable within its model; also the index
    /// of its value in [`Solution::values`].
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Whether a variable is continuous or must take integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (branch-and-bound enforces this).
    Integer,
}

/// Relational sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveDirection {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub lower: f64,
    pub upper: f64,
    pub kind: VarKind,
    pub obj: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RowDef {
    pub terms: Vec<(usize, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// Builder and solver entry point for LP / MILP models.
///
/// A `Model` owns a set of variables (continuous or integer, with finite
/// lower bounds), a set of linear constraints, and a linear objective.
/// Objective coefficients are supplied at variable-creation time.
///
/// # Example
///
/// ```
/// use eagleeye_ilp::{Model, Sense, SolveOptions};
///
/// // Minimal set cover: two sets {a,b} and {b,c}, one set {c} — cover
/// // {a,b,c} with as few sets as possible.
/// let mut m = Model::minimize();
/// let s0 = m.add_binary_var(1.0);
/// let s1 = m.add_binary_var(1.0);
/// let s2 = m.add_binary_var(1.0);
/// m.add_constraint([(s0, 1.0)], Sense::Ge, 1.0)?;             // a
/// m.add_constraint([(s0, 1.0), (s1, 1.0)], Sense::Ge, 1.0)?;  // b
/// m.add_constraint([(s1, 1.0), (s2, 1.0)], Sense::Ge, 1.0)?;  // c
/// let sol = m.solve(&SolveOptions::default())?;
/// assert!((sol.objective() - 2.0).abs() < 1e-6);
/// # Ok::<(), eagleeye_ilp::IlpError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    pub(crate) direction: Option<ObjectiveDirection>,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<RowDef>,
}

impl Model {
    /// Creates an empty model with no objective direction set
    /// (defaults to minimization at solve time).
    pub fn new() -> Self {
        Model::default()
    }

    /// Creates an empty minimization model.
    pub fn minimize() -> Self {
        Model {
            direction: Some(ObjectiveDirection::Minimize),
            ..Model::default()
        }
    }

    /// Creates an empty maximization model.
    pub fn maximize() -> Self {
        Model {
            direction: Some(ObjectiveDirection::Maximize),
            ..Model::default()
        }
    }

    /// The optimization direction (defaults to minimize).
    pub fn direction(&self) -> ObjectiveDirection {
        self.direction.unwrap_or(ObjectiveDirection::Minimize)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds a variable with explicit kind, bounds, and objective
    /// coefficient.
    ///
    /// # Errors
    ///
    /// * [`IlpError::UnboundedBelow`] if `lower` is not finite — this
    ///   solver requires finite lower bounds (shift or split free
    ///   variables in the formulation).
    /// * [`IlpError::EmptyDomain`] if `lower > upper`.
    /// * [`IlpError::NonFiniteValue`] if `obj` is not finite or `upper`
    ///   is NaN.
    pub fn add_var(
        &mut self,
        kind: VarKind,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> Result<VarId, IlpError> {
        if !lower.is_finite() {
            return Err(IlpError::UnboundedBelow);
        }
        if upper.is_nan() || !obj.is_finite() {
            return Err(IlpError::NonFiniteValue {
                context: "variable definition",
            });
        }
        if lower > upper {
            return Err(IlpError::EmptyDomain { lower, upper });
        }
        self.vars.push(VarDef {
            lower,
            upper,
            kind,
            obj,
        });
        Ok(VarId(self.vars.len() - 1))
    }

    /// Adds a binary (0/1 integer) variable with the given objective
    /// coefficient. Infallible: the domain is always valid.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not finite.
    pub fn add_binary_var(&mut self, obj: f64) -> VarId {
        self.add_var(VarKind::Integer, 0.0, 1.0, obj)
            // eagleeye-lint: allow(no-unwrap): the 0..1 domain is constant-valid; non-finite obj is this method's documented panic contract
            .expect("binary variable domain is always valid")
    }

    /// Adds a continuous variable.
    ///
    /// # Errors
    ///
    /// Same as [`Model::add_var`].
    pub fn add_continuous_var(
        &mut self,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> Result<VarId, IlpError> {
        self.add_var(VarKind::Continuous, lower, upper, obj)
    }

    /// Adds an integer variable.
    ///
    /// # Errors
    ///
    /// Same as [`Model::add_var`].
    pub fn add_integer_var(&mut self, lower: f64, upper: f64, obj: f64) -> Result<VarId, IlpError> {
        self.add_var(VarKind::Integer, lower, upper, obj)
    }

    /// Adds the linear constraint `Σ coef·var  sense  rhs`.
    ///
    /// Duplicate variables in `terms` are merged by summing coefficients.
    ///
    /// # Errors
    ///
    /// * [`IlpError::UnknownVariable`] for a `VarId` not from this model.
    /// * [`IlpError::NonFiniteValue`] for NaN/infinite coefficients or rhs.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> Result<(), IlpError> {
        if !rhs.is_finite() {
            return Err(IlpError::NonFiniteValue {
                context: "constraint right-hand side",
            });
        }
        let mut merged: Vec<(usize, f64)> = Vec::new();
        for (v, c) in terms {
            if v.0 >= self.vars.len() {
                return Err(IlpError::UnknownVariable {
                    index: v.0,
                    var_count: self.vars.len(),
                });
            }
            if !c.is_finite() {
                return Err(IlpError::NonFiniteValue {
                    context: "constraint coefficient",
                });
            }
            match merged.iter_mut().find(|(j, _)| *j == v.0) {
                Some((_, acc)) => *acc += c,
                None => merged.push((v.0, c)),
            }
        }
        self.rows.push(RowDef {
            terms: merged,
            sense,
            rhs,
        });
        Ok(())
    }

    /// Solves the model to integer optimality (continuous models solve in
    /// a single LP call).
    ///
    /// [`SolveOptions::tier`] picks the engine:
    /// [`SolverTier::Dense`](crate::SolverTier::Dense) (the default,
    /// bit-stable historical path),
    /// [`SolverTier::Sparse`](crate::SolverTier::Sparse) (presolve +
    /// sparse revised simplex + pseudocost branching), or
    /// [`SolverTier::Auto`](crate::SolverTier::Auto) by instance size.
    ///
    /// # Errors
    ///
    /// * [`IlpError::Unbounded`] when the relaxation is unbounded.
    /// * [`IlpError::IterationLimit`] on numerical failure inside simplex.
    ///
    /// Infeasibility and resource limits are **not** errors; they are
    /// reported through [`Solution::status`].
    pub fn solve(&self, options: &SolveOptions) -> Result<Solution, IlpError> {
        branch::solve_milp(self, options)
    }

    /// [`Model::solve`] with checkpoint/resume support: pass the
    /// [`Frontier`](crate::Frontier) of an interrupted solve to
    /// continue it, and receive `Some(frontier)` back whenever a node
    /// or time limit stopped the search with open nodes remaining.
    ///
    /// The frontier must come from a solve of the **same model**;
    /// resuming is then exact — the search explores the same nodes in
    /// the same order as an uninterrupted solve, so the final solution
    /// and deterministic stats are identical.
    ///
    /// Checkpoint/resume is a dense-path feature:
    /// [`SolveOptions::tier`] is ignored here and the search always
    /// runs on [`SolverTier::Dense`](crate::SolverTier::Dense), so
    /// crash-resume digests cannot drift with the tier default.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_resumable(
        &self,
        options: &SolveOptions,
        resume: Option<crate::Frontier>,
    ) -> Result<(Solution, Option<crate::Frontier>), IlpError> {
        branch::solve_milp_resumable(self, options, resume)
    }

    /// Solves the LP relaxation with per-variable bound overrides
    /// (used by branch-and-bound), optionally warm-starting from a
    /// sibling/parent basis. Returns `None` if infeasible.
    pub(crate) fn solve_relaxation(
        &self,
        bound_overrides: &[(usize, f64, f64)],
        deadline: Option<std::time::Instant>,
        warm: Option<&WarmBasis>,
    ) -> Result<Option<RelaxedLp>, IlpError> {
        self.solve_relaxation_impl(bound_overrides, deadline, warm, false)
    }

    /// [`Model::solve_relaxation`] on the sparse revised simplex
    /// instead of the dense tableau. Warm bases are interchangeable
    /// between the two engines (same column layout), so the sparse
    /// B&B inherits the dense warm-start machinery unchanged.
    pub(crate) fn solve_relaxation_sparse(
        &self,
        bound_overrides: &[(usize, f64, f64)],
        deadline: Option<std::time::Instant>,
        warm: Option<&WarmBasis>,
    ) -> Result<Option<RelaxedLp>, IlpError> {
        self.solve_relaxation_impl(bound_overrides, deadline, warm, true)
    }

    fn solve_relaxation_impl(
        &self,
        bound_overrides: &[(usize, f64, f64)],
        deadline: Option<std::time::Instant>,
        warm: Option<&WarmBasis>,
        sparse: bool,
    ) -> Result<Option<RelaxedLp>, IlpError> {
        // Effective bounds.
        let mut lower: Vec<f64> = self.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = self.vars.iter().map(|v| v.upper).collect();
        for &(j, lo, hi) in bound_overrides {
            lower[j] = lower[j].max(lo);
            upper[j] = upper[j].min(hi);
        }
        for j in 0..lower.len() {
            if lower[j] > upper[j] + 1e-12 {
                return Ok(None);
            }
        }

        // Shift x = x' + lower so every variable has lb 0; constants move
        // to the right-hand side.
        let sign = match self.direction() {
            ObjectiveDirection::Minimize => 1.0,
            ObjectiveDirection::Maximize => -1.0,
        };
        let mut obj_const = 0.0;
        let cost: Vec<f64> = self
            .vars
            .iter()
            .enumerate()
            .map(|(j, v)| {
                obj_const += v.obj * lower[j];
                sign * v.obj
            })
            .collect();
        let shifted_upper: Vec<f64> = (0..self.vars.len())
            .map(|j| {
                let u = upper[j] - lower[j];
                if u.is_finite() {
                    u.max(0.0)
                } else {
                    f64::INFINITY
                }
            })
            .collect();

        let rows: Vec<LpRow> = self
            .rows
            .iter()
            .map(|r| {
                let shift: f64 = r.terms.iter().map(|&(j, c)| c * lower[j]).sum();
                LpRow {
                    coeffs: r.terms.clone(),
                    sense: match r.sense {
                        Sense::Le => RowSense::Le,
                        Sense::Eq => RowSense::Eq,
                        Sense::Ge => RowSense::Ge,
                    },
                    rhs: r.rhs - shift,
                }
            })
            .collect();

        let problem = LpProblem {
            cost,
            upper: shifted_upper,
            rows,
        };
        let outcome = if sparse {
            crate::sparse::solve_sparse_with_warm_start(&problem, deadline, warm)?
        } else {
            simplex::solve_with_warm_start(&problem, deadline, warm)?
        };
        match outcome {
            LpResult::Infeasible => Ok(None),
            LpResult::Optimal(s) => {
                let values: Vec<f64> = s.values.iter().zip(&lower).map(|(x, lo)| x + lo).collect();
                // Internal objective is always "minimize sign * obj".
                let internal = s.objective + sign * obj_const;
                Ok(Some(RelaxedLp {
                    obj: internal,
                    values,
                    iterations: s.iterations,
                    pivots: s.pivots,
                    basis: s.basis,
                    warmed: s.warmed,
                }))
            }
        }
    }
}

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// A feasible solution was found but a time/node limit stopped the
    /// proof of optimality.
    Feasible,
    /// No feasible solution exists.
    Infeasible,
    /// A limit was reached before any feasible solution was found;
    /// feasibility is unknown.
    Unknown,
}

/// Result of [`Model::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub(crate) status: SolveStatus,
    pub(crate) objective: f64,
    pub(crate) values: Vec<f64>,
    pub(crate) stats: SolveStats,
}

impl Solution {
    /// Solve status. Only [`SolveStatus::Optimal`] and
    /// [`SolveStatus::Feasible`] carry meaningful values.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Objective value in the model's own direction.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// True when the status indicates a usable solution.
    pub fn is_usable(&self) -> bool {
        matches!(self.status, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOptions;

    #[test]
    fn var_handles_index_sequentially() {
        let mut m = Model::minimize();
        let a = m.add_binary_var(1.0);
        let b = m.add_binary_var(1.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn rejects_foreign_var_in_constraint() {
        let mut other = Model::minimize();
        let foreign = other.add_binary_var(1.0);
        let _ = other.add_binary_var(1.0);
        let mut m = Model::minimize();
        // `foreign` has index 0 which exists here too — build a genuinely
        // out-of-range id instead.
        let bad = VarId(10);
        assert!(m.add_constraint([(bad, 1.0)], Sense::Le, 1.0).is_err());
        let _ = foreign;
    }

    #[test]
    fn rejects_invalid_variable_definitions() {
        let mut m = Model::minimize();
        assert_eq!(
            m.add_var(VarKind::Continuous, f64::NEG_INFINITY, 1.0, 0.0),
            Err(IlpError::UnboundedBelow)
        );
        assert!(matches!(
            m.add_var(VarKind::Continuous, 2.0, 1.0, 0.0),
            Err(IlpError::EmptyDomain { .. })
        ));
        assert!(m.add_var(VarKind::Continuous, 0.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::maximize();
        let x = m.add_continuous_var(0.0, 10.0, 1.0).unwrap();
        // x + x <= 4  =>  x <= 2.
        m.add_constraint([(x, 1.0), (x, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_solves_without_branching() {
        let mut m = Model::maximize();
        let x = m.add_continuous_var(0.0, f64::INFINITY, 3.0).unwrap();
        let y = m.add_continuous_var(0.0, f64::INFINITY, 5.0).unwrap();
        m.add_constraint([(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint([(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint([(x, 3.0), (y, 2.0)], Sense::Le, 18.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective() - 36.0).abs() < 1e-6);
        assert_eq!(sol.stats().nodes_explored, 1);
    }

    #[test]
    fn lower_bound_shift_round_trips() {
        // min x with x in [3, 10] => 3.
        let mut m = Model::minimize();
        let x = m.add_continuous_var(3.0, 10.0, 1.0).unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
        assert!((sol.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds_work() {
        // max x + y, x in [-5, 5], y in [-5, 5], x + y <= 3.
        let mut m = Model::maximize();
        let x = m.add_continuous_var(-5.0, 5.0, 1.0).unwrap();
        let y = m.add_continuous_var(-5.0, 5.0, 1.0).unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 3.0)
            .unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_reports_status_not_error() {
        let mut m = Model::minimize();
        let x = m.add_binary_var(1.0);
        m.add_constraint([(x, 1.0)], Sense::Ge, 2.0).unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), SolveStatus::Infeasible);
        assert!(!sol.is_usable());
    }

    #[test]
    fn unbounded_is_an_error() {
        let mut m = Model::maximize();
        let _x = m.add_continuous_var(0.0, f64::INFINITY, 1.0).unwrap();
        assert_eq!(m.solve(&SolveOptions::default()), Err(IlpError::Unbounded));
    }
}
