//! Dense-vs-sparse differential oracle suite.
//!
//! The sparse tier (presolve + sparse revised simplex + pseudocost
//! branching, `SolveOptions::tier = SolverTier::Sparse`) claims
//! observational equivalence with the dense tableau tier. This suite
//! is the proof wall, on the `eagleeye-check` harness (replay with
//! `EAGLEEYE_CHECK_SEED`, scale with `EAGLEEYE_CHECK_CASES`; the CI
//! `ilp-differential` job runs it at 512 cases):
//!
//! * random bounded MILPs and LPs: same [`SolveStatus`], objectives
//!   within 1e-9;
//! * tie-free integer programs (continuous random costs make the
//!   optimum almost surely unique): the *identical* incumbent schedule
//!   after postsolve;
//! * presolve idempotence (`presolve ∘ presolve = presolve`) and
//!   postsolve round-trips on the same random instances;
//! * named degenerate regressions for the sparse path — empty problem,
//!   all-fixed variables, infeasible-after-tightening, unbounded ray —
//!   mirroring the dense solver's error-path coverage.

use eagleeye_check::{
    any_bool, check_cases, f64_range, prop_assert, prop_assert_eq, u64_range, usize_range, vec_of,
    Gen, PropResult,
};
use eagleeye_ilp::presolve::{presolve, PresolveResult};
use eagleeye_ilp::{
    IlpError, Model, Sense, SolveOptions, SolveStatus, SolverTier, VarId, AUTO_SPARSE_THRESHOLD,
};

/// The acceptance-critical differential oracles run at the extended
/// budget by default; CI raises it further via `EAGLEEYE_CHECK_CASES`.
const ORACLE_CASES: u32 = 128;
const CASES: u32 = 64;

fn sparse_opts() -> SolveOptions {
    SolveOptions {
        tier: SolverTier::Sparse,
        ..SolveOptions::default()
    }
}

/// A random small integer program: bounded integer variables, f64
/// objective coefficients, mixed-sense rows, either direction.
#[derive(Debug, Clone)]
struct SmallIp {
    maximize: bool,
    upper: Vec<u64>,
    obj: Vec<f64>,
    /// Rows: (coefficients, sense tag 0=Le 1=Ge 2=Eq, rhs).
    rows: Vec<(Vec<i64>, u8, i64)>,
}

fn i64_coeff() -> impl Gen<Value = i64> {
    u64_range(0, 7).map(|v| v as i64 - 3) // -3..=3
}

fn i64_rhs() -> impl Gen<Value = i64> {
    u64_range(0, 19).map(|v| v as i64 - 6) // -6..=12
}

fn small_ip_gen() -> impl Gen<Value = SmallIp> {
    (
        any_bool(),
        usize_range(1, 6),                  // n vars
        vec_of(u64_range(1, 4), 5, 6),      // upper bounds 1..=3
        vec_of(f64_range(-4.0, 4.0), 5, 6), // objective
        usize_range(0, 5),                  // row count
        vec_of(
            (vec_of(i64_coeff(), 5, 6), usize_range(0, 3), i64_rhs()),
            5,
            6,
        ),
    )
        .map(|(maximize, n, upper, obj, n_rows, raw_rows)| SmallIp {
            maximize,
            upper: upper[..n].to_vec(),
            obj: obj[..n].to_vec(),
            rows: raw_rows[..n_rows]
                .iter()
                .map(|(c, s, r)| (c[..n].to_vec(), *s as u8, *r))
                .collect(),
        })
}

fn build(ip: &SmallIp) -> (Model, Vec<VarId>) {
    let mut m = if ip.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<_> = ip
        .upper
        .iter()
        .zip(&ip.obj)
        .map(|(&ub, &c)| m.add_integer_var(0.0, ub as f64, c).unwrap())
        .collect();
    for (coeffs, sense, rhs) in &ip.rows {
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        m.add_constraint(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
            sense,
            *rhs as f64,
        )
        .unwrap();
    }
    (m, vars)
}

/// The returned point satisfies every bound, integrality requirement,
/// and constraint of the *original* model (i.e. the postsolve map
/// restored a genuinely feasible schedule, not just an objective).
fn assert_feasible(ip: &SmallIp, values: &[f64]) -> PropResult {
    prop_assert_eq!(values.len(), ip.upper.len());
    for (i, (&x, &ub)) in values.iter().zip(&ip.upper).enumerate() {
        prop_assert!((x - x.round()).abs() < 1e-6, "var {i} fractional: {x}");
        prop_assert!(
            x >= -1e-6 && x <= ub as f64 + 1e-6,
            "var {i} out of bounds: {x}"
        );
    }
    for (coeffs, sense, rhs) in &ip.rows {
        let lhs: f64 = coeffs.iter().zip(values).map(|(&c, &x)| c as f64 * x).sum();
        let ok = match sense {
            0 => lhs <= *rhs as f64 + 1e-6,
            1 => lhs >= *rhs as f64 - 1e-6,
            _ => (lhs - *rhs as f64).abs() < 1e-6,
        };
        prop_assert!(ok, "restored point violates a row: {} vs {}", lhs, rhs);
    }
    Ok(())
}

/// Sparse-vs-dense on random MILPs: same status; objectives within
/// 1e-9; the sparse incumbent, restored through postsolve, is feasible
/// in the original model.
#[test]
fn sparse_matches_dense_on_random_milps() {
    check_cases(
        ORACLE_CASES,
        "sparse_matches_dense_on_random_milps",
        small_ip_gen(),
        |ip| {
            let (m, _) = build(ip);
            let dense = m.solve(&SolveOptions::default()).unwrap();
            let sparse = m.solve(&sparse_opts()).unwrap();
            prop_assert_eq!(sparse.status(), dense.status());
            prop_assert_eq!(sparse.stats().sparse_solves, 1);
            prop_assert_eq!(dense.stats().sparse_solves, 0);
            if dense.is_usable() {
                prop_assert!(
                    (sparse.objective() - dense.objective()).abs() < 1e-9,
                    "sparse {} vs dense {}",
                    sparse.objective(),
                    dense.objective()
                );
                assert_feasible(ip, sparse.values())?;
            }
            Ok(())
        },
    );
}

/// Continuous random costs make ties measure-zero, so the optimum is
/// almost surely unique — and then the sparse tier must return the
/// *identical* schedule after postsolve, not merely an equal-value one.
#[test]
fn sparse_returns_identical_schedule_on_tie_free_milps() {
    check_cases(
        ORACLE_CASES,
        "sparse_returns_identical_schedule_on_tie_free_milps",
        small_ip_gen(),
        |ip| {
            let (m, _) = build(ip);
            let dense = m.solve(&SolveOptions::default()).unwrap();
            let sparse = m.solve(&sparse_opts()).unwrap();
            prop_assert_eq!(sparse.status(), dense.status());
            if dense.status() == SolveStatus::Optimal {
                let dense_sched: Vec<i64> =
                    dense.values().iter().map(|x| x.round() as i64).collect();
                let sparse_sched: Vec<i64> =
                    sparse.values().iter().map(|x| x.round() as i64).collect();
                prop_assert_eq!(&sparse_sched, &dense_sched);
            }
            Ok(())
        },
    );
}

/// Sparse-vs-dense on random bounded *LPs* (pure simplex, no
/// branching): same status, objectives within 1e-9.
#[test]
fn sparse_matches_dense_on_random_lps() {
    check_cases(
        ORACLE_CASES,
        "sparse_matches_dense_on_random_lps",
        (
            usize_range(1, 7),
            usize_range(0, 6),
            vec_of(f64_range(-5.0, 5.0), 36, 37),
            vec_of(f64_range(-4.0, 4.0), 6, 7),
            vec_of(f64_range(-8.0, 12.0), 6, 7),
            any_bool(),
        ),
        |(n, n_rows, coeffs, costs, rhss, maximize)| {
            let (n, n_rows) = (*n, *n_rows);
            let mut m = if *maximize {
                Model::maximize()
            } else {
                Model::minimize()
            };
            let vars: Vec<_> = (0..n)
                .map(|j| m.add_continuous_var(0.0, 10.0, costs[j]).unwrap())
                .collect();
            for i in 0..n_rows {
                let sense = match i % 3 {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                m.add_constraint(
                    vars.iter()
                        .enumerate()
                        .map(|(j, &v)| (v, coeffs[(i * 6 + j) % 36])),
                    sense,
                    rhss[i],
                )
                .unwrap();
            }
            let dense = m.solve(&SolveOptions::default()).unwrap();
            let sparse = m.solve(&sparse_opts()).unwrap();
            prop_assert_eq!(sparse.status(), dense.status());
            if dense.is_usable() {
                prop_assert!(
                    (sparse.objective() - dense.objective()).abs() < 1e-9,
                    "sparse {} vs dense {}",
                    sparse.objective(),
                    dense.objective()
                );
            }
            Ok(())
        },
    );
}

/// `presolve ∘ presolve = presolve`: re-presolving a reduced model
/// performs zero further reductions and returns the same model.
#[test]
fn presolve_is_idempotent_on_random_instances() {
    check_cases(
        CASES,
        "presolve_is_idempotent_on_random_instances",
        small_ip_gen(),
        |ip| {
            let (m, _) = build(ip);
            let first = match presolve(&m) {
                PresolveResult::Reduced(p) => p,
                PresolveResult::Infeasible => return Ok(()), // nothing to re-presolve
            };
            match presolve(&first.model) {
                PresolveResult::Infeasible => {
                    prop_assert!(false, "reduced model re-presolved to Infeasible");
                }
                PresolveResult::Reduced(second) => {
                    prop_assert!(
                        second.stats.is_noop(),
                        "second pass was not a no-op: {:?}",
                        second.stats
                    );
                    prop_assert_eq!(&second.model, &first.model);
                    prop_assert!(second.offset.abs() < 1e-12);
                }
            }
            Ok(())
        },
    );
}

/// Postsolve round-trip: `project(restore(x)) = x` for reduced-space
/// points, and the map's bookkeeping is consistent with the models.
#[test]
fn postsolve_round_trips_on_random_instances() {
    check_cases(
        CASES,
        "postsolve_round_trips_on_random_instances",
        (small_ip_gen(), vec_of(f64_range(0.0, 3.0), 6, 7)),
        |(ip, point)| {
            let (m, _) = build(ip);
            let pre = match presolve(&m) {
                PresolveResult::Reduced(p) => p,
                PresolveResult::Infeasible => return Ok(()),
            };
            prop_assert_eq!(pre.map.n_original(), m.num_vars());
            prop_assert_eq!(pre.map.n_reduced(), pre.model.num_vars());
            let reduced_point: Vec<f64> = point[..pre.map.n_reduced()].to_vec();
            let restored = pre.map.restore(&reduced_point);
            prop_assert_eq!(restored.len(), m.num_vars());
            prop_assert_eq!(pre.map.project(&restored), Some(reduced_point));
            Ok(())
        },
    );
}

/// Regression for the presolved-hint fix: a hint must survive presolve
/// *changing the variable count* (it is projected through the postsolve
/// map, not length-matched against the reduced model) and be counted in
/// `hints_accepted` on the warm re-solve.
#[test]
fn presolved_warm_resolve_accepts_the_hint() {
    let mut m = Model::maximize();
    let fixed = m.add_continuous_var(2.0, 2.0, 1.0).unwrap(); // eliminated by presolve
    let x = m.add_binary_var(3.0);
    let y = m.add_integer_var(0.0, 4.0, 2.0).unwrap();
    let z = m.add_binary_var(1.5);
    m.add_constraint([(x, 2.0), (y, 3.0), (z, 1.0)], Sense::Le, 9.0)
        .unwrap();
    m.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
        .unwrap();

    let first = m.solve(&sparse_opts()).unwrap();
    assert_eq!(first.status(), SolveStatus::Optimal);
    assert!(
        first.stats().presolve_vars_eliminated > 0,
        "fixture must actually be presolved (got {:?})",
        first.stats()
    );

    // Warm re-solve of the same model, seeded with its own optimum.
    let opts = SolveOptions {
        incumbent_hint: Some(first.values().to_vec()),
        ..sparse_opts()
    };
    let hinted = m.solve(&opts).unwrap();
    assert_eq!(hinted.status(), SolveStatus::Optimal);
    assert!(
        hinted.stats().hints_accepted > 0,
        "presolved warm re-solve must accept the hint: {:?}",
        hinted.stats()
    );
    assert!((hinted.objective() - first.objective()).abs() < 1e-9);
    assert_eq!(hinted.values(), first.values());
    // A seeded optimal incumbent can never be improved on.
    assert_eq!(hinted.stats().incumbent_updates, 0);
    let _ = fixed;
}

/// Hints are also replayable across the whole random family (mirrors
/// the dense-path property, but through presolve projection).
#[test]
fn sparse_hint_replay_matches_plain_sparse_solve() {
    check_cases(
        CASES,
        "sparse_hint_replay_matches_plain_sparse_solve",
        small_ip_gen(),
        |ip| {
            let (m, _) = build(ip);
            let plain = m.solve(&sparse_opts()).unwrap();
            let opts = SolveOptions {
                incumbent_hint: Some(plain.values().to_vec()),
                ..sparse_opts()
            };
            let hinted = m.solve(&opts).unwrap();
            prop_assert_eq!(hinted.status(), plain.status());
            if plain.is_usable() {
                prop_assert_eq!(hinted.stats().hints_accepted, 1);
                prop_assert!((hinted.objective() - plain.objective()).abs() < 1e-9);
            } else {
                prop_assert_eq!(hinted.stats().hints_accepted, 0);
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Named degenerate regressions for the sparse path, mirroring the dense
// solver's error-path coverage.
// ---------------------------------------------------------------------

/// Empty problem: no variables, no rows — trivially optimal at 0.
#[test]
fn sparse_empty_problem_is_optimal_zero() {
    let m = Model::minimize();
    let sol = m.solve(&sparse_opts()).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    assert_eq!(sol.objective(), 0.0);
    assert!(sol.values().is_empty());
    assert_eq!(sol.stats().sparse_solves, 1);
}

/// All variables fixed by their bounds: presolve eliminates the whole
/// model and the fixed point comes back through postsolve.
#[test]
fn sparse_all_fixed_variables_solve_without_search() {
    let mut m = Model::minimize();
    let a = m.add_continuous_var(1.5, 1.5, 2.0).unwrap();
    let b = m.add_integer_var(3.0, 3.0, -1.0).unwrap();
    m.add_constraint([(a, 1.0), (b, 1.0)], Sense::Le, 5.0)
        .unwrap();
    let sol = m.solve(&sparse_opts()).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    assert_eq!(sol.value(a), 1.5);
    assert_eq!(sol.value(b), 3.0);
    assert!((sol.objective() - (2.0 * 1.5 - 3.0)).abs() < 1e-12);
    assert_eq!(sol.stats().presolve_vars_eliminated, 2);
}

/// Infeasible after bound tightening: integer rounding empties a
/// domain, and conflicting singleton rows cross bounds — both are
/// reported through `SolveStatus::Infeasible`, not an error, exactly
/// like the dense tier.
#[test]
fn sparse_infeasible_after_tightening_is_a_status() {
    // Integer domain (0.2, 0.8) rounds inward to emptiness.
    let mut m = Model::minimize();
    let _x = m.add_integer_var(0.2, 0.8, 1.0).unwrap();
    let sol = m.solve(&sparse_opts()).unwrap();
    assert_eq!(sol.status(), SolveStatus::Infeasible);
    assert!(sol.objective().is_nan());

    // Conflicting singleton rows: x >= 3 and x <= 1.
    let mut m2 = Model::minimize();
    let y = m2.add_continuous_var(0.0, 10.0, 1.0).unwrap();
    m2.add_constraint([(y, 1.0)], Sense::Ge, 3.0).unwrap();
    m2.add_constraint([(y, 1.0)], Sense::Le, 1.0).unwrap();
    let sol2 = m2.solve(&sparse_opts()).unwrap();
    assert_eq!(sol2.status(), SolveStatus::Infeasible);

    // Both verdicts agree with the dense tier.
    assert_eq!(
        m2.solve(&SolveOptions::default()).unwrap().status(),
        SolveStatus::Infeasible
    );
}

/// Unbounded ray: an objective-favored infinite bound is left in the
/// model by presolve so the sparse solver surfaces the same
/// `IlpError::Unbounded` the dense solver does.
#[test]
fn sparse_unbounded_ray_is_an_error() {
    let mut m = Model::maximize();
    let _x = m.add_continuous_var(0.0, f64::INFINITY, 1.0).unwrap();
    assert_eq!(m.solve(&sparse_opts()), Err(IlpError::Unbounded));
    assert_eq!(m.solve(&SolveOptions::default()), Err(IlpError::Unbounded));
}

/// `SolverTier::Auto` picks dense below the threshold and sparse at or
/// above it — observable through `sparse_solves`.
#[test]
fn auto_tier_switches_on_instance_size() {
    let auto_opts = SolveOptions {
        tier: SolverTier::Auto,
        ..SolveOptions::default()
    };

    let mut small = Model::maximize();
    let v = small.add_binary_var(1.0);
    small.add_constraint([(v, 1.0)], Sense::Le, 1.0).unwrap();
    let sol = small.solve(&auto_opts).unwrap();
    assert_eq!(sol.stats().sparse_solves, 0, "small instance stays dense");

    let mut large = Model::maximize();
    let vars: Vec<_> = (0..AUTO_SPARSE_THRESHOLD)
        .map(|j| large.add_binary_var(1.0 + (j % 7) as f64))
        .collect();
    large
        .add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Le, 10.0)
        .unwrap();
    let sol = large.solve(&auto_opts).unwrap();
    assert_eq!(sol.stats().sparse_solves, 1, "large instance goes sparse");
    assert_eq!(sol.status(), SolveStatus::Optimal);
    // Greedy check: the 10 best coefficients are 7.0 each? Not quite —
    // objective must equal the dense answer on the same model.
    let dense = large.solve(&SolveOptions::default()).unwrap();
    assert!((sol.objective() - dense.objective()).abs() < 1e-9);
}
