//! Property-based tests hammering the simplex and branch-and-bound
//! engines with randomized instances.

use eagleeye_ilp::{Model, Sense, SolveOptions, SolveStatus};
use proptest::prelude::*;

/// Builds a feasible-by-construction LP:
/// pick a witness point `x0`, set every row's rhs to `a·x0 + slack` so the
/// witness satisfies all `≤` rows.
type FeasibleLp = (
    Model,
    Vec<eagleeye_ilp::VarId>,
    Vec<(Vec<f64>, f64)>,
    Vec<f64>,
);

fn feasible_lp(
    n: usize,
    coeffs: Vec<Vec<f64>>,
    witness: Vec<f64>,
    slacks: Vec<f64>,
    costs: Vec<f64>,
) -> FeasibleLp {
    let mut m = Model::minimize();
    let vars: Vec<_> = costs
        .iter()
        .take(n)
        .map(|&c| m.add_continuous_var(0.0, 10.0, c).unwrap())
        .collect();
    let mut rows = Vec::new();
    for (a_row, slack) in coeffs.iter().zip(&slacks) {
        let rhs: f64 = a_row.iter().zip(&witness).map(|(a, x)| a * x).sum::<f64>() + slack.abs();
        m.add_constraint(
            vars.iter().zip(a_row).map(|(&v, &a)| (v, a)),
            Sense::Le,
            rhs,
        )
        .unwrap();
        rows.push((a_row.clone(), rhs));
    }
    (m, vars, rows, witness)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every LP solution returned as Optimal satisfies all constraints and
    /// bounds, and is at least as good as the feasible witness.
    #[test]
    fn lp_solutions_are_feasible_and_dominate_witness(
        n in 1usize..6,
        rows in 1usize..6,
        coeff_seed in proptest::collection::vec(-5.0f64..5.0, 36),
        witness_seed in proptest::collection::vec(0.0f64..10.0, 6),
        slack_seed in proptest::collection::vec(0.0f64..3.0, 6),
        cost_seed in proptest::collection::vec(-4.0f64..4.0, 6),
    ) {
        let coeffs: Vec<Vec<f64>> = (0..rows)
            .map(|i| (0..n).map(|j| coeff_seed[(i * 6 + j) % 36]).collect())
            .collect();
        let witness: Vec<f64> = witness_seed.iter().take(n).copied().collect();
        let slacks: Vec<f64> = slack_seed.iter().take(rows).copied().collect();
        let (m, vars, row_data, witness) =
            feasible_lp(n, coeffs, witness, slacks, cost_seed.clone());
        let sol = m.solve(&SolveOptions::default()).unwrap();
        prop_assert_eq!(sol.status(), SolveStatus::Optimal);

        // Feasibility of the returned point.
        for (a_row, rhs) in &row_data {
            let lhs: f64 = a_row
                .iter()
                .zip(&vars)
                .map(|(a, &v)| a * sol.value(v))
                .sum();
            prop_assert!(lhs <= rhs + 1e-6, "row violated: {} > {}", lhs, rhs);
        }
        for &v in &vars {
            prop_assert!(sol.value(v) >= -1e-7);
            prop_assert!(sol.value(v) <= 10.0 + 1e-7);
        }

        // Optimality vs. the witness.
        let witness_cost: f64 = witness
            .iter()
            .zip(cost_seed.iter())
            .map(|(x, c)| x * c)
            .sum();
        prop_assert!(sol.objective() <= witness_cost + 1e-6);
    }

    /// Branch-and-bound matches exhaustive enumeration on random
    /// knapsacks.
    #[test]
    fn knapsack_matches_enumeration(
        n in 1usize..9,
        values in proptest::collection::vec(0.0f64..20.0, 9),
        weights in proptest::collection::vec(0.5f64..10.0, 9),
        cap_frac in 0.0f64..1.0,
    ) {
        let values = &values[..n];
        let weights = &weights[..n];
        let total: f64 = weights.iter().sum();
        let cap = cap_frac * total;

        let mut m = Model::maximize();
        let vars: Vec<_> = values.iter().map(|&v| m.add_binary_var(v)).collect();
        m.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)),
            Sense::Le,
            cap,
        ).unwrap();
        let sol = m.solve(&SolveOptions::default()).unwrap();
        prop_assert_eq!(sol.status(), SolveStatus::Optimal);

        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut v) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        prop_assert!((sol.objective() - best).abs() < 1e-5,
            "milp {} vs brute {}", sol.objective(), best);
    }

    /// Set-cover MILP solutions cover every element, and the optimum is
    /// never worse than the greedy heuristic.
    #[test]
    fn set_cover_covers_everything_and_beats_greedy(
        n_elems in 1usize..8,
        n_sets in 1usize..8,
        membership in proptest::collection::vec(any::<bool>(), 64),
    ) {
        // Ensure coverage is possible: set i covers element i % n_sets.
        let covers = |s: usize, e: usize| {
            membership[(s * 8 + e) % 64] || e % n_sets == s
        };
        let mut m = Model::minimize();
        let sets: Vec<_> = (0..n_sets).map(|_| m.add_binary_var(1.0)).collect();
        for e in 0..n_elems {
            m.add_constraint(
                (0..n_sets).filter(|&s| covers(s, e)).map(|s| (sets[s], 1.0)),
                Sense::Ge,
                1.0,
            ).unwrap();
        }
        let sol = m.solve(&SolveOptions::default()).unwrap();
        prop_assert_eq!(sol.status(), SolveStatus::Optimal);

        // Every element covered by a chosen set.
        for e in 0..n_elems {
            let covered = (0..n_sets)
                .any(|s| covers(s, e) && sol.value(sets[s]) > 0.5);
            prop_assert!(covered, "element {} uncovered", e);
        }

        // Greedy comparison.
        let mut uncovered: Vec<usize> = (0..n_elems).collect();
        let mut greedy_count = 0.0;
        while !uncovered.is_empty() {
            let best = (0..n_sets)
                .max_by_key(|&s| uncovered.iter().filter(|&&e| covers(s, e)).count())
                .unwrap();
            let gain = uncovered.iter().filter(|&&e| covers(best, e)).count();
            prop_assert!(gain > 0);
            uncovered.retain(|&e| !covers(best, e));
            greedy_count += 1.0;
        }
        prop_assert!(sol.objective() <= greedy_count + 1e-6);
    }

    /// Equality-constrained systems: solving Ax = b with a known solution
    /// recovers a feasible point.
    #[test]
    fn equality_systems_solve(
        x0 in proptest::collection::vec(0.0f64..5.0, 3),
        a in proptest::collection::vec(-3.0f64..3.0, 9),
    ) {
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..3)
            .map(|j| m.add_continuous_var(0.0, 100.0, (j as f64) + 1.0).unwrap())
            .collect();
        let mut rhss = Vec::new();
        for i in 0..3 {
            let rhs: f64 = (0..3).map(|j| a[i * 3 + j] * x0[j]).sum();
            m.add_constraint(
                (0..3).map(|j| (vars[j], a[i * 3 + j])),
                Sense::Eq,
                rhs,
            ).unwrap();
            rhss.push(rhs);
        }
        let sol = m.solve(&SolveOptions::default()).unwrap();
        prop_assert_eq!(sol.status(), SolveStatus::Optimal);
        for i in 0..3 {
            let lhs: f64 = (0..3).map(|j| a[i * 3 + j] * sol.value(vars[j])).sum();
            prop_assert!((lhs - rhss[i]).abs() < 1e-5,
                "eq row {}: {} != {}", i, lhs, rhss[i]);
        }
    }
}
