//! Property-based tests hammering the simplex and branch-and-bound
//! engines with randomized instances, on the `eagleeye-check` harness
//! (replay with `EAGLEEYE_CHECK_SEED`, scale with
//! `EAGLEEYE_CHECK_CASES`). Includes the MILP-vs-enumeration
//! differential oracle: on every random small integer program the
//! branch-and-bound answer (status *and* objective) must match an
//! exhaustive scan of the integer lattice.

use eagleeye_check::{
    any_bool, check_cases, f64_range, prop_assert, prop_assert_eq, usize_range, vec_of, Gen,
    PropResult,
};
use eagleeye_ilp::{Model, Sense, SolveOptions, SolveStatus};

const CASES: u32 = 64;
/// The acceptance-critical differential oracle runs at a higher budget.
const ORACLE_CASES: u32 = 128;

/// Builds a feasible-by-construction LP:
/// pick a witness point `x0`, set every row's rhs to `a·x0 + slack` so the
/// witness satisfies all `≤` rows.
type FeasibleLp = (
    Model,
    Vec<eagleeye_ilp::VarId>,
    Vec<(Vec<f64>, f64)>,
    Vec<f64>,
);

fn feasible_lp(
    n: usize,
    coeffs: Vec<Vec<f64>>,
    witness: Vec<f64>,
    slacks: Vec<f64>,
    costs: Vec<f64>,
) -> FeasibleLp {
    let mut m = Model::minimize();
    let vars: Vec<_> = costs
        .iter()
        .take(n)
        .map(|&c| m.add_continuous_var(0.0, 10.0, c).unwrap())
        .collect();
    let mut rows = Vec::new();
    for (a_row, slack) in coeffs.iter().zip(&slacks) {
        let rhs: f64 = a_row.iter().zip(&witness).map(|(a, x)| a * x).sum::<f64>() + slack.abs();
        m.add_constraint(
            vars.iter().zip(a_row).map(|(&v, &a)| (v, a)),
            Sense::Le,
            rhs,
        )
        .unwrap();
        rows.push((a_row.clone(), rhs));
    }
    (m, vars, rows, witness)
}

/// Every LP solution returned as Optimal satisfies all constraints and
/// bounds, and is at least as good as the feasible witness.
#[test]
fn lp_solutions_are_feasible_and_dominate_witness() {
    check_cases(
        CASES,
        "lp_solutions_are_feasible_and_dominate_witness",
        (
            usize_range(1, 6),
            usize_range(1, 6),
            vec_of(f64_range(-5.0, 5.0), 36, 37),
            vec_of(f64_range(0.0, 10.0), 6, 7),
            vec_of(f64_range(0.0, 3.0), 6, 7),
            vec_of(f64_range(-4.0, 4.0), 6, 7),
        ),
        |(n, rows, coeff_seed, witness_seed, slack_seed, cost_seed)| {
            let (n, rows) = (*n, *rows);
            let coeffs: Vec<Vec<f64>> = (0..rows)
                .map(|i| (0..n).map(|j| coeff_seed[(i * 6 + j) % 36]).collect())
                .collect();
            let witness: Vec<f64> = witness_seed.iter().take(n).copied().collect();
            let slacks: Vec<f64> = slack_seed.iter().take(rows).copied().collect();
            let (m, vars, row_data, witness) =
                feasible_lp(n, coeffs, witness, slacks, cost_seed.clone());
            let sol = m.solve(&SolveOptions::default()).unwrap();
            prop_assert_eq!(sol.status(), SolveStatus::Optimal);

            // Feasibility of the returned point.
            for (a_row, rhs) in &row_data {
                let lhs: f64 = a_row
                    .iter()
                    .zip(&vars)
                    .map(|(a, &v)| a * sol.value(v))
                    .sum();
                prop_assert!(lhs <= rhs + 1e-6, "row violated: {} > {}", lhs, rhs);
            }
            for &v in &vars {
                prop_assert!(sol.value(v) >= -1e-7);
                prop_assert!(sol.value(v) <= 10.0 + 1e-7);
            }

            // Optimality vs. the witness.
            let witness_cost: f64 = witness
                .iter()
                .zip(cost_seed.iter())
                .map(|(x, c)| x * c)
                .sum();
            prop_assert!(sol.objective() <= witness_cost + 1e-6);
            Ok(())
        },
    );
}

/// Branch-and-bound matches exhaustive enumeration on random
/// knapsacks.
#[test]
fn knapsack_matches_enumeration() {
    check_cases(
        CASES,
        "knapsack_matches_enumeration",
        (
            usize_range(1, 9),
            vec_of(f64_range(0.0, 20.0), 9, 10),
            vec_of(f64_range(0.5, 10.0), 9, 10),
            f64_range(0.0, 1.0),
        ),
        |(n, values, weights, cap_frac)| {
            let n = *n;
            let values = &values[..n];
            let weights = &weights[..n];
            let total: f64 = weights.iter().sum();
            let cap = cap_frac * total;

            let mut m = Model::maximize();
            let vars: Vec<_> = values.iter().map(|&v| m.add_binary_var(v)).collect();
            m.add_constraint(
                vars.iter().zip(weights).map(|(&v, &w)| (v, w)),
                Sense::Le,
                cap,
            )
            .unwrap();
            let sol = m.solve(&SolveOptions::default()).unwrap();
            prop_assert_eq!(sol.status(), SolveStatus::Optimal);

            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut w, mut v) = (0.0, 0.0);
                for i in 0..n {
                    if mask & (1 << i) != 0 {
                        w += weights[i];
                        v += values[i];
                    }
                }
                if w <= cap + 1e-9 {
                    best = best.max(v);
                }
            }
            prop_assert!(
                (sol.objective() - best).abs() < 1e-5,
                "milp {} vs brute {}",
                sol.objective(),
                best
            );
            Ok(())
        },
    );
}

/// Set-cover MILP solutions cover every element, and the optimum is
/// never worse than the greedy heuristic.
#[test]
fn set_cover_covers_everything_and_beats_greedy() {
    check_cases(
        CASES,
        "set_cover_covers_everything_and_beats_greedy",
        (
            usize_range(1, 8),
            usize_range(1, 8),
            vec_of(any_bool(), 64, 65),
        ),
        |(n_elems, n_sets, membership)| {
            let (n_elems, n_sets) = (*n_elems, *n_sets);
            // Ensure coverage is possible: set i covers element i % n_sets.
            let covers = |s: usize, e: usize| membership[(s * 8 + e) % 64] || e % n_sets == s;
            let mut m = Model::minimize();
            let sets: Vec<_> = (0..n_sets).map(|_| m.add_binary_var(1.0)).collect();
            for e in 0..n_elems {
                m.add_constraint(
                    (0..n_sets)
                        .filter(|&s| covers(s, e))
                        .map(|s| (sets[s], 1.0)),
                    Sense::Ge,
                    1.0,
                )
                .unwrap();
            }
            let sol = m.solve(&SolveOptions::default()).unwrap();
            prop_assert_eq!(sol.status(), SolveStatus::Optimal);

            // Every element covered by a chosen set.
            for e in 0..n_elems {
                let covered = (0..n_sets).any(|s| covers(s, e) && sol.value(sets[s]) > 0.5);
                prop_assert!(covered, "element {} uncovered", e);
            }

            // Greedy comparison.
            let mut uncovered: Vec<usize> = (0..n_elems).collect();
            let mut greedy_count = 0.0;
            while !uncovered.is_empty() {
                let best = (0..n_sets)
                    .max_by_key(|&s| uncovered.iter().filter(|&&e| covers(s, e)).count())
                    .unwrap();
                let gain = uncovered.iter().filter(|&&e| covers(best, e)).count();
                prop_assert!(gain > 0);
                uncovered.retain(|&e| !covers(best, e));
                greedy_count += 1.0;
            }
            prop_assert!(sol.objective() <= greedy_count + 1e-6);
            Ok(())
        },
    );
}

/// Equality-constrained systems: solving Ax = b with a known solution
/// recovers a feasible point.
#[test]
fn equality_systems_solve() {
    check_cases(
        CASES,
        "equality_systems_solve",
        (
            vec_of(f64_range(0.0, 5.0), 3, 4),
            vec_of(f64_range(-3.0, 3.0), 9, 10),
        ),
        |(x0, a)| {
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..3)
                .map(|j| m.add_continuous_var(0.0, 100.0, (j as f64) + 1.0).unwrap())
                .collect();
            let mut rhss = Vec::new();
            for i in 0..3 {
                let rhs: f64 = (0..3).map(|j| a[i * 3 + j] * x0[j]).sum();
                m.add_constraint((0..3).map(|j| (vars[j], a[i * 3 + j])), Sense::Eq, rhs)
                    .unwrap();
                rhss.push(rhs);
            }
            let sol = m.solve(&SolveOptions::default()).unwrap();
            prop_assert_eq!(sol.status(), SolveStatus::Optimal);
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a[i * 3 + j] * sol.value(vars[j])).sum();
                prop_assert!(
                    (lhs - rhss[i]).abs() < 1e-5,
                    "eq row {}: {} != {}",
                    i,
                    lhs,
                    rhss[i]
                );
            }
            Ok(())
        },
    );
}

/// A random small integer program: bounded integer variables, integer
/// coefficients, mixed-sense rows, either optimization direction.
#[derive(Debug, Clone)]
struct SmallIp {
    maximize: bool,
    /// Per-variable inclusive upper bound (lower bound is 0).
    upper: Vec<u64>,
    /// Per-variable integer objective coefficient.
    obj: Vec<i64>,
    /// Rows: (coefficients, sense tag 0=Le 1=Ge 2=Eq, rhs).
    rows: Vec<(Vec<i64>, u8, i64)>,
}

fn small_ip_gen() -> impl Gen<Value = SmallIp> {
    (
        any_bool(),
        usize_range(1, 5),             // n vars
        vec_of(u64_range_gen(), 4, 5), // upper bounds
        vec_of(i64_coeff_gen(), 4, 5), // objective
        usize_range(0, 4),             // row count
        vec_of(
            (
                vec_of(i64_coeff_gen(), 4, 5),
                usize_range(0, 3),
                i64_rhs_gen(),
            ),
            4,
            5,
        ),
    )
        .map(|(maximize, n, upper, obj, n_rows, raw_rows)| SmallIp {
            maximize,
            upper: upper[..n].to_vec(),
            obj: obj[..n].to_vec(),
            rows: raw_rows[..n_rows]
                .iter()
                .map(|(c, s, r)| (c[..n].to_vec(), *s as u8, *r))
                .collect(),
        })
}

fn u64_coarse(lo: u64, hi: u64) -> impl Gen<Value = u64> {
    eagleeye_check::u64_range(lo, hi)
}

fn u64_range_gen() -> impl Gen<Value = u64> {
    u64_coarse(1, 4) // inclusive upper bound 1..=3
}

fn i64_coeff_gen() -> impl Gen<Value = i64> {
    u64_coarse(0, 7).map(|v| v as i64 - 3) // -3..=3
}

fn i64_rhs_gen() -> impl Gen<Value = i64> {
    u64_coarse(0, 19).map(|v| v as i64 - 6) // -6..=12
}

/// Exhaustively scans the integer lattice of a [`SmallIp`]; returns the
/// optimal objective, or `None` when no lattice point is feasible.
fn enumerate_optimum(ip: &SmallIp) -> Option<i64> {
    let n = ip.upper.len();
    let mut x = vec![0u64; n];
    let mut best: Option<i64> = None;
    loop {
        let feasible = ip.rows.iter().all(|(coeffs, sense, rhs)| {
            let lhs: i64 = coeffs.iter().zip(&x).map(|(&c, &xi)| c * xi as i64).sum();
            match sense {
                0 => lhs <= *rhs,
                1 => lhs >= *rhs,
                _ => lhs == *rhs,
            }
        });
        if feasible {
            let value: i64 = ip.obj.iter().zip(&x).map(|(&c, &xi)| c * xi as i64).sum();
            best = Some(match best {
                None => value,
                Some(b) if ip.maximize => b.max(value),
                Some(b) => b.min(value),
            });
        }
        // Odometer increment over the box [0, upper].
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            if x[i] < ip.upper[i] {
                x[i] += 1;
                break;
            }
            x[i] = 0;
            i += 1;
        }
    }
}

fn check_milp_matches_enumeration(ip: &SmallIp) -> PropResult {
    let mut m = if ip.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<_> = ip
        .upper
        .iter()
        .zip(&ip.obj)
        .map(|(&ub, &c)| m.add_integer_var(0.0, ub as f64, c as f64).unwrap())
        .collect();
    for (coeffs, sense, rhs) in &ip.rows {
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        m.add_constraint(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
            sense,
            *rhs as f64,
        )
        .unwrap();
    }
    let sol = m.solve(&SolveOptions::default()).unwrap();
    match enumerate_optimum(ip) {
        None => {
            prop_assert_eq!(sol.status(), SolveStatus::Infeasible);
        }
        Some(best) => {
            prop_assert_eq!(sol.status(), SolveStatus::Optimal);
            prop_assert!(
                (sol.objective() - best as f64).abs() < 1e-6,
                "milp {} vs enumeration {}",
                sol.objective(),
                best
            );
            // The reported point must itself be integral and feasible.
            for (i, &v) in vars.iter().enumerate() {
                let x = sol.value(v);
                prop_assert!((x - x.round()).abs() < 1e-6, "var {i} fractional: {x}");
                prop_assert!(x >= -1e-6 && x <= ip.upper[i] as f64 + 1e-6);
            }
            for (coeffs, sense, rhs) in &ip.rows {
                let lhs: f64 = coeffs
                    .iter()
                    .zip(&vars)
                    .map(|(&c, &v)| c as f64 * sol.value(v))
                    .sum();
                let ok = match sense {
                    0 => lhs <= *rhs as f64 + 1e-6,
                    1 => lhs >= *rhs as f64 - 1e-6,
                    _ => (lhs - *rhs as f64).abs() < 1e-6,
                };
                prop_assert!(ok, "returned point violates a row: {lhs} vs {rhs}");
            }
        }
    }
    Ok(())
}

/// Differential oracle: branch-and-bound agrees with exhaustive
/// integer-lattice enumeration — on status (Optimal vs Infeasible) and
/// objective — for random small integer programs with mixed-sense
/// rows and both optimization directions.
#[test]
fn milp_matches_enumeration() {
    check_cases(
        ORACLE_CASES,
        "milp_matches_enumeration",
        small_ip_gen(),
        check_milp_matches_enumeration,
    );
}

/// Anti-cycling regression for the warm-started simplex: duplicating
/// every row of a random integer program several times creates massed
/// ratio-test ties (many bases describe the same degenerate vertex) —
/// classic cycling bait. Duplicated rows don't change the feasible
/// region, so the enumeration verdict is unchanged; branch-and-bound
/// (whose non-root nodes all warm-start from their parent's basis)
/// must still terminate and agree with the oracle.
#[test]
fn degenerate_duplicated_rows_match_enumeration() {
    check_cases(
        ORACLE_CASES,
        "degenerate_duplicated_rows_match_enumeration",
        (small_ip_gen(), usize_range(2, 5)),
        |(ip, copies)| {
            let mut degenerate = ip.clone();
            degenerate.rows = ip
                .rows
                .iter()
                .flat_map(|row| std::iter::repeat_n(row.clone(), *copies))
                .collect();
            check_milp_matches_enumeration(&degenerate)
        },
    );
}

/// Re-solving a model with its own solution as the incumbent hint must
/// accept the hint and reproduce the same verdict — across random
/// programs, including infeasible ones (where the solve has no values
/// worth hinting, so hinting the NaN vector must be safely discarded).
#[test]
fn incumbent_hint_replay_matches_plain_solve() {
    check_cases(
        CASES,
        "incumbent_hint_replay_matches_plain_solve",
        small_ip_gen(),
        |ip| {
            let build = || {
                let mut m = if ip.maximize {
                    Model::maximize()
                } else {
                    Model::minimize()
                };
                let vars: Vec<_> = ip
                    .upper
                    .iter()
                    .zip(&ip.obj)
                    .map(|(&ub, &c)| m.add_integer_var(0.0, ub as f64, c as f64).unwrap())
                    .collect();
                for (coeffs, sense, rhs) in &ip.rows {
                    let sense = match sense {
                        0 => Sense::Le,
                        1 => Sense::Ge,
                        _ => Sense::Eq,
                    };
                    m.add_constraint(
                        vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
                        sense,
                        *rhs as f64,
                    )
                    .unwrap();
                }
                m
            };
            let plain = build().solve(&SolveOptions::default()).unwrap();
            let opts = SolveOptions {
                incumbent_hint: Some(plain.values().to_vec()),
                ..SolveOptions::default()
            };
            let hinted = build().solve(&opts).unwrap();
            prop_assert_eq!(hinted.status(), plain.status());
            if plain.is_usable() {
                prop_assert_eq!(hinted.stats().hints_accepted, 1);
                prop_assert!(
                    (hinted.objective() - plain.objective()).abs() < 1e-6,
                    "hinted {} vs plain {}",
                    hinted.objective(),
                    plain.objective()
                );
            } else {
                prop_assert_eq!(hinted.stats().hints_accepted, 0);
            }
            Ok(())
        },
    );
}
