//! Criterion micro-benchmarks for the orbital substrate: propagation and
//! spatial-index throughput, the inner loops of coverage evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eagleeye_datasets::{LakeGenerator, LakeSizeBand};
use eagleeye_geo::GeodeticPoint;
use eagleeye_orbit::{GroundTrack, J2Propagator};

fn bench_propagation(c: &mut Criterion) {
    let track = GroundTrack::new(
        J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).expect("valid orbit"),
    );
    c.bench_function("ground_track_state", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 15.0;
            track.state_at(t).expect("propagation")
        });
    });
}

fn bench_grid_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("target_query");
    for &n in &[10_000usize, 100_000] {
        let lakes = LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
            .with_count(n)
            .generate(1);
        let center = GeodeticPoint::from_degrees(60.0, -100.0, 0.0).expect("valid point");
        group.bench_with_input(BenchmarkId::from_parameter(n), &lakes, |b, lakes| {
            b.iter(|| lakes.query_radius(&center, 80_000.0, 0.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_grid_query);
criterion_main!(benches);
