//! Criterion micro-benchmarks for the MILP substrate itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eagleeye_ilp::{Model, Sense, SolveOptions};

fn knapsack_model(n: usize) -> Model {
    let mut m = Model::maximize();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary_var(1.0 + (i % 17) as f64))
        .collect();
    m.add_constraint(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 11) as f64)),
        Sense::Le,
        n as f64 * 2.0,
    )
    .expect("valid constraint");
    m
}

fn assignment_model(n: usize) -> Model {
    let mut m = Model::minimize();
    let mut x = vec![vec![]; n];
    for (i, xi) in x.iter_mut().enumerate() {
        for j in 0..n {
            xi.push(m.add_binary_var(((i * 7 + j * 13) % 29) as f64));
        }
    }
    for i in 0..n {
        m.add_constraint((0..n).map(|j| (x[i][j], 1.0)), Sense::Eq, 1.0)
            .expect("row");
        m.add_constraint((0..n).map(|j| (x[j][i], 1.0)), Sense::Eq, 1.0)
            .expect("col");
    }
    m
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_knapsack");
    group.sample_size(10);
    for &n in &[20usize, 60, 120] {
        let m = knapsack_model(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| m.solve(&SolveOptions::default()).expect("solve"));
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_assignment");
    group.sample_size(10);
    for &n in &[5usize, 10, 15] {
        let m = assignment_model(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| m.solve(&SolveOptions::default()).expect("solve"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knapsack, bench_assignment);
criterion_main!(benches);
