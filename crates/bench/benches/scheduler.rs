//! Criterion micro-benchmarks for the follower schedulers (the timing
//! engine behind Fig. 12a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eagleeye_core::schedule::{
    FollowerState, GreedyScheduler, IlpScheduler, Scheduler, SchedulingProblem, TaskSpec,
};
use eagleeye_core::SensingSpec;

fn synthetic_frame(n: usize, followers: usize) -> SchedulingProblem {
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let r = (2654435761u64.wrapping_mul(i as u64 + 7)) % 100_000;
            let x = (r % 170) as f64 * 1_000.0 - 85_000.0;
            let y = ((r / 170) % 110) as f64 * 1_000.0;
            TaskSpec::new(x, y, 0.5 + (r % 50) as f64 / 100.0)
        })
        .collect();
    let fs: Vec<FollowerState> = (0..followers)
        .map(|k| FollowerState::at_start(-100_000.0 - 20_000.0 * k as f64))
        .collect();
    SchedulingProblem::new(SensingSpec::paper_default(), tasks, fs).expect("valid problem")
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_scheduler");
    group.sample_size(10);
    for &n in &[5usize, 10, 19, 40] {
        let p = synthetic_frame(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let s = IlpScheduler::default();
            b.iter(|| s.schedule(p).expect("solve"));
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_scheduler");
    for &n in &[5usize, 19, 40, 100] {
        let p = synthetic_frame(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| GreedyScheduler.schedule(p).expect("solve"));
        });
    }
    group.finish();
}

fn bench_multi_follower(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_scheduler_followers");
    group.sample_size(10);
    for &f in &[1usize, 2, 3] {
        let p = synthetic_frame(15, f);
        group.bench_with_input(BenchmarkId::from_parameter(f), &p, |b, p| {
            let s = IlpScheduler::default();
            b.iter(|| s.schedule(p).expect("solve"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ilp, bench_greedy, bench_multi_follower);
criterion_main!(benches);
