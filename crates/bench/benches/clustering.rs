//! Criterion micro-benchmarks for target clustering (the §4.1 claim:
//! optimal rectangle cover for hundreds of targets at interactive
//! latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eagleeye_core::clustering::{cluster, ClusteringMethod};
use eagleeye_core::pointing::GroundPoint;

fn frame_points(n: usize) -> Vec<(GroundPoint, f64)> {
    (0..n)
        .map(|i| {
            let r = (6364136223846793005u64.wrapping_mul(i as u64 + 3)) % 1_000_000;
            let x = (r % 100_000) as f64 - 50_000.0;
            let y = ((r / 100_000) % 110) as f64 * 1_000.0;
            (GroundPoint::new(x, y), 1.0)
        })
        .collect()
}

fn bench_ilp_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_ilp");
    group.sample_size(10);
    for &n in &[25usize, 100, 500] {
        let pts = frame_points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| cluster(pts, 10_000.0, 10_000.0, ClusteringMethod::Ilp).expect("solve"));
        });
    }
    group.finish();
}

fn bench_greedy_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_greedy");
    for &n in &[25usize, 100, 500] {
        let pts = frame_points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| cluster(pts, 10_000.0, 10_000.0, ClusteringMethod::Greedy).expect("solve"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ilp_cover, bench_greedy_cover);
criterion_main!(benches);
