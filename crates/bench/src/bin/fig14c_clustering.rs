//! Fig. 14c — coverage with and without target clustering across the
//! four workloads (EagleEye, 1 follower, ILP scheduling).
//!
//! Expected shape (paper): clustering adds 1.5–31.7 % coverage, with the
//! largest gains at high target density (Lake Monitoring).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, SchedulerKind,
};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let sats_groups = if cli.fast { 2 } else { 6 };
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        let mut values = Vec::new();
        for clustering in [
            ClusteringMethod::None,
            ClusteringMethod::Greedy,
            ClusteringMethod::Ilp,
        ] {
            let report = eval
                .evaluate(&ConstellationConfig::EagleEye {
                    groups: sats_groups,
                    followers_per_group: 1,
                    scheduler: SchedulerKind::Ilp,
                    clustering,
                })
                .expect("coverage evaluation");
            values.push(report.coverage_fraction());
            eprintln!(
                "done: {} {:?} -> {:.1}%",
                workload.label(),
                clustering,
                100.0 * report.coverage_fraction()
            );
        }
        let improvement = if values[0] > 0.0 {
            (values[2] - values[0]) / values[0] * 100.0
        } else {
            0.0
        };
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.1}",
            workload.label(),
            values[0],
            values[1],
            values[2],
            improvement
        ));
    }
    print_csv(
        "workload,no_clustering,greedy_clustering,ilp_clustering,ilp_gain_pct",
        rows,
    );
}
