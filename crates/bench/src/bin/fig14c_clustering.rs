//! Fig. 14c — coverage with and without target clustering across the
//! four workloads (EagleEye, 1 follower, ILP scheduling).
//!
//! Expected shape (paper): clustering adds 1.5–31.7 % coverage, with the
//! largest gains at high target density (Lake Monitoring).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, SchedulerKind,
};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let sats_groups = if cli.fast { 2 } else { 6 };
    const METHODS: [ClusteringMethod; 3] = [
        ClusteringMethod::None,
        ClusteringMethod::Greedy,
        ClusteringMethod::Ilp,
    ];
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let grid: Vec<(usize, ClusteringMethod)> = (0..workloads.len())
        .flat_map(|wi| METHODS.iter().map(move |&m| (wi, m)))
        .collect();
    let coverages = cli.par_sweep_observed(&grid, |&(wi, clustering), metrics| {
        let (workload, ref targets) = workloads[wi];
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&ConstellationConfig::EagleEye {
                groups: sats_groups,
                followers_per_group: 1,
                scheduler: SchedulerKind::Ilp,
                clustering,
            })
            .expect("coverage evaluation");
        eprintln!(
            "done: {} {:?} -> {:.1}%",
            workload.label(),
            clustering,
            100.0 * report.coverage_fraction()
        );
        report.coverage_fraction()
    });
    let mut rows = Vec::new();
    for (wi, (workload, _)) in workloads.iter().enumerate() {
        let values = &coverages[wi * METHODS.len()..(wi + 1) * METHODS.len()];
        let improvement = if values[0] > 0.0 {
            (values[2] - values[0]) / values[0] * 100.0
        } else {
            0.0
        };
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.1}",
            workload.label(),
            values[0],
            values[1],
            values[2],
            improvement
        ));
    }
    print_csv(
        "workload,no_clustering,greedy_clustering,ilp_clustering,ilp_gain_pct",
        rows,
    );
    cli.finish("fig14c_clustering");
}
