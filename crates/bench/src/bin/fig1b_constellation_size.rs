//! Fig. 1b — satellites required to reach a target coverage for each
//! workload, per configuration (Low-Res Only, High-Res Only, EagleEye).
//!
//! The paper uses 90 % coverage over 24 h. Because the default horizon
//! here is shorter, the threshold is set relative to the Low-Res ceiling
//! measured at the largest constellation (the achievable physical bound
//! within the horizon), preserving the figure's shape: EagleEye needs
//! a few times fewer satellites than High-Res Only (up to 4.3×), and a
//! High-Res Only constellation often cannot reach the bar at all.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn satellites_to_reach(
    eval: &CoverageEvaluator<'_>,
    make: impl Fn(usize) -> ConstellationConfig,
    threshold: f64,
    max_sats: usize,
) -> Option<usize> {
    let mut sats = 2;
    while sats <= max_sats {
        let cfg = make(sats);
        let r = eval.evaluate(&cfg).expect("coverage evaluation");
        eprintln!(
            "  {} -> {:.1}% (need {:.1}%)",
            cfg.label(),
            100.0 * r.coverage_fraction(),
            100.0 * threshold
        );
        if r.coverage_fraction() >= threshold {
            return Some(cfg.total_satellites());
        }
        sats = (sats as f64 * 1.6).ceil() as usize;
    }
    None
}

fn main() {
    let cli = BenchCli::parse();
    let max_sats = if cli.fast { 48 } else { 160 };
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);

        // Physical ceiling within the horizon (Low-Res at max size),
        // mirroring the paper's 90% absolute bar at 24 h.
        let ceiling = eval
            .evaluate(&ConstellationConfig::LowResOnly {
                satellites: max_sats,
            })
            .expect("coverage evaluation")
            .coverage_fraction();
        let threshold = 0.9 * ceiling;
        eprintln!("{}: ceiling {:.1}%", workload.label(), 100.0 * ceiling);

        let low = satellites_to_reach(
            &eval,
            |s| ConstellationConfig::LowResOnly { satellites: s },
            threshold,
            max_sats,
        );
        let high = satellites_to_reach(
            &eval,
            |s| ConstellationConfig::HighResOnly { satellites: s },
            threshold,
            max_sats,
        );
        let eagle = satellites_to_reach(
            &eval,
            |s| ConstellationConfig::eagleeye((s / 2).max(1), 1),
            threshold,
            max_sats,
        );
        let fmt = |o: Option<usize>| {
            o.map(|v| v.to_string())
                .unwrap_or_else(|| format!(">{max_sats}"))
        };
        rows.push(format!(
            "{},{},{},{}",
            workload.label(),
            fmt(low),
            fmt(high),
            fmt(eagle)
        ));
    }
    print_csv("workload,low_res_only,high_res_only,eagleeye", rows);
}
