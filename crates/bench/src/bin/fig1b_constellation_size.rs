//! Fig. 1b — satellites required to reach a target coverage for each
//! workload, per configuration (Low-Res Only, High-Res Only, EagleEye).
//!
//! The paper uses 90 % coverage over 24 h. Because the default horizon
//! here is shorter, the threshold is set relative to the Low-Res ceiling
//! measured at the largest constellation (the achievable physical bound
//! within the horizon), preserving the figure's shape: EagleEye needs
//! a few times fewer satellites than High-Res Only (up to 4.3×), and a
//! High-Res Only constellation often cannot reach the bar at all.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;
use eagleeye_obs::Metrics;

fn satellites_to_reach(
    eval: &CoverageEvaluator<'_>,
    make: impl Fn(usize) -> ConstellationConfig,
    threshold: f64,
    max_sats: usize,
) -> Option<usize> {
    let mut sats = 2;
    while sats <= max_sats {
        let cfg = make(sats);
        let r = eval.evaluate(&cfg).expect("coverage evaluation");
        eprintln!(
            "  {} -> {:.1}% (need {:.1}%)",
            cfg.label(),
            100.0 * r.coverage_fraction(),
            100.0 * threshold
        );
        if r.coverage_fraction() >= threshold {
            return Some(cfg.total_satellites());
        }
        sats = (sats as f64 * 1.6).ceil() as usize;
    }
    None
}

fn main() {
    let cli = BenchCli::parse();
    let max_sats = if cli.fast { 48 } else { 160 };
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let options = |metrics: &Metrics| CoverageOptions {
        duration_s: cli.duration_s,
        seed: cli.seed,
        metrics: metrics.clone(),
        ..CoverageOptions::default()
    };

    // Stage 1: each workload's physical ceiling within the horizon
    // (Low-Res at max size), mirroring the paper's 90% absolute bar at
    // 24 h — four independent evaluations.
    let ceilings = cli.par_sweep_observed(&workloads, |(workload, targets), metrics| {
        let ceiling = CoverageEvaluator::new(targets, options(metrics))
            .evaluate(&ConstellationConfig::LowResOnly {
                satellites: max_sats,
            })
            .expect("coverage evaluation")
            .coverage_fraction();
        eprintln!("{}: ceiling {:.1}%", workload.label(), 100.0 * ceiling);
        ceiling
    });

    // Stage 2: the (workload, configuration family) searches. Each
    // search is adaptive (the next size depends on the last result) so
    // it stays sequential inside its cell; the twelve cells fan out.
    let grid: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..3).map(move |family| (wi, family)))
        .collect();
    let found = cli.par_sweep_observed(&grid, |&(wi, family), metrics| {
        let (_, ref targets) = workloads[wi];
        let eval = CoverageEvaluator::new(targets, options(metrics));
        let threshold = 0.9 * ceilings[wi];
        let make: &dyn Fn(usize) -> ConstellationConfig = match family {
            0 => &|s| ConstellationConfig::LowResOnly { satellites: s },
            1 => &|s| ConstellationConfig::HighResOnly { satellites: s },
            _ => &|s| ConstellationConfig::eagleeye((s / 2).max(1), 1),
        };
        satellites_to_reach(&eval, make, threshold, max_sats)
    });

    let fmt = |o: Option<usize>| {
        o.map(|v| v.to_string())
            .unwrap_or_else(|| format!(">{max_sats}"))
    };
    let rows = workloads.iter().enumerate().map(|(wi, (workload, _))| {
        format!(
            "{},{},{},{}",
            workload.label(),
            fmt(found[wi * 3]),
            fmt(found[wi * 3 + 1]),
            fmt(found[wi * 3 + 2])
        )
    });
    print_csv("workload,low_res_only,high_res_only,eagleeye", rows);
    cli.finish("fig1b_constellation_size");
}
