//! Extension ablation (paper §4.7 "Orbit Design"): spreading groups
//! across multiple orbital planes to reduce ground-track overlap.
//!
//! Expected shape: with several groups in one plane, successive leaders
//! resample nearly the same track within minutes; spreading planes
//! samples more distinct longitudes, improving coverage for the same
//! satellite count as the constellation grows.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let mut rows = Vec::new();
    for workload in [Workload::ShipDetection, Workload::LakeMonitoring166K] {
        let targets = cli.workload(workload);
        for groups in [4usize, 8] {
            for planes in [1usize, 2, 4] {
                let opts = CoverageOptions {
                    duration_s: cli.duration_s,
                    seed: cli.seed,
                    orbital_planes: planes,
                    ..CoverageOptions::default()
                };
                let eval = CoverageEvaluator::new(&targets, opts);
                let report = eval
                    .evaluate(&ConstellationConfig::eagleeye(groups, 1))
                    .expect("coverage evaluation");
                rows.push(format!(
                    "{},{},{},{:.4}",
                    workload.label(),
                    groups * 2,
                    planes,
                    report.coverage_fraction()
                ));
                eprintln!(
                    "done: {} sats={} planes={planes} -> {:.2}%",
                    workload.label(),
                    groups * 2,
                    100.0 * report.coverage_fraction()
                );
            }
        }
    }
    print_csv("workload,satellites,planes,coverage", rows);
}
