//! Extension ablation (paper §4.7 "Orbit Design"): spreading groups
//! across multiple orbital planes to reduce ground-track overlap.
//!
//! Expected shape: with several groups in one plane, successive leaders
//! resample nearly the same track within minutes; spreading planes
//! samples more distinct longitudes, improving coverage for the same
//! satellite count as the constellation grows.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let workloads: Vec<(Workload, _)> = [Workload::ShipDetection, Workload::LakeMonitoring166K]
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for groups in [4usize, 8] {
            for planes in [1usize, 2, 4] {
                grid.push((wi, groups, planes));
            }
        }
    }
    let rows = cli.par_sweep_observed(&grid, |&(wi, groups, planes), metrics| {
        let (workload, ref targets) = workloads[wi];
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            orbital_planes: planes,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(groups, 1))
            .expect("coverage evaluation");
        eprintln!(
            "done: {} sats={} planes={planes} -> {:.2}%",
            workload.label(),
            groups * 2,
            100.0 * report.coverage_fraction()
        );
        format!(
            "{},{},{},{:.4}",
            workload.label(),
            groups * 2,
            planes,
            report.coverage_fraction()
        )
    });
    print_csv("workload,satellites,planes,coverage", rows);
    cli.finish("ext_orbit_planes");
}
