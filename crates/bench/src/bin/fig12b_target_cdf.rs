//! Fig. 12b — CDF of detected targets per low-resolution image for the
//! four workloads, and the fraction of images exceeding the 19-target
//! point where AB&B becomes infeasible (up to 32 % in the paper).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    // One evaluation per workload, all four fanned out on --threads.
    let workloads: Vec<Workload> = Workload::ALL.into_iter().collect();
    let reports = cli.par_sweep_observed(&workloads, |&workload, metrics| {
        let targets = cli.workload(workload);
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        CoverageEvaluator::new(&targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(1, 1))
            .expect("coverage evaluation")
    });
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (workload, report) in workloads.iter().zip(&reports) {
        let mut counts = report.per_frame_target_counts.clone();
        counts.sort_unstable();
        if counts.is_empty() {
            continue;
        }
        for q in [10, 25, 50, 75, 90, 95, 99] {
            let idx = ((counts.len() - 1) * q) / 100;
            rows.push(format!("{},{},{}", workload.label(), q, counts[idx]));
        }
        summary.push(format!(
            "{},{:.3},{}",
            workload.label(),
            report.frames_above(19),
            counts[counts.len() - 1]
        ));
    }
    print_csv("workload,percentile,targets_per_image", rows);
    println!();
    print_csv("workload,fraction_above_19,max_targets_per_image", summary);
    cli.finish("fig12b_target_cdf");
}
