//! Perf trajectory — end-to-end coverage-evaluation wall time vs.
//! evaluator thread count, writing `results/BENCH_eval.json`.
//!
//! Times a multi-group EagleEye evaluation (the Fig. 11 inner loop) at
//! 1/2/4/8 evaluator threads ([`CoverageOptions::threads`]), asserting
//! that every thread count produces a [`CoverageReport`] identical to
//! the sequential one (modulo wall-clock timing fields — the
//! determinism contract of DESIGN.md §8) before recording, per thread
//! count:
//!
//! * `cold_wall_s` — the first evaluation on a fresh evaluator, which
//!   pays for compiling the scenario into the access-interval program
//!   (DESIGN.md §13);
//! * `wall_s` — the best warm evaluation (reps 2+), which reuses the
//!   compiled tracks and replays memoized horizon solves; this is the
//!   steady-state number sweeps like Fig. 11/15 actually see, and the
//!   one `frames_per_s` and `speedup_vs_1` are derived from;
//! * compile-cache statistics ([`CoverageEvaluator::compile_stats`]):
//!   the run aborts unless warm reps actually reuse compiled tracks
//!   (`track_reuses > 0`) and replay solves (`memo_hits > 0`), so the
//!   caching layer can never silently regress into a no-op again.
//!
//! The JSON records `available_parallelism` alongside the measurements:
//! speedups are only meaningful up to the machine's core count (a
//! 1-core container measures ≈ 1× at every thread count — that is the
//! honest reading, not a regression). CI regenerates and uploads this
//! file on multi-core runners.
//!
//! `--smoke` runs a shortened configuration with hard gates for CI:
//! the cross-thread determinism asserts must hold, and — only when the
//! runner reports ≥ 8 cores — the 8-thread evaluation must reach ≥ 4×
//! over 1 thread (cold or warm, whichever parallelized better; warm
//! walls are a few ms in the smoke configuration and noisy).
//!
//! Usage: `cargo run -p eagleeye-bench --release --bin perf_eval -- [--fast | --smoke]`
//! (`--threads` is ignored here; the sweep IS the thread axis).

use eagleeye_bench::BenchCli;
use eagleeye_core::coverage::{
    CompileStats, ConstellationConfig, CoverageEvaluator, CoverageOptions, CoverageReport,
};
use eagleeye_datasets::Workload;
use eagleeye_orbit::{ConstellationLayout, EpochGrid};
use std::time::Instant;

const GROUPS: usize = 8;
const FOLLOWERS_PER_GROUP: usize = 1;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

struct Row {
    threads: usize,
    cold_wall: f64,
    warm_wall: f64,
    report: CoverageReport,
    stats: CompileStats,
}

fn main() {
    let cli = BenchCli::parse();
    let targets = cli.workload(Workload::ShipDetection);
    let config = ConstellationConfig::eagleeye(GROUPS, FOLLOWERS_PER_GROUP);
    let parallelism = eagleeye_exec::available_parallelism();
    eprintln!(
        "perf_eval: {} targets, {} groups, horizon {:.0}s, {} cores{}",
        targets.len(),
        GROUPS,
        cli.duration_s,
        parallelism,
        if cli.smoke { " [smoke]" } else { "" }
    );

    let run = |threads: usize| -> Row {
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            threads,
            metrics: cli.metrics.clone(),
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        let mut cold_wall = 0.0;
        let mut warm_wall = f64::INFINITY;
        let mut report = None;
        for rep in 0..REPS {
            let start = Instant::now();
            let r = eval.evaluate(&config).expect("coverage evaluation");
            let wall = start.elapsed().as_secs_f64();
            if rep == 0 {
                cold_wall = wall;
                report = Some(r);
            } else {
                warm_wall = warm_wall.min(wall);
                // Warm replay must reproduce the cold report exactly.
                let cold = report.as_ref().expect("cold report recorded");
                assert!(
                    r.same_outcome(cold),
                    "threads={threads} rep={rep}: warm replay diverged from cold run"
                );
            }
        }
        let stats = eval.compile_stats();
        // The compiled-program cache must demonstrably work — a
        // cache that never hits is the no-op this bench previously
        // failed to catch.
        assert!(
            stats.track_builds > 0,
            "threads={threads}: no compiled tracks were built"
        );
        assert!(
            stats.track_reuses > 0,
            "threads={threads}: warm reps never reused a compiled track (cache no-op?)"
        );
        assert!(
            stats.memo_hits > 0,
            "threads={threads}: warm reps never replayed a memoized horizon solve"
        );
        Row {
            threads,
            cold_wall,
            warm_wall,
            report: report.expect("at least one rep"),
            stats,
        }
    };

    let base = run(THREAD_COUNTS[0]);
    let (base_cold, base_warm) = (base.cold_wall, base.warm_wall);
    let base_report = base.report.clone();
    let mut rows = vec![base];
    for &threads in &THREAD_COUNTS[1..] {
        let row = run(threads);
        // The determinism contract: identical report at any thread
        // count (wall-clock timing fields excluded).
        assert!(
            base_report.same_outcome(&row.report),
            "threads={threads} diverged from sequential:\n  seq: {base_report:?}\n  par: {:?}",
            row.report
        );
        rows.push(row);
    }

    // Thread-count-independent measurement: batch propagation through
    // the EpochGrid's memoized sidereal trig vs. direct per-frame
    // `state_at` calls, over the same constellation and horizon. This
    // is the caching win the evaluator's frame loop now gets for free,
    // and it reproduces on a single core.
    let spec = CoverageOptions::default().spec;
    let layout = ConstellationLayout::uniform(
        GROUPS,
        FOLLOWERS_PER_GROUP,
        spec.altitude_m,
        CoverageOptions::default().inclination_rad,
    )
    .expect("constellation layout");
    let grid = EpochGrid::for_horizon(0.0, cli.duration_s, spec.frame_cadence_s);
    let tracks: Vec<_> = layout
        .satellites()
        .iter()
        .map(|s| layout.ground_track(s).expect("ground track"))
        .collect();
    let mut direct_wall = f64::INFINITY;
    let mut cached_wall = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for track in &tracks {
            for &t in grid.epochs() {
                std::hint::black_box(track.state_at(t).expect("state"));
            }
        }
        direct_wall = direct_wall.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for track in &tracks {
            std::hint::black_box(grid.propagate(track).expect("propagate"));
        }
        cached_wall = cached_wall.min(start.elapsed().as_secs_f64());
    }
    let prop_speedup = direct_wall / cached_wall;
    eprintln!(
        "propagation: direct {direct_wall:.4}s, cached {cached_wall:.4}s ({prop_speedup:.2}x)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"eval\",\n");
    json.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        Workload::ShipDetection.label()
    ));
    json.push_str(&format!("  \"targets\": {},\n", targets.len()));
    json.push_str(&format!("  \"groups\": {GROUPS},\n"));
    json.push_str(&format!(
        "  \"followers_per_group\": {FOLLOWERS_PER_GROUP},\n"
    ));
    json.push_str(&format!("  \"duration_s\": {},\n", cli.duration_s));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"scale\": {},\n", cli.scale));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    json.push_str("  \"reports_identical_across_threads\": true,\n");
    json.push_str("  \"warm_reports_identical_to_cold\": true,\n");
    json.push_str(&format!(
        "  \"propagation\": {{\"direct_wall_s\": {direct_wall:.6}, \"cached_wall_s\": {cached_wall:.6}, \
         \"speedup\": {prop_speedup:.4}, \"satellites\": {}, \"epochs\": {}}},\n",
        tracks.len(),
        grid.len()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = base_warm / row.warm_wall;
        let cold_speedup = base_cold / row.cold_wall;
        let frames_per_s = row.report.frames_processed as f64 / row.warm_wall;
        eprintln!(
            "threads={}: cold {:.3}s, warm {:.4}s, {speedup:.2}x warm vs 1 thread, \
             {frames_per_s:.0} frames/s, compile {:?}",
            row.threads, row.cold_wall, row.warm_wall, row.stats
        );
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s\": {:.6}, \"cold_wall_s\": {:.6}, \
             \"speedup_vs_1\": {speedup:.4}, \"cold_speedup_vs_1\": {cold_speedup:.4}, \
             \"frames_per_s\": {frames_per_s:.2}, \"frames_processed\": {}, \"captured\": {}, \
             \"compile\": {{\"track_builds\": {}, \"track_reuses\": {}, \"memo_hits\": {}, \
             \"memo_misses\": {}}}}}{}\n",
            row.threads,
            row.warm_wall,
            row.cold_wall,
            row.report.frames_processed,
            row.report.captured,
            row.stats.track_builds,
            row.stats.track_reuses,
            row.stats.memo_hits,
            row.stats.memo_misses,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    if cli.smoke {
        // CI gate: thread scaling must materialize on machines that
        // can express it. Warm walls in the smoke configuration are a
        // few ms and scheduler-noise-sensitive, so accept whichever of
        // cold/warm parallelized better.
        if parallelism >= 8 {
            let row8 = rows
                .iter()
                .find(|r| r.threads == 8)
                .expect("8-thread row present");
            let speedup = (base_warm / row8.warm_wall).max(base_cold / row8.cold_wall);
            assert!(
                speedup >= 4.0,
                "smoke gate: 8-thread speedup {speedup:.2}x < 4x on a {parallelism}-core runner"
            );
            eprintln!("smoke gate: 8-thread speedup {speedup:.2}x >= 4x");
        } else {
            eprintln!(
                "smoke gate: speedup check skipped ({parallelism} cores < 8); \
                 determinism and compile-cache gates enforced"
            );
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote results/BENCH_eval.json");
    cli.finish("perf_eval");
}
