//! Perf trajectory — end-to-end coverage-evaluation wall time vs.
//! evaluator thread count, writing `results/BENCH_eval.json`.
//!
//! Times a multi-group EagleEye evaluation (the Fig. 11 inner loop) at
//! 1/2/4/8 evaluator threads ([`CoverageOptions::threads`]), asserting
//! that every thread count produces a [`CoverageReport`] identical to
//! the sequential one (modulo wall-clock timing fields — the
//! determinism contract of DESIGN.md §8) before recording:
//!
//! * wall-clock seconds per evaluation (best of `--reps`, default 3);
//! * speedup vs. 1 thread;
//! * leader frames processed per second.
//!
//! The JSON records `available_parallelism` alongside the measurements:
//! speedups are only meaningful up to the machine's core count (a
//! 1-core container measures ≈ 1× at every thread count — that is the
//! honest reading, not a regression). CI regenerates and uploads this
//! file on multi-core runners.
//!
//! Usage: `cargo run -p eagleeye-bench --release --bin perf_eval -- [--fast]`
//! (`--threads` is ignored here; the sweep IS the thread axis).

use eagleeye_bench::BenchCli;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, CoverageReport,
};
use eagleeye_datasets::Workload;
use eagleeye_orbit::{ConstellationLayout, EpochGrid};
use std::time::Instant;

const GROUPS: usize = 8;
const FOLLOWERS_PER_GROUP: usize = 1;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn main() {
    let cli = BenchCli::parse();
    let targets = cli.workload(Workload::ShipDetection);
    let config = ConstellationConfig::eagleeye(GROUPS, FOLLOWERS_PER_GROUP);
    let parallelism = eagleeye_exec::available_parallelism();
    eprintln!(
        "perf_eval: {} targets, {} groups, horizon {:.0}s, {} cores",
        targets.len(),
        GROUPS,
        cli.duration_s,
        parallelism
    );

    let run = |threads: usize| -> (f64, CoverageReport) {
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            threads,
            metrics: cli.metrics.clone(),
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..REPS {
            let start = Instant::now();
            let r = eval.evaluate(&config).expect("coverage evaluation");
            best = best.min(start.elapsed().as_secs_f64());
            report = Some(r);
        }
        (best, report.expect("at least one rep"))
    };

    let (base_wall, base_report) = run(THREAD_COUNTS[0]);
    let mut rows = Vec::new();
    rows.push((THREAD_COUNTS[0], base_wall, base_report.clone()));
    for &threads in &THREAD_COUNTS[1..] {
        let (wall, report) = run(threads);
        // The determinism contract: identical report at any thread
        // count (wall-clock timing fields excluded).
        assert!(
            base_report.same_outcome(&report),
            "threads={threads} diverged from sequential:\n  seq: {base_report:?}\n  par: {report:?}"
        );
        rows.push((threads, wall, report));
    }

    // Thread-count-independent measurement: batch propagation through
    // the EpochGrid's memoized sidereal trig vs. direct per-frame
    // `state_at` calls, over the same constellation and horizon. This
    // is the caching win the evaluator's frame loop now gets for free,
    // and it reproduces on a single core.
    let spec = CoverageOptions::default().spec;
    let layout = ConstellationLayout::uniform(
        GROUPS,
        FOLLOWERS_PER_GROUP,
        spec.altitude_m,
        CoverageOptions::default().inclination_rad,
    )
    .expect("constellation layout");
    let grid = EpochGrid::for_horizon(0.0, cli.duration_s, spec.frame_cadence_s);
    let tracks: Vec<_> = layout
        .satellites()
        .iter()
        .map(|s| layout.ground_track(s).expect("ground track"))
        .collect();
    let mut direct_wall = f64::INFINITY;
    let mut cached_wall = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for track in &tracks {
            for &t in grid.epochs() {
                std::hint::black_box(track.state_at(t).expect("state"));
            }
        }
        direct_wall = direct_wall.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for track in &tracks {
            std::hint::black_box(grid.propagate(track).expect("propagate"));
        }
        cached_wall = cached_wall.min(start.elapsed().as_secs_f64());
    }
    let prop_speedup = direct_wall / cached_wall;
    eprintln!(
        "propagation: direct {direct_wall:.4}s, cached {cached_wall:.4}s ({prop_speedup:.2}x)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"eval\",\n");
    json.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        Workload::ShipDetection.label()
    ));
    json.push_str(&format!("  \"targets\": {},\n", targets.len()));
    json.push_str(&format!("  \"groups\": {GROUPS},\n"));
    json.push_str(&format!(
        "  \"followers_per_group\": {FOLLOWERS_PER_GROUP},\n"
    ));
    json.push_str(&format!("  \"duration_s\": {},\n", cli.duration_s));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"scale\": {},\n", cli.scale));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    json.push_str("  \"reports_identical_across_threads\": true,\n");
    json.push_str(&format!(
        "  \"propagation\": {{\"direct_wall_s\": {direct_wall:.6}, \"cached_wall_s\": {cached_wall:.6}, \
         \"speedup\": {prop_speedup:.4}, \"satellites\": {}, \"epochs\": {}}},\n",
        tracks.len(),
        grid.len()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, (threads, wall, report)) in rows.iter().enumerate() {
        let speedup = base_wall / wall;
        let frames_per_s = report.frames_processed as f64 / wall;
        eprintln!(
            "threads={threads}: {wall:.3}s wall, {speedup:.2}x vs 1 thread, {frames_per_s:.0} frames/s"
        );
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"speedup_vs_1\": {speedup:.4}, \
             \"frames_per_s\": {frames_per_s:.2}, \"frames_processed\": {}, \"captured\": {}}}{}\n",
            report.frames_processed,
            report.captured,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote results/BENCH_eval.json");
    cli.finish("perf_eval");
}
