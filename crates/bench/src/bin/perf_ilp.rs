//! Perf trajectory — sparse presolved ILP tier vs. the dense tier on
//! scheduling-shaped MILPs, writing `results/BENCH_ilp.json`.
//!
//! The workload mirrors the follower-scheduling flow problem of
//! DESIGN.md §15: binary assignment variables `x[f][t]` (follower `f`
//! captures task `t`), one coupling row per task (each target at most
//! once), one capacity row per follower (slew/time budget), and a few
//! pre-committed arcs pinned to 1 — the fixed variables presolve
//! eliminates on real re-solves. Columns carry two structural nonzeros
//! each, so the constraint matrix is sparse (`m ≪ n` nonzero density)
//! exactly where the dense tableau pays `O(m·n)` per pivot.
//!
//! Every instance is solved through both tiers
//! ([`SolverTier::Dense`] and [`SolverTier::Sparse`]) under the same
//! per-solve deadline; wall times take the min over `REPS` reps. The
//! sparse tier must close (prove optimal) every instance within the
//! deadline. The dense tier may miss the deadline at full scale —
//! that miss is the tier's raison d'être, and is recorded as
//! `dense_deadline_misses` — but where it closes, the run aborts
//! unless the tiers agree on status and objective to 1e-9 (the
//! equivalence contract `sparse_differential.rs` checks case-by-case,
//! here at bench scale), and where it is truncated, the sparse
//! optimum must dominate the dense incumbent. Under `--smoke` the
//! instances are sized so dense always closes, and the run
//! additionally gates:
//!
//! * `sparse_wall_s <= SPEED_GATE * dense_wall_s + NOISE_FLOOR_S` —
//!   the sparse tier must be at least dense-speed on its home turf;
//! * `sparse_nodes <= dense_nodes` — pseudocost branching must not
//!   explore more nodes than dense most-fractional branching;
//! * presolve visibly fired (`presolve_vars_eliminated > 0`) and every
//!   sparse-tier solve actually ran sparse (`sparse_solves` counted).
//!
//! Usage: `cargo run -p eagleeye-bench --release --bin perf_ilp -- [--fast | --smoke]`

use eagleeye_ilp::{Model, Sense, SolveOptions, SolveStatus, SolverTier};
use std::time::{Duration, Instant};

const REPS: usize = 3;
/// CI gate on `sparse_wall_s / dense_wall_s` under `--smoke`.
const SPEED_GATE: f64 = 1.05;
/// Absolute slack added to the smoke speed gate so timer noise on a
/// sub-millisecond solve can never flake the job.
const NOISE_FLOOR_S: f64 = 0.02;
/// Per-solve wall-clock deadline; a tier that blows it returns
/// `Feasible`/`Unknown` instead of `Optimal` and fails the status gate.
const SOLVE_DEADLINE: Duration = Duration::from_secs(30);

/// Deterministic xorshift64* stream, a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scheduling-shaped MILP: maximize assignment value subject to
/// per-task coupling and per-follower capacity, with `committed`
/// arcs pre-pinned to 1 (fixed variables for presolve to eliminate).
fn build_instance(
    followers: usize,
    tasks: usize,
    committed: usize,
    cap_factor: f64,
    seed: u64,
) -> Model {
    let mut rng = Rng(seed | 1);
    let mut m = Model::maximize();
    let mut weights: Vec<Vec<f64>> = (0..followers)
        .map(|_| (0..tasks).map(|_| 1.0 + rng.below(9) as f64).collect())
        .collect();
    // Pre-committed arcs cost one unit each so pinning them can never
    // make follower 0's capacity row infeasible by itself.
    for w in weights[0].iter_mut().take(committed) {
        *w = 1.0;
    }
    // Capacity sized so roughly `cap_factor` of the tasks fit
    // constellation-wide: tight enough that the LP relaxation goes
    // fractional and branching happens, loose enough that exact search
    // closes within the per-solve deadline.
    let mean_w = 5.0;
    let cap = (cap_factor * tasks as f64 * mean_w / followers as f64).ceil();

    let mut vars = vec![Vec::with_capacity(tasks); followers];
    for f in 0..followers {
        for t in 0..tasks {
            // Task value plus a small follower-dependent slew penalty:
            // near-continuous objective coefficients keep the optimum
            // tie-free, mirroring real geometry-derived arc values.
            let value = 1.0 + rng.below(10) as f64 - 0.001 * rng.below(997) as f64;
            let pinned = f == 0 && t < committed;
            let x = if pinned {
                m.add_integer_var(1.0, 1.0, value).expect("pinned arc")
            } else {
                m.add_binary_var(value)
            };
            vars[f].push(x);
        }
    }
    for t in 0..tasks {
        let row: Vec<_> = (0..followers).map(|f| (vars[f][t], 1.0)).collect();
        m.add_constraint(row, Sense::Le, 1.0).expect("coupling row");
    }
    for f in 0..followers {
        let row: Vec<_> = (0..tasks).map(|t| (vars[f][t], weights[f][t])).collect();
        m.add_constraint(row, Sense::Le, cap).expect("capacity row");
    }
    m
}

/// Min-over-reps wall time plus the solve outcome. Closed solves are
/// asserted rep-invariant (node-for-node determinism); a solve the
/// deadline truncated is wall-clock-shaped by design, so it is taken
/// from a single rep and its wall is the deadline it consumed.
fn time_tier(model: &Model, tier: SolverTier) -> (f64, eagleeye_ilp::Solution) {
    let options = SolveOptions {
        time_limit: Some(SOLVE_DEADLINE),
        tier,
        ..SolveOptions::default()
    };
    let mut wall = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let sol = model.solve(&options).expect("tier solve");
        wall = wall.min(start.elapsed().as_secs_f64());
        let closed = sol.status() == SolveStatus::Optimal;
        if let Some(prev) = &out {
            let p: &eagleeye_ilp::Solution = prev;
            assert_eq!(p.status(), sol.status(), "status drifted across reps");
            assert_eq!(
                p.stats().nodes_explored,
                sol.stats().nodes_explored,
                "node count drifted across reps on a closed solve"
            );
        }
        out = Some(sol);
        if !closed {
            break;
        }
    }
    (wall, out.expect("at least one rep"))
}

fn main() {
    let cli = eagleeye_bench::BenchCli::parse();
    // Instance shape: 6 followers x 64 tasks (384 binary arcs) is the
    // scale the repo's schedulers actually emit — "hundreds of
    // variables per scheduling frame" — and the largest shape exact
    // search reliably closes: at ~2x the arc count, proving optimality
    // on these capacity-coupled instances explodes past any practical
    // deadline on BOTH tiers (the near-continuous arc values leave a
    // plateau of near-optimal alternatives that branch-and-bound must
    // exhaust). Modes therefore scale instance count, not instance
    // size, so every measured solve is a closed, rep-deterministic one.
    // Smoke is one notch smaller again (336 arcs): per-instance
    // difficulty varies a lot seed-to-seed at 384 arcs (the full run
    // tolerates dense missing its per-solve deadline; smoke insists
    // both tiers close so the CI gate stays deterministic and cheap).
    let (instances, followers, tasks, committed, cap_factor) = if cli.smoke {
        (3usize, 6usize, 56usize, 4usize, 0.6)
    } else if cli.fast {
        (4, 6, 64, 4, 0.6)
    } else {
        (8, 6, 64, 4, 0.6)
    };
    eprintln!(
        "perf_ilp: {instances} instances, {followers} followers x {tasks} tasks \
         ({} binary arcs, {} rows each){}",
        followers * tasks,
        tasks + followers,
        if cli.smoke { " [smoke]" } else { "" }
    );

    let mut dense_wall = 0.0f64;
    let mut sparse_wall = 0.0f64;
    let mut dense_nodes = 0usize;
    let mut sparse_nodes = 0usize;
    let mut sparse_solves = 0usize;
    let mut presolve_vars = 0usize;
    let mut presolve_rows = 0usize;
    let mut max_gap = 0.0f64;
    let mut dense_deadline_misses = 0usize;
    for i in 0..instances {
        let model = build_instance(
            followers,
            tasks,
            committed,
            cap_factor,
            cli.seed ^ (i as u64) << 17,
        );
        let (dw, dense) = time_tier(&model, SolverTier::Dense);
        let (sw, sparse) = time_tier(&model, SolverTier::Sparse);
        // The acceptance bar: the sparse tier closes every full-scale
        // instance within the per-solve deadline. The dense tier is
        // allowed to miss it outside --smoke — that miss is the
        // documented motivation for the tier — but its truncated
        // incumbent is still a valid bound the sparse optimum must
        // dominate.
        assert_eq!(
            sparse.status(),
            SolveStatus::Optimal,
            "instance {i}: sparse tier did not close within the per-solve deadline"
        );
        let dense_closed = dense.status() == SolveStatus::Optimal;
        let gap = if dense_closed {
            let gap = (dense.objective() - sparse.objective()).abs();
            assert!(
                gap <= 1e-9 * dense.objective().abs().max(1.0),
                "instance {i}: objectives diverged by {gap:.3e} \
                 (dense {}, sparse {})",
                dense.objective(),
                sparse.objective()
            );
            gap
        } else {
            assert!(
                !cli.smoke,
                "instance {i}: dense tier missed the deadline on a smoke-sized instance"
            );
            assert_eq!(
                dense.status(),
                SolveStatus::Feasible,
                "instance {i}: deadline-truncated dense solve carried no incumbent"
            );
            dense_deadline_misses += 1;
            assert!(
                sparse.objective() >= dense.objective() - 1e-9,
                "instance {i}: sparse optimum {} below the dense truncated incumbent {}",
                sparse.objective(),
                dense.objective()
            );
            0.0
        };
        eprintln!(
            "  instance {i}: dense {dw:.4}s / {} nodes{}, sparse {sw:.4}s / {} nodes, \
             presolve -{} vars -{} rows",
            dense.stats().nodes_explored,
            if dense_closed { "" } else { " (deadline)" },
            sparse.stats().nodes_explored,
            sparse.stats().presolve_vars_eliminated,
            sparse.stats().presolve_rows_removed,
        );
        dense_wall += dw;
        sparse_wall += sw;
        dense_nodes += dense.stats().nodes_explored;
        sparse_nodes += sparse.stats().nodes_explored;
        sparse_solves += sparse.stats().sparse_solves;
        presolve_vars += sparse.stats().presolve_vars_eliminated;
        presolve_rows += sparse.stats().presolve_rows_removed;
        max_gap = max_gap.max(gap);
        assert_eq!(
            dense.stats().sparse_solves,
            0,
            "instance {i}: the dense tier routed through the sparse path"
        );
    }
    let speedup = dense_wall / sparse_wall.max(1e-12);
    eprintln!(
        "dense {dense_wall:.4}s / {dense_nodes} nodes, \
         sparse {sparse_wall:.4}s / {sparse_nodes} nodes ({speedup:.2}x)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"ilp\",\n");
    json.push_str(&format!("  \"instances\": {instances},\n"));
    json.push_str(&format!("  \"followers\": {followers},\n"));
    json.push_str(&format!("  \"tasks\": {tasks},\n"));
    json.push_str(&format!("  \"committed_arcs\": {committed},\n"));
    json.push_str(&format!("  \"variables\": {},\n", followers * tasks));
    json.push_str(&format!("  \"rows\": {},\n", followers + tasks));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!(
        "  \"solve_deadline_s\": {},\n",
        SOLVE_DEADLINE.as_secs_f64()
    ));
    json.push_str(&format!("  \"dense_wall_s\": {dense_wall:.6},\n"));
    json.push_str(&format!("  \"sparse_wall_s\": {sparse_wall:.6},\n"));
    json.push_str(&format!("  \"sparse_speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"dense_nodes\": {dense_nodes},\n"));
    json.push_str(&format!("  \"sparse_nodes\": {sparse_nodes},\n"));
    json.push_str(&format!("  \"sparse_solves\": {sparse_solves},\n"));
    json.push_str(&format!(
        "  \"presolve_vars_eliminated\": {presolve_vars},\n"
    ));
    json.push_str(&format!("  \"presolve_rows_removed\": {presolve_rows},\n"));
    json.push_str(&format!("  \"max_objective_gap\": {max_gap:.3e},\n"));
    json.push_str("  \"sparse_all_optimal_within_deadline\": true,\n");
    json.push_str(&format!(
        "  \"dense_deadline_misses\": {dense_deadline_misses},\n"
    ));
    json.push_str(&format!("  \"smoke_speed_gate\": {SPEED_GATE}\n"));
    json.push_str("}\n");

    if cli.smoke {
        assert!(
            sparse_wall <= SPEED_GATE * dense_wall + NOISE_FLOOR_S,
            "smoke gate: sparse tier took {sparse_wall:.4}s vs dense {dense_wall:.4}s \
             (gate {SPEED_GATE}x + {NOISE_FLOOR_S}s); the sparse tier has regressed"
        );
        assert!(
            sparse_nodes <= dense_nodes,
            "smoke gate: pseudocost branching explored {sparse_nodes} nodes vs \
             dense {dense_nodes}; branching quality has regressed"
        );
        assert_eq!(
            sparse_solves, instances,
            "smoke gate: a sparse-tier solve silently ran dense"
        );
        assert!(
            presolve_vars > 0,
            "smoke gate: presolve eliminated nothing on instances with pinned arcs"
        );
        eprintln!(
            "smoke gate: sparse {sparse_wall:.4}s <= {SPEED_GATE} * dense {dense_wall:.4}s \
             + {NOISE_FLOOR_S}s, nodes {sparse_nodes} <= {dense_nodes}"
        );
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_ilp.json", &json).expect("write BENCH_ilp.json");
    println!("{json}");
    eprintln!("wrote results/BENCH_ilp.json");
    cli.finish("perf_ilp");
}
