//! Fig. 11a — coverage vs. constellation size for the four workloads,
//! comparing Low-Res Only, High-Res Only, EagleEye (ILP), and EagleEye
//! (Greedy). EagleEye uses 1 follower per group and the 3 deg/s ADACS.
//!
//! Expected shape (paper): EagleEye (ILP) ≥ EagleEye (Greedy) >
//! High-Res Only at every satellite count; Low-Res Only is the physical
//! ceiling (and saturates near 80 % for airplanes because late-departing
//! flights are unreachable).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, SchedulerKind,
};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        for sats in cli.sat_counts() {
            let groups = (sats / 2).max(1);
            let configs = [
                ConstellationConfig::LowResOnly { satellites: sats },
                ConstellationConfig::HighResOnly { satellites: sats },
                ConstellationConfig::EagleEye {
                    groups,
                    followers_per_group: 1,
                    scheduler: SchedulerKind::Ilp,
                    clustering: ClusteringMethod::Ilp,
                },
                ConstellationConfig::EagleEye {
                    groups,
                    followers_per_group: 1,
                    scheduler: SchedulerKind::Greedy,
                    clustering: ClusteringMethod::Ilp,
                },
            ];
            for config in configs {
                let report = eval.evaluate(&config).expect("coverage evaluation");
                rows.push(format!(
                    "{},{},{},{:.4}",
                    workload.label(),
                    sats,
                    config.label(),
                    report.coverage_fraction()
                ));
                eprintln!(
                    "done: {} sats={} {} -> {:.1}%",
                    workload.label(),
                    sats,
                    config.label(),
                    100.0 * report.coverage_fraction()
                );
            }
        }
    }
    print_csv("workload,satellites,config,coverage", rows);
}
