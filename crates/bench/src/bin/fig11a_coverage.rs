//! Fig. 11a — coverage vs. constellation size for the four workloads,
//! comparing Low-Res Only, High-Res Only, EagleEye (ILP), and EagleEye
//! (Greedy). EagleEye uses 1 follower per group and the 3 deg/s ADACS.
//!
//! Expected shape (paper): EagleEye (ILP) ≥ EagleEye (Greedy) >
//! High-Res Only at every satellite count; Low-Res Only is the physical
//! ceiling (and saturates near 80 % for airplanes because late-departing
//! flights are unreachable).

use eagleeye_bench::{print_csv_outcome, BenchCli};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, SchedulerKind,
};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    // Generate the four workloads once, then fan the independent
    // (workload, satellites, config) evaluations out across --threads
    // workers; par_sweep returns rows in grid order, so the CSV is
    // identical to the sequential run.
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let mut grid: Vec<(usize, usize, ConstellationConfig)> = Vec::new();
    for wi in 0..workloads.len() {
        for sats in cli.sat_counts() {
            let groups = (sats / 2).max(1);
            grid.push((
                wi,
                sats,
                ConstellationConfig::LowResOnly { satellites: sats },
            ));
            grid.push((
                wi,
                sats,
                ConstellationConfig::HighResOnly { satellites: sats },
            ));
            for scheduler in [SchedulerKind::Ilp, SchedulerKind::Greedy] {
                grid.push((
                    wi,
                    sats,
                    ConstellationConfig::EagleEye {
                        groups,
                        followers_per_group: 1,
                        scheduler,
                        clustering: ClusteringMethod::Ilp,
                    },
                ));
            }
        }
    }
    // The dense 24 h sweep runs for hours; the checkpointed path makes
    // it crash-safe (`--checkpoint fig11a.ckpt`, resume with
    // `--resume`) and `--deadline` turns it into an anytime result.
    // Without those flags this is the plain in-memory sweep.
    let outcome =
        cli.par_sweep_checkpointed("fig11a_coverage", &grid, |&(wi, sats, config), metrics| {
            let (workload, ref targets) = workloads[wi];
            let opts = CoverageOptions {
                duration_s: cli.duration_s,
                seed: cli.seed,
                metrics: metrics.clone(),
                ..CoverageOptions::default()
            };
            let report = CoverageEvaluator::new(targets, opts)
                .evaluate(&config)
                .expect("coverage evaluation");
            eprintln!(
                "done: {} sats={} {} -> {:.1}%",
                workload.label(),
                sats,
                config.label(),
                100.0 * report.coverage_fraction()
            );
            format!(
                "{},{},{},{:.4}",
                workload.label(),
                sats,
                config.label(),
                report.coverage_fraction()
            )
        });
    print_csv_outcome("workload,satellites,config,coverage", &outcome);
    cli.finish("fig11a_coverage");
}
