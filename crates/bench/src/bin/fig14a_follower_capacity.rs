//! Fig. 14a — fraction of targets one follower can capture as the
//! per-image target count grows. One follower saturates around ~10
//! targets per low-resolution image (paper), which is why sparse
//! workloads prefer more groups and dense workloads need more followers.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::schedule::{FollowerState, IlpScheduler, SchedulingProblem, TaskSpec};
use eagleeye_core::SensingSpec;

fn frame_with(n: usize, seed: u64) -> SchedulingProblem {
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let r = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695))
                % 100_000;
            let x = (r % 170) as f64 * 1_000.0 - 85_000.0;
            let y = ((r / 170) % 110) as f64 * 1_000.0;
            TaskSpec::new(x, y, 1.0)
        })
        .collect();
    SchedulingProblem::new(
        SensingSpec::paper_default(),
        tasks,
        vec![FollowerState::at_start(-100_000.0)],
    )
    .expect("valid problem")
}

fn main() {
    let cli = BenchCli::parse();
    let counts: Vec<usize> = if cli.fast {
        vec![2, 5, 10, 25, 50, 100]
    } else {
        (1..=20).chain([25, 30, 40, 50, 75, 100]).collect()
    };
    let reps = if cli.fast { 3 } else { 8 };

    // Each (count, rep) cell is one independent scheduler run; fan them
    // all out and reduce per-count afterwards.
    let grid: Vec<(usize, usize)> = counts
        .iter()
        .flat_map(|&n| (0..reps).map(move |rep| (n, rep)))
        .collect();
    let fracs = cli.par_sweep_observed(&grid, |&(n, rep), metrics| {
        let p = frame_with(n, cli.seed + rep as u64 * 977);
        let (s, stats) = IlpScheduler::default()
            .schedule_with_stats(&p)
            .expect("scheduler run");
        if metrics.is_enabled() {
            metrics.add("ilp/subproblems", stats.subproblems as u64);
            metrics.add("ilp/nodes_explored", stats.nodes_explored as u64);
            metrics.add("ilp/lp_iterations", stats.lp_iterations as u64);
            metrics.add("ilp/deadline_hits", stats.deadline_hits as u64);
        }
        s.captured_count() as f64 / n as f64
    });
    let mut rows = Vec::new();
    for (i, &n) in counts.iter().enumerate() {
        let frac: f64 = fracs[i * reps..(i + 1) * reps].iter().sum::<f64>() / reps as f64;
        rows.push(format!("{n},{:.4}", frac));
        eprintln!("n={n}: covered fraction {:.2}", frac);
    }
    print_csv("targets_per_image,fraction_covered_by_one_follower", rows);
    cli.finish("fig14a_follower_capacity");
}
