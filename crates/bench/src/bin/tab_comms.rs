//! §5.3 communications table: crosslink and downlink budgets, plus
//! geometric ground-station contact time for the paper's orbit.

use eagleeye_bench::print_csv;
use eagleeye_geo::GeodeticPoint;
use eagleeye_obs::Metrics;
use eagleeye_orbit::{access, GroundTrack, J2Propagator};
use eagleeye_sim::{CrosslinkBudget, DownlinkBudget, RadioModel};

fn main() {
    let metrics = Metrics::from_env();
    // Crosslink: leader -> follower schedules.
    let xl = CrosslinkBudget::paper_default();
    print_csv(
        "crosslink_bytes_per_orbit,airtime_s,negligible",
        [format!(
            "{:.0},{:.2},{}",
            xl.bytes_per_orbit,
            xl.airtime_s,
            xl.is_negligible()
        )],
    );
    println!();

    // Downlink: follower imagery vs a 6-minute contact.
    let radio = RadioModel::s_band();
    let mut rows = Vec::new();
    for captures in [50.0, 100.0, 400.0] {
        let b = DownlinkBudget::compute(&radio, 6.0 * 60.0, captures, 3_333.0, 0.1);
        rows.push(format!(
            "{captures},{:.1},{:.1},{:.2}",
            b.produced_bytes / 1e6,
            b.capacity_bytes / 1e6,
            b.deliverable_fraction()
        ));
    }
    print_csv(
        "captures_per_orbit,produced_mb,capacity_mb,deliverable_fraction",
        rows,
    );
    println!();

    // Geometric contact time with a polar ground station over 8 orbits.
    let track = GroundTrack::new(
        J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).expect("valid orbit"),
    );
    let station = access::GroundStation::new(
        GeodeticPoint::from_degrees(78.2, 15.4, 0.0).expect("valid point"),
        5.0_f64.to_radians(),
    )
    .expect("valid station");
    let windows = access::contact_windows(&track, &station, 0.0, 8.0 * 5_640.0, 15.0)
        .expect("contact computation");
    let total_s: f64 = windows.iter().map(|w| w.duration_s()).sum();
    metrics.add("orbit/contact_windows", windows.len() as u64);
    print_csv(
        "contacts_in_8_orbits,total_contact_min,mean_contact_min",
        [format!(
            "{},{:.1},{:.1}",
            windows.len(),
            total_s / 60.0,
            total_s / 60.0 / windows.len().max(1) as f64
        )],
    );
    if let Err(e) = eagleeye_obs::export::write_run("tab_comms", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
}
