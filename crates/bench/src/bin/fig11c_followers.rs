//! Fig. 11c — coverage vs. constellation size with 1–6 followers per
//! group (EagleEye, ILP scheduling).
//!
//! Expected shape (paper): for sparse workloads (ships, planes) one
//! follower per group is most efficient — extra satellites are better
//! spent on more groups; the dense Lake Monitoring (1.4M) workload needs
//! more followers per group.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let follower_counts: Vec<usize> = if cli.fast {
        vec![1, 3, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for sats in cli.sat_counts() {
            for &followers in &follower_counts {
                let group_size = followers + 1;
                if sats / group_size > 0 {
                    grid.push((wi, sats, followers));
                }
            }
        }
    }
    let rows = cli.par_sweep_observed(&grid, |&(wi, sats, followers), metrics| {
        let (workload, ref targets) = workloads[wi];
        let group_size = followers + 1;
        let groups = sats / group_size;
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(groups, followers))
            .expect("coverage evaluation");
        eprintln!(
            "done: {} sats={} followers={} -> {:.1}%",
            workload.label(),
            groups * group_size,
            followers,
            100.0 * report.coverage_fraction()
        );
        format!(
            "{},{},{},{:.4}",
            workload.label(),
            groups * group_size,
            followers,
            report.coverage_fraction()
        )
    });
    print_csv("workload,satellites,followers_per_group,coverage", rows);
    cli.finish("fig11c_followers");
}
