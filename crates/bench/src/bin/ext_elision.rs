//! Extension ablation (Kodan-style tile elision, cf. paper §2.1):
//! per-orbit leader energy across tile factors and kept-tile fractions.
//!
//! Expected shape: elision scales compute energy linearly; ~40 % kept
//! tiles brings the otherwise-infeasible 4× tiling back under the
//! harvestable-energy line (Fig. 16's dashed ceiling).

use eagleeye_bench::print_csv;
use eagleeye_obs::Metrics;
use eagleeye_sim::{simulate_orbit, ActivityProfile, PowerProfile};

fn main() {
    let metrics = Metrics::from_env();
    let power = PowerProfile::cubesat_3u();
    let mut rows = Vec::new();
    for tile_factor in [1.0, 2.0, 4.0] {
        for keep in [1.0, 0.7, 0.4, 0.2] {
            let activity = ActivityProfile::leader_with_elision(tile_factor, keep);
            let r = simulate_orbit(&power, &activity, 0.62, 5_640.0);
            metrics.incr("sim/orbit_simulations");
            if !r.is_energy_feasible() {
                metrics.incr("sim/energy_infeasible_configs");
            }
            rows.push(format!(
                "{tile_factor},{keep},{:.0},{:.3},{}",
                r.subsystems.compute_j,
                r.normalized_consumption(),
                if r.is_energy_feasible() {
                    "feasible"
                } else {
                    "INFEASIBLE"
                }
            ));
        }
    }
    print_csv(
        "tile_factor,keep_fraction,compute_j,normalized,status",
        rows,
    );
    if let Err(e) = eagleeye_obs::export::write_run("ext_elision", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
}
