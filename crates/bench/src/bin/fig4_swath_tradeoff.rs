//! Fig. 4 — the swath/GSD trade-off. Left: nine real cubesat cameras
//! (GSD vs. swath scatter). Right: fraction of targets captured in a
//! fixed horizon by homogeneous constellations at different swath
//! widths — wide swath covers everything at unusable resolution, narrow
//! swath leaves most targets unseen.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_core::REAL_CUBESAT_CAMERAS;
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();

    // Left panel: the camera table.
    print_csv(
        "camera,swath_km,gsd_m",
        REAL_CUBESAT_CAMERAS
            .iter()
            .map(|(name, swath, gsd)| format!("{name},{swath},{gsd}")),
    );
    println!();

    // Right panel: coverage vs. satellites for the two operating points,
    // on the ship workload (the paper's motivating example).
    let targets = cli.workload(Workload::ShipDetection);
    let sat_counts = cli.sat_counts();
    let rows = cli.par_sweep_observed(&sat_counts, |&sats, metrics| {
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        let low = eval
            .evaluate(&ConstellationConfig::LowResOnly { satellites: sats })
            .expect("coverage evaluation");
        let high = eval
            .evaluate(&ConstellationConfig::HighResOnly { satellites: sats })
            .expect("coverage evaluation");
        format!(
            "{sats},{:.4},{:.4}",
            low.coverage_fraction(),
            high.coverage_fraction()
        )
    });
    print_csv(
        "satellites,only_low_res_coverage,only_high_res_coverage",
        rows,
    );
    cli.finish("fig4_swath_tradeoff");
}
