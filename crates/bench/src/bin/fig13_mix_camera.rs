//! Fig. 13 — leader-follower vs. mix-camera at equal satellite count,
//! with mix-camera compute times from the five YOLOv8 variants
//! (1.4 / 2.6 / 5.5 / 8.6 / 11.8 s).
//!
//! Expected shape (paper): mix-camera coverage degrades as compute time
//! grows and collapses to ~0 at Yolo_x (11.8 s leaves no slack in the
//! 15 s frame for pointing and capture); leader-follower is unaffected
//! by compute time because followers trail the leader.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;
use eagleeye_detect::YoloVariant;

fn main() {
    let cli = BenchCli::parse();
    let sats = 4; // Fig. 5's running example size
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    // One grid cell per (workload, row): the leader-follower baseline
    // or one YOLO variant (whose equal-sats and equal-groups runs stay
    // together so each row is produced by a single worker).
    let mut grid: Vec<(usize, Option<YoloVariant>)> = Vec::new();
    for wi in 0..workloads.len() {
        grid.push((wi, None));
        for variant in YoloVariant::ALL {
            grid.push((wi, Some(variant)));
        }
    }
    let rows = cli.par_sweep_observed(&grid, |&(wi, variant), metrics| {
        let (workload, ref targets) = workloads[wi];
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(targets, opts);
        match variant {
            None => {
                let lf = eval
                    .evaluate(&ConstellationConfig::eagleeye(sats / 2, 1))
                    .expect("coverage evaluation");
                format!(
                    "{},leader-follower,0,{:.4},{:.4}",
                    workload.label(),
                    lf.coverage_fraction(),
                    lf.coverage_fraction()
                )
            }
            Some(variant) => {
                let compute = variant.paper_frame_time_s();
                // Equal satellite count: 4 mix satellites fly 4 tracks (twice
                // the leader-follower ground coverage) but each loses capture
                // time to compute.
                let mix_sats = eval
                    .evaluate(&ConstellationConfig::MixCamera {
                        satellites: sats,
                        compute_time_s: compute,
                    })
                    .expect("coverage evaluation");
                // Equal group count: isolates the compute-delay mechanism of
                // the paper's Fig. 9 (one mix satellite per leader-follower
                // group).
                let mix_groups = eval
                    .evaluate(&ConstellationConfig::MixCamera {
                        satellites: sats / 2,
                        compute_time_s: compute,
                    })
                    .expect("coverage evaluation");
                eprintln!(
                    "done: {} {variant} ({}s) -> {:.1}% / {:.1}%",
                    workload.label(),
                    compute,
                    100.0 * mix_sats.coverage_fraction(),
                    100.0 * mix_groups.coverage_fraction()
                );
                format!(
                    "{},mix-camera({variant}),{compute},{:.4},{:.4}",
                    workload.label(),
                    mix_sats.coverage_fraction(),
                    mix_groups.coverage_fraction()
                )
            }
        }
    });
    print_csv(
        "workload,config,compute_time_s,coverage_equal_sats,coverage_equal_groups",
        rows,
    );
    cli.finish("fig13_mix_camera");
}
