//! Perf trajectory — incremental what-if re-evaluation vs. cold
//! re-evaluation of the same child scenario, writing
//! `results/BENCH_delta.json`.
//!
//! The what-if loop of DESIGN.md §14: an analyst evaluates a parent
//! EagleEye scenario, then asks "what if one satellite group drops
//! out?" ([`ScenarioDelta::RemoveGroup`]). The incremental path
//! ([`CoverageEvaluator::what_if`]) forks the parent evaluator, adopts
//! every surviving compiled track from the cross-scenario pool, and
//! replays memoized horizon solves for every clean frame — so the
//! delta pays only for the frames the edit actually dirtied. The cold
//! path compiles and solves the identical child scenario from scratch.
//!
//! Each rep rebuilds the parent from nothing, so `delta_wall_s` is the
//! honest *first* what-if on a freshly evaluated parent (not a repeat
//! of an already-cached child). The run aborts unless:
//!
//! * the delta report is [`same_outcome`]-identical to the cold child
//!   report (the differential contract `delta_differential.rs` checks
//!   case-by-case);
//! * all `GROUPS - 1` surviving leader tracks were adopted from the
//!   pool (`track_shares`), none recompiled (`track_builds == 0`), and
//!   memoized horizon solves actually replayed (`memo_hits > 0`) — a
//!   delta path that silently recomputes everything would still pass
//!   the differential suite, but not these gates;
//! * under `--smoke`, the headline ratio holds:
//!   `delta_wall_s / cold_child_wall_s < 0.10`.
//!
//! Counters flow to `results/METRICS_perf_delta.json` when
//! `EAGLEEYE_TRACE=1` is set (see `eagleeye-obs`).
//!
//! Usage: `cargo run -p eagleeye-bench --release --bin perf_delta -- [--fast | --smoke]`
//!
//! [`same_outcome`]: eagleeye_core::coverage::CoverageReport::same_outcome
//! [`ScenarioDelta::RemoveGroup`]: eagleeye_core::coverage::ScenarioDelta::RemoveGroup

use eagleeye_bench::BenchCli;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, ScenarioDelta,
};
use eagleeye_datasets::Workload;
use std::time::Instant;

const GROUPS: usize = 12;
const FOLLOWERS_PER_GROUP: usize = 2;
const REPS: usize = 3;
/// CI gate on `delta_wall_s / cold_child_wall_s` under `--smoke`.
const RATIO_GATE: f64 = 0.10;

fn main() {
    let cli = BenchCli::parse();
    let targets = cli.workload(Workload::ShipDetection);
    let config = ConstellationConfig::eagleeye(GROUPS, FOLLOWERS_PER_GROUP);
    let delta = ScenarioDelta::RemoveGroup;
    eprintln!(
        "perf_delta: {} targets, {} groups x {} followers, horizon {:.0}s, delta {:?}{}",
        targets.len(),
        GROUPS,
        FOLLOWERS_PER_GROUP,
        cli.duration_s,
        delta,
        if cli.smoke { " [smoke]" } else { "" }
    );

    let mut parent_wall = f64::INFINITY;
    let mut delta_wall = f64::INFINITY;
    let mut cold_wall = f64::INFINITY;
    let mut first = None;
    for rep in 0..REPS {
        // A fresh parent per rep keeps the what-if measurement honest:
        // the child scenario is never already cached, so the timed call
        // is the first delta after a parent evaluation, every time.
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            // Pin the layout with the parent's group count so the
            // child's survivors keep their orbital slots (maximal
            // track sharing; DESIGN.md §14).
            layout_slots: Some(GROUPS),
            metrics: cli.metrics.clone(),
            ..CoverageOptions::default()
        };
        let parent = CoverageEvaluator::new(&targets, opts);
        let start = Instant::now();
        parent.evaluate(&config).expect("parent evaluation");
        parent_wall = parent_wall.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let (delta_report, stats) = parent.what_if(&config, &delta).expect("what-if evaluation");
        delta_wall = delta_wall.min(start.elapsed().as_secs_f64());

        let (child_cfg, child_opts) = delta
            .apply(&config, parent.options())
            .expect("delta applies");
        let cold = CoverageEvaluator::new(&targets, child_opts);
        let start = Instant::now();
        let cold_report = cold.evaluate(&child_cfg).expect("cold child evaluation");
        cold_wall = cold_wall.min(start.elapsed().as_secs_f64());

        // The differential contract, end to end at bench scale.
        assert!(
            delta_report.same_outcome(&cold_report),
            "rep={rep}: what-if report diverged from cold child:\
             \ndelta: {delta_report:?}\ncold: {cold_report:?}"
        );
        // The reuse gates: a delta that recompiles or re-solves
        // everything is a correct but worthless incremental path.
        assert_eq!(
            stats.track_shares,
            (GROUPS - 1) as u64,
            "rep={rep}: every surviving leader track must be adopted from the pool: {stats:?}"
        );
        assert_eq!(
            stats.track_builds, 0,
            "rep={rep}: the delta compiled a track from scratch: {stats:?}"
        );
        assert!(
            stats.memo_hits > 0,
            "rep={rep}: the delta never replayed a memoized horizon solve: {stats:?}"
        );
        match &first {
            None => first = Some((delta_report, cold_report, stats)),
            Some((first_delta, _, first_stats)) => {
                assert!(
                    delta_report.same_outcome(first_delta),
                    "rep={rep}: what-if outcome drifted across reps"
                );
                assert_eq!(
                    stats, *first_stats,
                    "rep={rep}: reuse counters drifted across reps"
                );
            }
        }
    }
    let (delta_report, _cold_report, stats) = first.expect("at least one rep");
    let ratio = delta_wall / cold_wall;
    eprintln!(
        "parent cold {parent_wall:.4}s, child cold {cold_wall:.4}s, delta {delta_wall:.4}s \
         ({:.1}% of cold), reuse {stats:?}",
        ratio * 100.0
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"delta\",\n");
    json.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        Workload::ShipDetection.label()
    ));
    json.push_str(&format!("  \"targets\": {},\n", targets.len()));
    json.push_str(&format!("  \"groups\": {GROUPS},\n"));
    json.push_str(&format!(
        "  \"followers_per_group\": {FOLLOWERS_PER_GROUP},\n"
    ));
    json.push_str("  \"delta\": \"RemoveGroup\",\n");
    json.push_str(&format!("  \"duration_s\": {},\n", cli.duration_s));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"scale\": {},\n", cli.scale));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"parent_cold_wall_s\": {parent_wall:.6},\n"));
    json.push_str(&format!("  \"cold_child_wall_s\": {cold_wall:.6},\n"));
    json.push_str(&format!("  \"delta_wall_s\": {delta_wall:.6},\n"));
    json.push_str(&format!("  \"delta_over_cold_ratio\": {ratio:.4},\n"));
    json.push_str(&format!("  \"smoke_ratio_gate\": {RATIO_GATE},\n"));
    json.push_str("  \"delta_report_identical_to_cold\": true,\n");
    json.push_str(&format!(
        "  \"frames_processed\": {},\n  \"captured\": {},\n",
        delta_report.frames_processed, delta_report.captured
    ));
    json.push_str(&format!(
        "  \"delta_stats\": {{\"track_builds\": {}, \"track_shares\": {}, \"track_reuses\": {}, \
         \"memo_hits\": {}, \"memo_misses\": {}}}\n",
        stats.track_builds,
        stats.track_shares,
        stats.track_reuses,
        stats.memo_hits,
        stats.memo_misses
    ));
    json.push_str("}\n");

    if cli.smoke {
        assert!(
            ratio < RATIO_GATE,
            "smoke gate: one-group delta took {:.1}% of a cold child evaluation \
             (gate {:.0}%); the incremental path has regressed",
            ratio * 100.0,
            RATIO_GATE * 100.0
        );
        eprintln!("smoke gate: delta/cold ratio {:.4} < {RATIO_GATE}", ratio);
    }

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_delta.json", &json).expect("write BENCH_delta.json");
    println!("{json}");
    eprintln!("wrote results/BENCH_delta.json");
    cli.finish("perf_delta");
}
