//! Fig. 14b — frame processing time vs. tile size, for unscaled tiles
//! and 4× scaled tiling, against the 15 s frame-capture deadline.
//!
//! Expected shape (paper): processing time falls as tiles grow; a wide
//! range of tile sizes meets the deadline.

use eagleeye_bench::print_csv;
use eagleeye_detect::{TilingConfig, YoloVariant};
use eagleeye_obs::Metrics;

fn main() {
    let metrics = Metrics::from_env();
    let frame_px = 3_333; // 100 km at 30 m/px
    let deadline_s = 15.0;
    let mut rows = Vec::new();
    for tile_px in (200..=1000).step_by(100) {
        let unscaled = TilingConfig::new(frame_px, tile_px, 1.0);
        let scaled4 = TilingConfig::new(frame_px, tile_px, 4.0);
        let t1 = YoloVariant::N.frame_processing_time_s(&unscaled);
        let t4 = YoloVariant::N.frame_processing_time_s(&scaled4);
        metrics.incr("core/tiling_configs_evaluated");
        if t1 > deadline_s {
            metrics.incr("core/tiling_deadline_misses");
        }
        rows.push(format!(
            "{tile_px},{:.3},{:.3},{}",
            t1,
            t4,
            if t1 <= deadline_s { "meets" } else { "misses" }
        ));
    }
    print_csv(
        "tile_px,time_unscaled_s,time_4x_scaled_s,deadline_15s",
        rows,
    );
    if let Err(e) = eagleeye_obs::export::write_run("fig14b_tiling", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
}
