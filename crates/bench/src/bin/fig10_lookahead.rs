//! Fig. 10 — maximum leader-follower lookahead distance vs. target
//! speed (500 km altitude, V_sat = 7.5 km/s, 10 km follower swath,
//! γ = 0.1), with the paper's ship (14 m/s) and plane (250 m/s) anchors.

use eagleeye_bench::print_csv;
use eagleeye_core::lookahead::max_lookahead_m;
use eagleeye_obs::Metrics;

fn main() {
    let metrics = Metrics::from_env();
    let swath_m = 10_000.0;
    let sat_speed = 7_500.0;
    let gamma = 0.1;
    let mut rows = Vec::new();
    for speed in (10..=300).step_by(10) {
        let d = max_lookahead_m(speed as f64, swath_m, sat_speed, gamma).expect("valid parameters");
        metrics.incr("core/lookahead_evaluations");
        rows.push(format!("{speed},{:.1}", d / 1000.0));
    }
    print_csv("target_speed_m_s,max_lookahead_km", rows);

    println!();
    let ship = max_lookahead_m(14.0, swath_m, sat_speed, gamma).expect("valid parameters");
    let plane = max_lookahead_m(250.0, swath_m, sat_speed, gamma).expect("valid parameters");
    print_csv(
        "anchor,speed_m_s,max_lookahead_km",
        [
            format!("ship,14,{:.1}", ship / 1000.0),
            format!("plane,250,{:.1}", plane / 1000.0),
        ],
    );
    if let Err(e) = eagleeye_obs::export::write_run("fig10_lookahead", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
}
