//! Extension ablation (paper §4.7 "Recapture"): unique-target coverage
//! with and without recapture deprioritization.
//!
//! When the constellation re-identifies already-captured targets, the
//! leader can scale their priority down and steer followers toward new
//! ones. Expected shape: unique coverage never decreases, with the gain
//! concentrated where revisits are common (dense workloads, longer runs).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        for (label, penalty) in [
            ("paper (no re-id)", None),
            ("deprioritize 0.1", Some(0.1)),
            ("ignore captured", Some(0.0)),
        ] {
            let opts = CoverageOptions {
                duration_s: cli.duration_s,
                seed: cli.seed,
                recapture_penalty: penalty,
                ..CoverageOptions::default()
            };
            let eval = CoverageEvaluator::new(&targets, opts);
            let report = eval
                .evaluate(&ConstellationConfig::eagleeye(2, 1))
                .expect("coverage evaluation");
            rows.push(format!(
                "{},{},{:.4},{}",
                workload.label(),
                label,
                report.coverage_fraction(),
                report.captures_commanded
            ));
            eprintln!(
                "done: {} {} -> {:.2}%",
                workload.label(),
                label,
                100.0 * report.coverage_fraction()
            );
        }
    }
    print_csv("workload,policy,unique_coverage,captures_commanded", rows);
}
