//! Extension ablation (paper §4.7 "Recapture"): unique-target coverage
//! with and without recapture deprioritization.
//!
//! When the constellation re-identifies already-captured targets, the
//! leader can scale their priority down and steer followers toward new
//! ones. Expected shape: unique coverage never decreases, with the gain
//! concentrated where revisits are common (dense workloads, longer runs).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    const POLICIES: [(&str, Option<f64>); 3] = [
        ("paper (no re-id)", None),
        ("deprioritize 0.1", Some(0.1)),
        ("ignore captured", Some(0.0)),
    ];
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    let grid: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..POLICIES.len()).map(move |pi| (wi, pi)))
        .collect();
    let rows = cli.par_sweep_observed(&grid, |&(wi, pi), metrics| {
        let (workload, ref targets) = workloads[wi];
        let (label, penalty) = POLICIES[pi];
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            recapture_penalty: penalty,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(2, 1))
            .expect("coverage evaluation");
        eprintln!(
            "done: {} {} -> {:.2}%",
            workload.label(),
            label,
            100.0 * report.coverage_fraction()
        );
        format!(
            "{},{},{:.4},{}",
            workload.label(),
            label,
            report.coverage_fraction(),
            report.captures_commanded
        )
    });
    print_csv("workload,policy,unique_coverage,captures_commanded", rows);
    cli.finish("ext_recapture");
}
