//! Fig. 16 — per-subsystem energy per orbit, normalized to the
//! harvestable energy, for the constellation roles at tile factors 1×
//! and 2× (plus the infeasible 4× point).
//!
//! Expected shape (paper): compute dominates; harvestable energy
//! supports ~2× tiling; 4× breaks the leader (and the homogeneous
//! baselines) while followers are never the bottleneck; the leader uses
//! slightly less than the baselines because it crosslinks schedules
//! instead of downlinking imagery.

use eagleeye_bench::print_csv;
use eagleeye_obs::Metrics;
use eagleeye_sim::{simulate_orbit, ActivityProfile, PowerProfile};

fn main() {
    let metrics = Metrics::from_env();
    let power = PowerProfile::cubesat_3u();
    let period_s = 5_640.0;
    let sunlit = 0.62;

    let mut rows = Vec::new();
    for tile_factor in [1.0, 2.0, 4.0] {
        let roles: Vec<(&str, ActivityProfile)> = vec![
            (
                "low-res-only",
                ActivityProfile::baseline_default(tile_factor),
            ),
            (
                "high-res-only",
                ActivityProfile::baseline_default(tile_factor),
            ),
            ("leader", ActivityProfile::leader_default(tile_factor)),
            ("follower", ActivityProfile::follower_default(400.0, 3.0)),
            (
                "mix-camera",
                ActivityProfile::mix_camera_default(tile_factor, 200.0, 3.0),
            ),
        ];
        for (name, activity) in roles {
            let r = simulate_orbit(&power, &activity, sunlit, period_s);
            metrics.incr("sim/orbit_simulations");
            if !r.is_energy_feasible() {
                metrics.incr("sim/energy_infeasible_configs");
            }
            let s = r.subsystems;
            rows.push(format!(
                "{tile_factor},{name},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{:.3},{}",
                s.camera_j,
                s.adacs_j,
                s.compute_j,
                s.tx_j,
                s.idle_j,
                r.harvested_j,
                r.normalized_consumption(),
                if r.is_energy_feasible() {
                    "feasible"
                } else {
                    "INFEASIBLE"
                }
            ));
        }
    }
    print_csv(
        "tile_factor,role,camera_j,adacs_j,compute_j,tx_j,idle_j,harvested_j,normalized,status",
        rows,
    );
    if let Err(e) = eagleeye_obs::export::write_run("fig16_energy", &metrics) {
        eprintln!("warning: failed to write metrics: {e}");
    }
}
