//! Extension — coverage degradation vs. follower-outage rate, with and
//! without degraded-mode scheduling.
//!
//! For each outage rate a seeded Monte-Carlo [`FaultPlan`] is drawn and
//! the same constellation is evaluated three ways:
//!
//! * **nofault** — no faults injected (the healthy ceiling);
//! * **naive** — faults injected, leader unaware: it keeps assigning
//!   tasks to dead followers and those captures are lost;
//! * **resilient** — faults injected, leader runs the
//!   `ResilientScheduler` (budgeted ILP, greedy fallback, mid-pass
//!   repair) and excludes known-dead followers.
//!
//! The headline metric is `recovery`: the fraction of naive-lost
//! coverage that the resilient run wins back,
//! `(resilient − naive) / (nofault − naive)`. The acceptance target is
//! ≥ 0.5 at a 20 % outage rate.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, DegradedMode, SchedulerKind,
};
use eagleeye_datasets::Workload;
use eagleeye_obs::Metrics;
use eagleeye_sim::{FaultPlan, FaultScenario};
use std::sync::Arc;

const FOLLOWERS: usize = 4;

fn main() {
    let cli = BenchCli::parse();
    let rates: Vec<f64> = if cli.fast {
        vec![0.0, 0.2, 0.5]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.5]
    };
    let seeds: Vec<u64> = if cli.fast {
        vec![cli.seed, cli.seed + 1]
    } else {
        vec![cli.seed, cli.seed + 1, cli.seed + 2]
    };
    let groups = if cli.fast { 2 } else { 4 };
    let targets = cli.workload(Workload::ShipDetection);

    let config = |scheduler| ConstellationConfig::EagleEye {
        groups,
        followers_per_group: FOLLOWERS,
        scheduler,
        clustering: ClusteringMethod::Ilp,
    };
    let options =
        |plan: Option<Arc<FaultPlan>>, mode: DegradedMode, metrics: &Metrics| CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            fault_plan: plan,
            degraded_mode: mode,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };

    // Healthy ceiling, computed once (fault-free, exact ILP).
    let nofault = CoverageEvaluator::new(
        &targets,
        options(None, DegradedMode::Resilient, &cli.metrics),
    )
    .evaluate(&config(SchedulerKind::Ilp))
    .expect("nofault evaluation");
    let c0 = nofault.coverage_fraction();
    eprintln!("healthy ceiling: {:.2}% coverage", 100.0 * c0);

    // Every (rate, seed) cell is independent: the fault plan is a pure
    // function of its seed and the evaluations are deterministic, so
    // the Monte-Carlo grid fans out across `--threads` workers.
    let grid: Vec<(f64, u64)> = rates
        .iter()
        .flat_map(|&rate| seeds.iter().map(move |&seed| (rate, seed)))
        .collect();
    let cells = cli.par_sweep_observed(&grid, |&(rate, seed), metrics| {
        let scenario = FaultScenario {
            follower_outage_rate: rate,
            ..FaultScenario::none()
        };
        // One Arc'd plan shared by both evaluations — no per-run copy.
        let plan = Arc::new(FaultPlan::monte_carlo(
            seed,
            &scenario,
            FOLLOWERS,
            cli.duration_s,
        ));
        let outages = plan.faults().len();

        let naive = CoverageEvaluator::new(
            &targets,
            options(Some(plan.clone()), DegradedMode::Naive, metrics),
        )
        .evaluate(&config(SchedulerKind::Ilp))
        .expect("naive evaluation");
        let resilient = CoverageEvaluator::new(
            &targets,
            options(Some(plan), DegradedMode::Resilient, metrics),
        )
        .evaluate(&config(SchedulerKind::Resilient))
        .expect("resilient evaluation");
        eprintln!(
            "done: rate={rate} seed={seed} outages={outages} captured \
             {}/{}/{} (nofault/naive/resilient), naive lost {} commanded captures \
             ({} fallbacks, {} repairs)",
            nofault.captured,
            naive.captured,
            resilient.captured,
            naive.captures_lost_to_faults,
            resilient.greedy_fallbacks,
            resilient.repairs_attempted,
        );
        (outages, naive, resilient)
    });

    let mut rows = Vec::new();
    for (r_idx, &rate) in rates.iter().enumerate() {
        let base = r_idx * seeds.len();
        let mut lost_sum = 0.0;
        let mut recovered_sum = 0.0;
        for (s_idx, &seed) in seeds.iter().enumerate() {
            let (outages, naive, resilient) = &cells[base + s_idx];
            let cn = naive.coverage_fraction();
            let cr = resilient.coverage_fraction();
            let lost = (c0 - cn).max(0.0);
            let recovered = cr - cn;
            lost_sum += lost;
            recovered_sum += recovered;
            let recovery = if lost > 1e-12 {
                recovered / lost
            } else {
                f64::NAN
            };
            rows.push(format!(
                "{rate},{seed},{outages},{c0:.4},{cn:.4},{cr:.4},{recovery:.4},{},{},{},{}",
                resilient.ilp_horizons,
                resilient.greedy_fallbacks,
                resilient.repairs_attempted,
                resilient.tasks_reassigned,
            ));
        }
        if lost_sum > 1e-12 {
            eprintln!(
                "rate {rate}: aggregate recovery {:.2} over {} seeds",
                recovered_sum / lost_sum,
                seeds.len()
            );
        }
    }
    print_csv(
        "outage_rate,seed,outages,coverage_nofault,coverage_naive,coverage_resilient,\
         recovery,ilp_horizons,greedy_fallbacks,repairs_attempted,tasks_reassigned",
        rows,
    );
    cli.finish("ext_fault_tolerance");
}
