//! Fig. 12a — scheduler runtime vs. target count: the ILP formulation
//! stays fast and roughly flat, while AB&B explodes combinatorially and
//! blows the 15 s frame deadline before ~19 targets.
//!
//! Synthetic frames are generated at increasing target counts with the
//! paper's geometry (100 km frame, ±92 km windows, 3 deg/s ADACS).

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::schedule::{
    AbbScheduler, FollowerState, GreedyScheduler, IlpScheduler, Scheduler, SchedulingProblem,
    TaskSpec,
};
use eagleeye_core::SensingSpec;
use std::time::{Duration, Instant};

fn synthetic_frame(n: usize, seed: u64) -> SchedulingProblem {
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let r = (seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 40503)) % 10_000;
            let x = (r % 170) as f64 * 1_000.0 - 85_000.0;
            let y = ((r / 170) % 110) as f64 * 1_000.0;
            TaskSpec::new(x, y, 0.5 + (r % 50) as f64 / 100.0)
        })
        .collect();
    SchedulingProblem::new(
        SensingSpec::paper_default(),
        tasks,
        vec![FollowerState::at_start(-100_000.0)],
    )
    .expect("valid problem")
}

fn time_scheduler(s: &dyn Scheduler, p: &SchedulingProblem) -> (f64, usize) {
    let start = Instant::now();
    let schedule = s.schedule(p).expect("scheduler run");
    (start.elapsed().as_secs_f64(), schedule.captured_count())
}

fn main() {
    let cli = BenchCli::parse();
    let counts: Vec<usize> = if cli.fast {
        vec![5, 10, 19, 40]
    } else {
        vec![2, 5, 10, 15, 19, 25, 40, 60, 80, 100]
    };
    // AB&B beyond ~20 targets takes the full 15 s deadline per instance;
    // cap it in fast mode to keep runs short while still showing the blowup.
    let abb_deadline = if cli.fast {
        Duration::from_secs(15)
    } else {
        Duration::from_secs(20)
    };

    let ilp = IlpScheduler::default();
    let greedy = GreedyScheduler;
    let abb = AbbScheduler::new(abb_deadline);

    let mut rows = Vec::new();
    for &n in &counts {
        let p = synthetic_frame(n, cli.seed);
        let (t_ilp, c_ilp) = time_scheduler(&ilp, &p);
        if cli.metrics.is_enabled() {
            // Mirror the solver diagnostics of the timed instance (a
            // separate, untimed run so the CSV timings stay clean).
            let (_, stats) = ilp.schedule_with_stats(&p).expect("scheduler run");
            cli.metrics.add("ilp/subproblems", stats.subproblems as u64);
            cli.metrics
                .add("ilp/nodes_explored", stats.nodes_explored as u64);
            cli.metrics
                .add("ilp/lp_iterations", stats.lp_iterations as u64);
            cli.metrics
                .record_duration("bench/ilp_schedule", Duration::from_secs_f64(t_ilp));
        }
        let (t_greedy, c_greedy) = time_scheduler(&greedy, &p);
        // Skip AB&B at very large counts outside fast mode (it would just
        // sit at the deadline).
        let (t_abb, c_abb) = if n <= 40 {
            time_scheduler(&abb, &p)
        } else {
            (f64::NAN, 0)
        };
        rows.push(format!(
            "{n},{:.6},{},{:.6},{},{:.6},{}",
            t_ilp, c_ilp, t_greedy, c_greedy, t_abb, c_abb
        ));
        eprintln!(
            "n={n}: ilp {:.1} ms ({c_ilp}), greedy {:.1} ms ({c_greedy}), abb {:.1} s ({c_abb})",
            t_ilp * 1e3,
            t_greedy * 1e3,
            t_abb
        );
    }
    print_csv(
        "targets,ilp_s,ilp_captured,greedy_s,greedy_captured,abb_s,abb_captured",
        rows,
    );
    cli.finish("fig12a_runtime");
}
