//! CI smoke validator for metrics artifacts: parses one or more
//! `results/METRICS_<run>.json` files and checks the DESIGN.md §10
//! schema — the five top-level keys (`run` plus four object-valued
//! sections), integer counters, and internally-consistent histograms.
//!
//! Exit code 0 when every artifact validates; 1 with a message on
//! stderr otherwise. Usage: `metrics_check <artifact.json>...`.

use eagleeye_obs::json::{parse, Value};
use std::process::ExitCode;

fn validate(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    doc.get("run")
        .and_then(Value::as_str)
        .ok_or("missing or non-string top-level key 'run'")?;
    for section in ["counters", "gauges", "timers", "histograms"] {
        doc.get(section)
            .and_then(Value::as_object)
            .ok_or(format!("missing or non-object top-level key '{section}'"))?;
    }
    for (key, v) in doc.get("counters").unwrap().as_object().unwrap() {
        v.as_u64()
            .ok_or(format!("counter '{key}' is not a non-negative integer"))?;
    }
    for (key, v) in doc.get("timers").unwrap().as_object().unwrap() {
        v.get("count")
            .and_then(Value::as_u64)
            .ok_or(format!("timer '{key}' lacks an integer 'count'"))?;
        v.get("total_s")
            .and_then(Value::as_f64)
            .ok_or(format!("timer '{key}' lacks a numeric 'total_s'"))?;
    }
    for (key, v) in doc.get("histograms").unwrap().as_object().unwrap() {
        let bounds = v
            .get("bounds")
            .and_then(Value::as_array)
            .ok_or(format!("histogram '{key}' lacks a 'bounds' array"))?;
        let counts = v
            .get("counts")
            .and_then(Value::as_array)
            .ok_or(format!("histogram '{key}' lacks a 'counts' array"))?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram '{key}': {} counts for {} bounds (want bounds+1)",
                counts.len(),
                bounds.len()
            ));
        }
        let total: u64 = counts.iter().filter_map(Value::as_u64).sum();
        let count = v
            .get("count")
            .and_then(Value::as_u64)
            .ok_or(format!("histogram '{key}' lacks an integer 'count'"))?;
        if total != count {
            return Err(format!(
                "histogram '{key}': bucket counts sum to {total} but 'count' is {count}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: metrics_check <METRICS_*.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| validate(&text));
        match outcome {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_obs::export::render_json;
    use eagleeye_obs::Metrics;

    #[test]
    fn accepts_rendered_artifacts() {
        let m = Metrics::enabled();
        m.add("ilp/nodes_explored", 3);
        m.record_duration("core/evaluate", std::time::Duration::from_millis(5));
        m.observe("core/frame_targets", 4, &[1, 2, 5]);
        validate(&render_json("unit", &m.snapshot())).expect("valid artifact");
        validate(&render_json("empty", &Metrics::enabled().snapshot())).expect("empty artifact");
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"run": "r"}"#).is_err());
        assert!(validate(
            r#"{"run": 1, "counters": {}, "gauges": {}, "timers": {}, "histograms": {}}"#
        )
        .is_err());
        assert!(validate(
            r#"{"run": "r", "counters": {"a": -1}, "gauges": {}, "timers": {}, "histograms": {}}"#
        )
        .is_err());
        assert!(validate(
            r#"{"run": "r", "counters": {}, "gauges": {}, "timers": {},
                "histograms": {"h": {"bounds": [1], "counts": [1], "sum": 1, "count": 1}}}"#
        )
        .is_err());
        assert!(validate(
            r#"{"run": "r", "counters": {}, "gauges": {}, "timers": {},
                "histograms": {"h": {"bounds": [1], "counts": [1, 2], "sum": 1, "count": 4}}}"#
        )
        .is_err());
    }
}
