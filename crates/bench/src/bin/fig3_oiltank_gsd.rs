//! Fig. 3 — the two-stage oil-tank task vs. GSD: (a) detection accuracy
//! stays high from 0.7 to 11.5 m/px, while (b) volume-estimation error
//! (50th / 90th percentile) grows until the estimates are useless.
//!
//! This is the paper's motivation that some analytics have resolution
//! thresholds: the low-res leader can *find* tanks, but only a high-res
//! follower can *measure* them.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_datasets::OilTankGenerator;
use eagleeye_detect::{DetectorModel, VolumeEstimator};

fn main() {
    let cli = BenchCli::parse();
    let farms = OilTankGenerator::new()
        .with_farm_count(if cli.fast { 100 } else { 500 })
        .generate(cli.seed);
    let tanks: Vec<(f64, f64)> = farms
        .iter()
        .flat_map(|f| f.tanks.iter().map(|t| (t.fill_level, t.diameter_m)))
        .collect();

    let detector = DetectorModel::oiltank_detector();
    let estimator = VolumeEstimator::default();
    let gsds = [0.72, 1.5, 3.0, 5.0, 7.5, 10.0, 11.5];

    let mut rows = Vec::new();
    for gsd in gsds {
        // Stage 1: detection accuracy — mean recall over the tank
        // population at this GSD.
        let detection: f64 = tanks
            .iter()
            .map(|&(_, dia)| detector.recall_at_gsd(gsd, dia))
            .sum::<f64>()
            / tanks.len() as f64;
        // Stage 2: volume estimation error percentiles.
        let (p50, p90) = estimator.error_percentiles(&tanks, gsd, cli.seed);
        rows.push(format!("{gsd},{:.4},{:.4},{:.4}", detection, p50, p90));
    }
    print_csv(
        "gsd_m_px,detection_accuracy,volume_err_p50,volume_err_p90",
        rows,
    );
    cli.finish("fig3_oiltank_gsd");
}
