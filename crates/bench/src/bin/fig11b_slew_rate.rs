//! Fig. 11b — coverage vs. constellation size at slew rates of 1, 3,
//! and 10 deg/s (EagleEye, 1 follower, ILP scheduling), with the
//! homogeneous baselines for reference.
//!
//! Expected shape (paper): faster slewing improves coverage; at 1 deg/s
//! on the dense Lake Monitoring (1.4M) workload EagleEye can fall below
//! High-Res Only because off-nadir pointing costs more than it gains.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_core::{Adacs, SensingSpec};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    // (workload, slew rate or None for the high-res baseline, sats):
    // every cell is an independent evaluation, fanned out on --threads.
    let mut grid: Vec<(usize, Option<f64>, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for rate_deg_s in [1.0, 3.0, 10.0] {
            for sats in cli.sat_counts() {
                grid.push((wi, Some(rate_deg_s), sats));
            }
        }
        // High-res baseline for the crossover comparison.
        for sats in cli.sat_counts() {
            grid.push((wi, None, sats));
        }
    }
    let rows = cli.par_sweep_observed(&grid, |&(wi, rate, sats), metrics| {
        let (workload, ref targets) = workloads[wi];
        let spec = match rate {
            Some(r) => {
                SensingSpec::paper_default().with_adacs(Adacs::new(r, 0.67).expect("valid ADACS"))
            }
            None => SensingSpec::paper_default(),
        };
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            spec,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let config = match rate {
            Some(_) => ConstellationConfig::eagleeye((sats / 2).max(1), 1),
            None => ConstellationConfig::HighResOnly { satellites: sats },
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&config)
            .expect("coverage evaluation");
        match rate {
            Some(r) => {
                eprintln!(
                    "done: {} sats={} rate={} -> {:.1}%",
                    workload.label(),
                    sats,
                    r,
                    100.0 * report.coverage_fraction()
                );
                format!(
                    "{},{},{},{:.4}",
                    workload.label(),
                    sats,
                    r,
                    report.coverage_fraction()
                )
            }
            None => format!(
                "{},{},high-res-only,{:.4}",
                workload.label(),
                sats,
                report.coverage_fraction()
            ),
        }
    });
    print_csv("workload,satellites,slew_rate_deg_s,coverage", rows);
    cli.finish("fig11b_slew_rate");
}
