//! Fig. 11b — coverage vs. constellation size at slew rates of 1, 3,
//! and 10 deg/s (EagleEye, 1 follower, ILP scheduling), with the
//! homogeneous baselines for reference.
//!
//! Expected shape (paper): faster slewing improves coverage; at 1 deg/s
//! on the dense Lake Monitoring (1.4M) workload EagleEye can fall below
//! High-Res Only because off-nadir pointing costs more than it gains.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_core::{Adacs, SensingSpec};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        for rate_deg_s in [1.0, 3.0, 10.0] {
            let spec = SensingSpec::paper_default()
                .with_adacs(Adacs::new(rate_deg_s, 0.67).expect("valid ADACS"));
            let opts = CoverageOptions {
                duration_s: cli.duration_s,
                seed: cli.seed,
                spec,
                ..CoverageOptions::default()
            };
            let eval = CoverageEvaluator::new(&targets, opts);
            for sats in cli.sat_counts() {
                let groups = (sats / 2).max(1);
                let report = eval
                    .evaluate(&ConstellationConfig::eagleeye(groups, 1))
                    .expect("coverage evaluation");
                rows.push(format!(
                    "{},{},{},{:.4}",
                    workload.label(),
                    sats,
                    rate_deg_s,
                    report.coverage_fraction()
                ));
                eprintln!(
                    "done: {} sats={} rate={} -> {:.1}%",
                    workload.label(),
                    sats,
                    rate_deg_s,
                    100.0 * report.coverage_fraction()
                );
            }
        }
        // High-res baseline for the crossover comparison.
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            ..CoverageOptions::default()
        };
        let eval = CoverageEvaluator::new(&targets, opts);
        for sats in cli.sat_counts() {
            let report = eval
                .evaluate(&ConstellationConfig::HighResOnly { satellites: sats })
                .expect("coverage evaluation");
            rows.push(format!(
                "{},{},high-res-only,{:.4}",
                workload.label(),
                sats,
                report.coverage_fraction()
            ));
        }
    }
    print_csv("workload,satellites,slew_rate_deg_s,coverage", rows);
}
