//! Fig. 15 — normalized coverage vs. detector recall.
//!
//! Expected shape (paper): coverage decreases *slower* than recall —
//! even at recall 0.2 the constellation keeps well above 20 % of its
//! full coverage, because a high-resolution frame pointed at one
//! detected target often serendipitously contains undetected neighbors.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let recalls: Vec<f64> = if cli.fast {
        vec![0.2, 0.5, 1.0]
    } else {
        vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let groups = if cli.fast { 2 } else { 4 };
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let targets = cli.workload(workload);
        let mut baseline = None;
        for &recall in recalls.iter().rev() {
            let opts = CoverageOptions {
                duration_s: cli.duration_s,
                seed: cli.seed,
                recall,
                ..CoverageOptions::default()
            };
            let eval = CoverageEvaluator::new(&targets, opts);
            let report = eval
                .evaluate(&ConstellationConfig::eagleeye(groups, 1))
                .expect("coverage evaluation");
            let cov = report.coverage_fraction();
            let base = *baseline.get_or_insert(cov.max(1e-9));
            rows.push(format!(
                "{},{recall},{:.4},{:.4}",
                workload.label(),
                cov,
                cov / base
            ));
            eprintln!(
                "done: {} recall={recall} -> {:.1}% (normalized {:.2})",
                workload.label(),
                100.0 * cov,
                cov / base
            );
        }
    }
    print_csv("workload,recall,coverage,normalized_coverage", rows);
}
