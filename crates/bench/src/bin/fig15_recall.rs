//! Fig. 15 — normalized coverage vs. detector recall.
//!
//! Expected shape (paper): coverage decreases *slower* than recall —
//! even at recall 0.2 the constellation keeps well above 20 % of its
//! full coverage, because a high-resolution frame pointed at one
//! detected target often serendipitously contains undetected neighbors.

use eagleeye_bench::{print_csv, BenchCli};
use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
use eagleeye_datasets::Workload;

fn main() {
    let cli = BenchCli::parse();
    let recalls: Vec<f64> = if cli.fast {
        vec![0.2, 0.5, 1.0]
    } else {
        vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let groups = if cli.fast { 2 } else { 4 };
    let workloads: Vec<(Workload, _)> = Workload::ALL
        .into_iter()
        .map(|w| (w, cli.workload(w)))
        .collect();
    // All (workload, recall) evaluations are independent; the recall=1
    // baseline each row normalizes against is just another cell, so the
    // normalization happens after the parallel sweep.
    let grid: Vec<(usize, f64)> = (0..workloads.len())
        .flat_map(|wi| recalls.iter().rev().map(move |&r| (wi, r)))
        .collect();
    let coverages = cli.par_sweep_observed(&grid, |&(wi, recall), metrics| {
        let (workload, ref targets) = workloads[wi];
        let opts = CoverageOptions {
            duration_s: cli.duration_s,
            seed: cli.seed,
            recall,
            metrics: metrics.clone(),
            ..CoverageOptions::default()
        };
        let report = CoverageEvaluator::new(targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(groups, 1))
            .expect("coverage evaluation");
        eprintln!(
            "done: {} recall={recall} -> {:.1}%",
            workload.label(),
            100.0 * report.coverage_fraction()
        );
        report.coverage_fraction()
    });
    let mut rows = Vec::new();
    for (wi, (workload, _)) in workloads.iter().enumerate() {
        let base_idx = wi * recalls.len();
        // Grid order is descending recall, so the first cell of each
        // workload block is the recall-1.0 baseline.
        let base = coverages[base_idx].max(1e-9);
        for (j, &recall) in recalls.iter().rev().enumerate() {
            let cov = coverages[base_idx + j];
            rows.push(format!(
                "{},{recall},{:.4},{:.4}",
                workload.label(),
                cov,
                cov / base
            ));
        }
    }
    print_csv("workload,recall,coverage,normalized_coverage", rows);
    cli.finish("fig15_recall");
}
