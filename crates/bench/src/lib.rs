//! Shared harness utilities for the per-figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation, printing CSV-style series to stdout. All binaries
//! accept:
//!
//! * `--fast` — shortened sweeps and simulation horizon for quick runs
//!   (the default horizon is already reduced relative to the paper's
//!   24 h; see EXPERIMENTS.md for the scaling argument).
//! * `--hours <h>` — explicit simulation horizon.
//! * `--scale <f>` — dataset scale factor in `(0, 1]` (1 = the paper's
//!   full target counts).
//! * `--seed <n>` — RNG seed.
//! * `--threads <n>` — worker threads for the sweep's independent
//!   configurations (0 or omitted = all available cores). Results are
//!   identical at any thread count; see DESIGN.md §8.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run -p eagleeye-bench --release --bin fig11a_coverage -- --fast --threads 4
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use eagleeye_datasets::{TargetSet, Workload};
use eagleeye_exec::ExecPool;
use eagleeye_obs::Metrics;

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCli {
    /// Shortened sweep mode.
    pub fast: bool,
    /// Simulation horizon, seconds.
    pub duration_s: f64,
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for independent sweep configurations
    /// (`available_parallelism` by default). The figure binaries
    /// parallelize the *outer* sweep — each evaluation inside keeps the
    /// sequential default — so output is identical at any value.
    pub threads: usize,
    /// Observability sink, enabled by `EAGLEEYE_TRACE=1` (see
    /// `eagleeye-obs`): [`BenchCli::parse`] reads the environment,
    /// [`BenchCli::par_sweep_observed`] forks it per configuration, and
    /// [`BenchCli::finish`] writes `results/METRICS_<run>.json` plus a
    /// stderr summary. Disabled (free) by default.
    pub metrics: Metrics,
}

impl Default for BenchCli {
    fn default() -> Self {
        BenchCli {
            fast: false,
            duration_s: 3.0 * 3600.0,
            scale: 1.0,
            seed: 7,
            threads: eagleeye_exec::available_parallelism(),
            metrics: Metrics::disabled(),
        }
    }
}

impl BenchCli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags — these are
    /// developer-facing binaries.
    pub fn parse() -> Self {
        let mut cli = BenchCli {
            metrics: Metrics::from_env(),
            ..BenchCli::default()
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => {
                    cli.fast = true;
                    cli.duration_s = 1.0 * 3600.0;
                    cli.scale = cli.scale.min(0.3);
                }
                "--hours" => {
                    let v = args.next().expect("--hours needs a value");
                    cli.duration_s = v.parse::<f64>().expect("numeric hours") * 3600.0;
                }
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    cli.scale = v.parse::<f64>().expect("numeric scale").clamp(1e-4, 1.0);
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    cli.seed = v.parse().expect("integer seed");
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    let n: usize = v.parse().expect("integer thread count");
                    cli.threads = if n == 0 {
                        eagleeye_exec::available_parallelism()
                    } else {
                        n
                    };
                }
                other => panic!(
                    "unknown flag {other}; supported: --fast --hours <h> --scale <f> --seed <n> --threads <n>"
                ),
            }
        }
        cli
    }

    /// Generates one of the paper's four workloads at the configured
    /// scale and horizon.
    pub fn workload(&self, w: Workload) -> TargetSet {
        w.generate_scaled(self.scale, self.duration_s, self.seed)
    }

    /// Satellite-count sweep used by the Fig. 11 family.
    pub fn sat_counts(&self) -> Vec<usize> {
        if self.fast {
            vec![4, 12, 24, 40]
        } else {
            vec![2, 4, 8, 12, 20, 28, 40]
        }
    }

    /// Runs `f` over every sweep configuration on `--threads` workers,
    /// returning results in input order (deterministic regardless of
    /// which worker ran which configuration).
    ///
    /// This parallelizes the figure binaries' *outer* loop — workload ×
    /// satellite-count × seed grids whose evaluations are mutually
    /// independent — which scales better than intra-evaluation
    /// parallelism and lets each inner evaluation stay sequential.
    pub fn par_sweep<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        ExecPool::new(self.threads).par_map(items, |_, item| f(item))
    }

    /// [`BenchCli::par_sweep`] with observability: each configuration
    /// runs against a fork of [`BenchCli::metrics`] (pass it into the
    /// evaluation's `CoverageOptions`), and the forks merge back in
    /// input order, so recorded counters and histograms are identical
    /// at any thread count.
    pub fn par_sweep_observed<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T, &Metrics) -> R + Sync,
    ) -> Vec<R> {
        ExecPool::new(self.threads).par_map_observed(&self.metrics, items, |_, item, m| f(item, m))
    }

    /// Exports the run's metrics to `results/METRICS_<run>.json` and
    /// prints the stderr summary. A no-op unless `EAGLEEYE_TRACE` was
    /// set at parse time; export failures warn rather than abort (the
    /// figure's CSV already reached stdout).
    pub fn finish(&self, run: &str) {
        if let Err(e) = eagleeye_obs::export::write_run(run, &self.metrics) {
            eprintln!("warning: failed to write metrics for {run}: {e}");
        }
    }
}

/// Prints a CSV header and rows to stdout.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = String>) {
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_is_full_sweep() {
        let c = BenchCli::default();
        assert!(!c.fast);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn workload_scales() {
        let cli = BenchCli {
            scale: 0.01,
            ..BenchCli::default()
        };
        let set = cli.workload(Workload::ShipDetection);
        assert_eq!(set.len(), 191);
    }

    #[test]
    fn par_sweep_preserves_input_order() {
        for threads in [1, 3, 8] {
            let cli = BenchCli {
                threads,
                ..BenchCli::default()
            };
            let items: Vec<usize> = (0..23).collect();
            let out = cli.par_sweep(&items, |&i| i * i);
            assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sat_counts_depend_on_mode() {
        assert!(
            BenchCli {
                fast: true,
                ..Default::default()
            }
            .sat_counts()
            .len()
                < 6
        );
        assert!(BenchCli::default().sat_counts().len() >= 6);
    }
}
