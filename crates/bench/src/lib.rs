//! Shared harness utilities for the per-figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation, printing CSV-style series to stdout. All binaries
//! accept:
//!
//! * `--fast` — shortened sweeps and simulation horizon for quick runs
//!   (the default horizon is already reduced relative to the paper's
//!   24 h; see EXPERIMENTS.md for the scaling argument).
//! * `--hours <h>` — explicit simulation horizon.
//! * `--scale <f>` — dataset scale factor in `(0, 1]` (1 = the paper's
//!   full target counts).
//! * `--seed <n>` — RNG seed.
//! * `--threads <n>` — worker threads for the sweep's independent
//!   configurations (0 or omitted = all available cores). Results are
//!   identical at any thread count; see DESIGN.md §8.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run -p eagleeye-bench --release --bin fig11a_coverage -- --fast --threads 4
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use eagleeye_datasets::{TargetSet, Workload};
use eagleeye_exec::ExecPool;
use eagleeye_harden::{
    run_items, ByteReader, ByteWriter, CheckpointSpec, Deadline, RunConfig, ScenarioHasher,
};
use eagleeye_obs::{Metrics, MetricsRegistry};
use std::time::Duration;

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCli {
    /// Shortened sweep mode.
    pub fast: bool,
    /// CI smoke mode (`--smoke`): an even shorter configuration than
    /// `--fast`, plus hard pass/fail gates in the binaries that
    /// support it (see `perf_eval`).
    pub smoke: bool,
    /// Simulation horizon, seconds.
    pub duration_s: f64,
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for independent sweep configurations
    /// (`available_parallelism` by default). The figure binaries
    /// parallelize the *outer* sweep — each evaluation inside keeps the
    /// sequential default — so output is identical at any value.
    pub threads: usize,
    /// Observability sink, enabled by `EAGLEEYE_TRACE=1` (see
    /// `eagleeye-obs`): [`BenchCli::parse`] reads the environment,
    /// [`BenchCli::par_sweep_observed`] forks it per configuration, and
    /// [`BenchCli::finish`] writes `results/METRICS_<run>.json` plus a
    /// stderr summary. Disabled (free) by default.
    pub metrics: Metrics,
    /// Checkpoint file for the crash-safe sweep path
    /// (`--checkpoint PATH`, with `--resume` and `--ckpt-cadence N`);
    /// `None` keeps the plain in-memory sweep.
    pub checkpoint: Option<CheckpointSpec>,
    /// Wall-clock budget (`--deadline SECONDS`); blowing it degrades
    /// the sweep to the configurations that finished instead of
    /// aborting (see `eagleeye-harden`).
    pub deadline: Deadline,
}

impl Default for BenchCli {
    fn default() -> Self {
        BenchCli {
            fast: false,
            smoke: false,
            duration_s: 3.0 * 3600.0,
            scale: 1.0,
            seed: 7,
            threads: eagleeye_exec::available_parallelism(),
            metrics: Metrics::disabled(),
            checkpoint: None,
            deadline: Deadline::none(),
        }
    }
}

impl BenchCli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags — these are
    /// developer-facing binaries.
    pub fn parse() -> Self {
        let mut cli = BenchCli {
            metrics: Metrics::from_env(),
            ..BenchCli::default()
        };
        let mut ckpt_path: Option<String> = None;
        let mut resume = false;
        let mut cadence = 1usize;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => {
                    cli.fast = true;
                    cli.duration_s = 1.0 * 3600.0;
                    cli.scale = cli.scale.min(0.3);
                }
                "--smoke" => {
                    cli.smoke = true;
                    cli.fast = true;
                    cli.duration_s = 0.5 * 3600.0;
                    cli.scale = cli.scale.min(0.2);
                }
                "--hours" => {
                    let v = args.next().expect("--hours needs a value");
                    cli.duration_s = v.parse::<f64>().expect("numeric hours") * 3600.0;
                }
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    cli.scale = v.parse::<f64>().expect("numeric scale").clamp(1e-4, 1.0);
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    cli.seed = v.parse().expect("integer seed");
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    let n: usize = v.parse().expect("integer thread count");
                    cli.threads = if n == 0 {
                        eagleeye_exec::available_parallelism()
                    } else {
                        n
                    };
                }
                "--checkpoint" => {
                    ckpt_path = Some(args.next().expect("--checkpoint needs a path"));
                }
                "--resume" => resume = true,
                "--ckpt-cadence" => {
                    let v = args.next().expect("--ckpt-cadence needs a value");
                    cadence = v.parse().expect("integer checkpoint cadence");
                }
                "--deadline" => {
                    let v = args.next().expect("--deadline needs a value");
                    let secs: f64 = v.parse().expect("numeric deadline seconds");
                    cli.deadline = Deadline::after(Duration::from_secs_f64(secs));
                }
                other => panic!(
                    "unknown flag {other}; supported: --fast --smoke --hours <h> --scale <f> \
                     --seed <n> --threads <n> --checkpoint <path> --resume --ckpt-cadence <n> \
                     --deadline <s>"
                ),
            }
        }
        if let Some(path) = ckpt_path {
            let mut spec = CheckpointSpec::new(path, cadence);
            spec.resume = resume;
            cli.checkpoint = Some(spec);
        }
        cli
    }

    /// Generates one of the paper's four workloads at the configured
    /// scale and horizon.
    pub fn workload(&self, w: Workload) -> TargetSet {
        w.generate_scaled(self.scale, self.duration_s, self.seed)
    }

    /// Satellite-count sweep used by the Fig. 11 family.
    pub fn sat_counts(&self) -> Vec<usize> {
        if self.fast {
            vec![4, 12, 24, 40]
        } else {
            vec![2, 4, 8, 12, 20, 28, 40]
        }
    }

    /// Runs `f` over every sweep configuration on `--threads` workers,
    /// returning results in input order (deterministic regardless of
    /// which worker ran which configuration).
    ///
    /// This parallelizes the figure binaries' *outer* loop — workload ×
    /// satellite-count × seed grids whose evaluations are mutually
    /// independent — which scales better than intra-evaluation
    /// parallelism and lets each inner evaluation stay sequential.
    pub fn par_sweep<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        ExecPool::new(self.threads).par_map(items, |_, item| f(item))
    }

    /// [`BenchCli::par_sweep`] with observability: each configuration
    /// runs against a fork of [`BenchCli::metrics`] (pass it into the
    /// evaluation's `CoverageOptions`), and the forks merge back in
    /// input order, so recorded counters and histograms are identical
    /// at any thread count.
    pub fn par_sweep_observed<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T, &Metrics) -> R + Sync,
    ) -> Vec<R> {
        ExecPool::new(self.threads).par_map_observed(&self.metrics, items, |_, item, m| f(item, m))
    }

    /// Process-stable hash binding a checkpoint file to this exact
    /// sweep (run name, horizon, scale, seed, grid size). Thread count
    /// and checkpoint cadence are deliberately excluded: a sweep may
    /// resume with different parallelism.
    // eagleeye-lint: digest-of(BenchCli)
    // eagleeye-lint: digest-allow(BenchCli::smoke): already bound — smoke mode only shrinks duration_s/scale and the sweep grid, all of which are hashed
    // eagleeye-lint: digest-allow(BenchCli::threads, BenchCli::checkpoint, BenchCli::deadline): execution shape — a sweep may legitimately resume with different parallelism, cadence, or budget
    // eagleeye-lint: digest-allow(BenchCli::metrics): observability sink; recorded metrics are identical at any thread count and never alter rows
    pub fn scenario_hash(&self, run: &str, total_items: usize) -> u64 {
        ScenarioHasher::new()
            .str("eagleeye-bench/sweep/v1")
            .str(run)
            .u64(u64::from(self.fast))
            .f64(self.duration_s)
            .f64(self.scale)
            .u64(self.seed)
            .u64(total_items as u64)
            .finish()
    }

    /// [`BenchCli::par_sweep_observed`] under the crash-safe run layer
    /// (`eagleeye-harden`): each configuration's CSV row and metrics
    /// fork are checkpointed as they complete, `--resume` restores them
    /// instead of recomputing, and a blown `--deadline` yields the rows
    /// that finished (`None` for the rest) with
    /// [`SweepOutcome::degraded`] set.
    ///
    /// Without `--checkpoint`/`--deadline` this delegates to the plain
    /// observed sweep, so figure binaries can call it unconditionally.
    /// Fault-free checkpointed sweeps produce rows and merged metrics
    /// bit-identical to the plain path at any thread count (modulo the
    /// `exec/*` pool counters, which only the plain path records).
    ///
    /// # Panics
    ///
    /// Panics on checkpoint I/O or resume-validation failures (wrong
    /// scenario, corrupt snapshot) — these are developer-facing
    /// binaries and a bad resume must not silently recompute.
    pub fn par_sweep_checkpointed<T: Sync>(
        &self,
        run: &str,
        items: &[T],
        f: impl Fn(&T, &Metrics) -> String + Sync,
    ) -> SweepOutcome {
        if self.checkpoint.is_none() && !self.deadline.is_set() {
            let rows = self.par_sweep_observed(items, f);
            let total = rows.len();
            return SweepOutcome {
                rows: rows.into_iter().map(Some).collect(),
                degraded: false,
                completed: total,
                total,
                resumed: 0,
            };
        }
        let config = RunConfig {
            scenario_hash: self.scenario_hash(run, items.len()),
            threads: self.threads,
            checkpoint: self.checkpoint.clone(),
            deadline: self.deadline,
            shutdown: eagleeye_harden::ShutdownFlag::new(),
            retry: eagleeye_harden::RetryPolicy::default(),
        };
        let outcome = run_items(&config, items.len(), |i| {
            let fork = self.metrics.fork();
            let row = f(&items[i], &fork);
            let mut w = ByteWriter::new();
            w.u8(1); // payload version
            w.str(&row);
            w.bytes(&fork.snapshot().to_bytes());
            w.into_bytes()
        })
        .unwrap_or_else(|e| panic!("checkpointed sweep for {run} failed: {e}"));
        // Decode in input order so metrics absorption is deterministic
        // at any thread count (same discipline as the plain path).
        let mut rows = Vec::with_capacity(outcome.payloads.len());
        for (i, payload) in outcome.payloads.iter().enumerate() {
            match payload {
                None => rows.push(None),
                Some(bytes) => {
                    let mut r = ByteReader::new(bytes);
                    let mut decode =
                        || -> Result<(String, MetricsRegistry), eagleeye_harden::CodecError> {
                            let version = r.u8()?;
                            if version != 1 {
                                return Err(eagleeye_harden::CodecError {
                                    context: "sweep payload version",
                                });
                            }
                            let row = r.str()?.to_string();
                            let registry = MetricsRegistry::from_bytes(r.bytes()?)?;
                            Ok((row, registry))
                        };
                    let (row, registry) = decode().unwrap_or_else(|e| {
                        panic!("checkpointed sweep for {run}: row {i} payload malformed: {e}")
                    });
                    self.metrics.absorb_registry(&registry);
                    rows.push(Some(row));
                }
            }
        }
        if outcome.resumed_items > 0 {
            eprintln!(
                "resumed {} of {} sweep configurations from checkpoint",
                outcome.resumed_items, outcome.total
            );
        }
        for q in &outcome.quarantined {
            eprintln!(
                "warning: configuration {} quarantined after {} attempts: {}",
                q.item, q.attempts, q.message
            );
        }
        SweepOutcome {
            rows,
            degraded: outcome.degraded,
            completed: outcome.completed,
            total: outcome.total,
            resumed: outcome.resumed_items,
        }
    }

    /// Exports the run's metrics to `results/METRICS_<run>.json` and
    /// prints the stderr summary. A no-op unless `EAGLEEYE_TRACE` was
    /// set at parse time; export failures warn rather than abort (the
    /// figure's CSV already reached stdout).
    pub fn finish(&self, run: &str) {
        if let Err(e) = eagleeye_obs::export::write_run(run, &self.metrics) {
            eprintln!("warning: failed to write metrics for {run}: {e}");
        }
    }
}

/// Result of a checkpointed sweep: per-configuration CSV rows in grid
/// order (`None` when a row was never computed — degraded run or
/// quarantined configuration) plus anytime-result accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// CSV rows in input order; `None` for missing configurations.
    pub rows: Vec<Option<String>>,
    /// True when the run stopped early (deadline) with rows missing.
    pub degraded: bool,
    /// Rows present (computed or resumed).
    pub completed: usize,
    /// Rows requested.
    pub total: usize,
    /// Rows restored from the checkpoint instead of recomputed.
    pub resumed: usize,
}

/// Prints a CSV header and rows to stdout.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = String>) {
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

/// Prints a possibly-partial sweep as CSV: available rows in grid
/// order, then — for degraded runs — a `#`-comment trailer recording
/// how much of the sweep the anytime result covers (so a truncated
/// artifact is distinguishable from a complete one).
pub fn print_csv_outcome(header: &str, outcome: &SweepOutcome) {
    print_csv(header, outcome.rows.iter().flatten().cloned());
    if outcome.degraded {
        println!(
            "# degraded: {} of {} configurations completed before the deadline; \
             rerun with --checkpoint <path> --resume to finish the sweep",
            outcome.completed, outcome.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_is_full_sweep() {
        let c = BenchCli::default();
        assert!(!c.fast);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn workload_scales() {
        let cli = BenchCli {
            scale: 0.01,
            ..BenchCli::default()
        };
        let set = cli.workload(Workload::ShipDetection);
        assert_eq!(set.len(), 191);
    }

    #[test]
    fn par_sweep_preserves_input_order() {
        for threads in [1, 3, 8] {
            let cli = BenchCli {
                threads,
                ..BenchCli::default()
            };
            let items: Vec<usize> = (0..23).collect();
            let out = cli.par_sweep(&items, |&i| i * i);
            assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn checkpointed_sweep_without_flags_matches_plain_sweep() {
        let cli = BenchCli {
            threads: 3,
            ..BenchCli::default()
        };
        let items: Vec<usize> = (0..17).collect();
        let plain = cli.par_sweep_observed(&items, |&i, _| format!("row{i}"));
        let out = cli.par_sweep_checkpointed("test_sweep", &items, |&i, _| format!("row{i}"));
        assert!(!out.degraded);
        assert_eq!(out.completed, 17);
        assert_eq!(out.resumed, 0);
        assert_eq!(
            out.rows.iter().flatten().cloned().collect::<Vec<_>>(),
            plain
        );
    }

    #[test]
    fn checkpointed_sweep_resumes_rows_and_metrics() {
        let path =
            std::env::temp_dir().join(format!("eagleeye_bench_sweep_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let items: Vec<usize> = (0..9).collect();
        let run = |resume: bool| {
            let mut spec = CheckpointSpec::new(&path, 1);
            spec.resume = resume;
            let cli = BenchCli {
                threads: 2,
                metrics: Metrics::enabled(),
                checkpoint: Some(spec),
                ..BenchCli::default()
            };
            let out = cli.par_sweep_checkpointed("resume_sweep", &items, |&i, m| {
                m.incr("bench/test_rows");
                format!("row{i}")
            });
            (out, cli.metrics.snapshot())
        };
        let (first, reg_first) = run(false);
        assert_eq!(first.completed, 9);
        let (second, reg_second) = run(true);
        assert_eq!(second.resumed, 9, "all rows must come from the checkpoint");
        assert_eq!(second.rows, first.rows);
        // Metrics travel with the checkpoint: the resumed run replays
        // the recorded counters bit-identically.
        assert_eq!(reg_first, reg_second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expired_deadline_degrades_the_sweep() {
        let cli = BenchCli {
            threads: 2,
            deadline: Deadline::after(Duration::ZERO),
            ..BenchCli::default()
        };
        let items: Vec<usize> = (0..8).collect();
        let out = cli.par_sweep_checkpointed("deadline_sweep", &items, |&i, _| {
            std::thread::sleep(Duration::from_millis(5));
            format!("row{i}")
        });
        assert!(out.degraded);
        assert!(out.completed < 8);
        assert_eq!(
            out.rows.iter().filter(|r| r.is_some()).count(),
            out.completed
        );
    }

    #[test]
    fn scenario_hash_binds_run_and_parameters() {
        let cli = BenchCli::default();
        let a = cli.scenario_hash("fig11a_coverage", 92);
        assert_eq!(a, cli.scenario_hash("fig11a_coverage", 92));
        assert_ne!(a, cli.scenario_hash("fig11b_slew_rate", 92));
        assert_ne!(a, cli.scenario_hash("fig11a_coverage", 91));
        let other = BenchCli {
            seed: 8,
            ..BenchCli::default()
        };
        assert_ne!(a, other.scenario_hash("fig11a_coverage", 92));
        // Thread count must NOT change the scenario.
        let threads = BenchCli {
            threads: 16,
            ..BenchCli::default()
        };
        assert_eq!(a, threads.scenario_hash("fig11a_coverage", 92));
    }

    #[test]
    fn sat_counts_depend_on_mode() {
        assert!(
            BenchCli {
                fast: true,
                ..Default::default()
            }
            .sat_counts()
            .len()
                < 6
        );
        assert!(BenchCli::default().sat_counts().len() >= 6);
    }
}
