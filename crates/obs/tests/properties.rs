//! `eagleeye-check` property suite pinning the merge semantics that
//! make parallel metric recording deterministic (DESIGN.md §10):
//! registry merge is exactly associative and commutative, and chunked
//! fork/absorb in any order equals sequential recording.

use eagleeye_check::{check, prop_assert_eq, u64_range, usize_range, vec_of, Gen};
use eagleeye_obs::MetricsRegistry;
use std::time::Duration;

/// One recording operation: `(kind, key index, value)` where kind
/// selects counter / gauge / timer / histogram.
type Op = (usize, usize, u64);

const KEYS: [&str; 3] = ["core/a", "ilp/b", "orbit/c"];
/// Histogram bounds are fixed per key (the registry panics on
/// mismatched bounds, which would make merges partial).
const BOUNDS: [&[u64]; 3] = [&[4, 16], &[1, 2, 5, 50], &[100]];

fn ops() -> impl Gen<Value = Vec<Op>> {
    vec_of(
        (
            usize_range(0, 4),
            usize_range(0, KEYS.len()),
            u64_range(0, 1_000),
        ),
        0,
        40,
    )
}

fn apply(reg: &mut MetricsRegistry, &(kind, key, value): &Op) {
    let k = KEYS[key];
    match kind {
        0 => reg.add(k, value),
        // value/8 is exact in f64, so max-merge comparisons are
        // bit-exact.
        1 => reg.gauge_max(k, value as f64 / 8.0),
        2 => reg.record_duration(k, Duration::from_nanos(value)),
        _ => reg.observe(k, value, BOUNDS[key]),
    }
}

fn build(ops: &[Op]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for op in ops {
        apply(&mut reg, op);
    }
    reg
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative() {
    check("obs_merge_commutative", (ops(), ops()), |(a, b)| {
        let (ra, rb) = (build(a), build(b));
        prop_assert_eq!(merged(&ra, &rb), merged(&rb, &ra));
        Ok(())
    });
}

#[test]
fn merge_is_associative() {
    check(
        "obs_merge_associative",
        (ops(), ops(), ops()),
        |(a, b, c)| {
            let (ra, rb, rc) = (build(a), build(b), build(c));
            prop_assert_eq!(
                merged(&merged(&ra, &rb), &rc),
                merged(&ra, &merged(&rb, &rc))
            );
            Ok(())
        },
    );
}

#[test]
fn chunked_merge_in_any_order_matches_sequential_recording() {
    // Split one op stream at two generated cut points, build a registry
    // per chunk, and absorb the chunks in a generated permutation: the
    // result must equal applying the whole stream to one registry. This
    // is exactly the evaluator's fork/absorb discipline, so it is what
    // makes metrics bit-identical at any thread count.
    check(
        "obs_merge_order_independent",
        (
            ops(),
            usize_range(0, 41),
            usize_range(0, 41),
            usize_range(0, 6),
        ),
        |(stream, cut_a, cut_b, perm)| {
            let i = (*cut_a).min(stream.len());
            let j = (*cut_b).min(stream.len());
            let (lo, hi) = (i.min(j), i.max(j));
            let chunks = [
                build(&stream[..lo]),
                build(&stream[lo..hi]),
                build(&stream[hi..]),
            ];
            const ORDERS: [[usize; 3]; 6] = [
                [0, 1, 2],
                [0, 2, 1],
                [1, 0, 2],
                [1, 2, 0],
                [2, 0, 1],
                [2, 1, 0],
            ];
            let mut out = MetricsRegistry::new();
            for &k in &ORDERS[*perm] {
                out.merge(&chunks[k]);
            }
            prop_assert_eq!(out, build(stream));
            Ok(())
        },
    );
}

#[test]
fn merge_with_empty_is_identity() {
    check("obs_merge_identity", ops(), |stream| {
        let reg = build(stream);
        prop_assert_eq!(merged(&reg, &MetricsRegistry::new()), reg.clone());
        prop_assert_eq!(merged(&MetricsRegistry::new(), &reg), reg.clone());
        Ok(())
    });
}
