//! Metrics artifact export: `results/METRICS_<run>.json` plus a
//! human-readable stderr summary.
//!
//! The JSON schema (see DESIGN.md §10) has five top-level keys:
//!
//! ```json
//! {
//!   "run": "fig11a",
//!   "counters":   {"ilp/nodes_explored": 42, ...},
//!   "gauges":     {"exec/threads": 4.0, ...},
//!   "timers":     {"core/evaluate": {"count": 1, "total_s": 0.8}, ...},
//!   "histograms": {"ilp/lp_iterations": {"bounds": [...], "counts": [...],
//!                   "sum": 123, "count": 9}, ...}
//! }
//! ```
//!
//! Keys inside each section are emitted in sorted order (the registry
//! stores `BTreeMap`s), so two identical registries render to
//! byte-identical documents.

use crate::json::escape;
use crate::metrics::Metrics;
use crate::registry::MetricsRegistry;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        let s = format!("{value}");
        // `{}` prints integral floats without a point; keep the JSON
        // number a float so readers round-trip the type.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; clamp to null-like sentinel.
        "null".to_string()
    }
}

/// Renders a registry to the artifact JSON document described in the
/// module docs. Deterministic: equal registries render byte-identically.
pub fn render_json(run: &str, registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"run\": \"{}\",", escape(run));

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (k, v) in registry.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"gauges\": {");
    first = true;
    for (k, v) in registry.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", escape(k), fmt_f64(v));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"timers\": {");
    first = true;
    for (k, t) in registry.timers() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"total_s\": {}}}",
            escape(k),
            t.count,
            fmt_f64(t.total.as_secs_f64())
        );
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": {");
    first = true;
    for (k, h) in registry.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let bounds: Vec<String> = h.bounds().iter().map(|b| b.to_string()).collect();
        let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
            escape(k),
            bounds.join(", "),
            counts.join(", "),
            h.sum(),
            h.count()
        );
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });

    out.push('}');
    out.push('\n');
    out
}

/// Renders the human-readable summary printed to stderr by
/// [`write_run`].
pub fn render_summary(run: &str, registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[eagleeye-obs] metrics summary for run '{run}'");
    if registry.is_empty() {
        let _ = writeln!(out, "  (no metrics recorded)");
        return out;
    }
    let mut timers: Vec<_> = registry.timers().collect();
    if !timers.is_empty() {
        timers.sort_by_key(|t| std::cmp::Reverse(t.1.total));
        let _ = writeln!(out, "  timers (by total):");
        for (k, t) in timers {
            let _ = writeln!(
                out,
                "    {:<40} {:>10.3}s  x{}",
                k,
                t.total.as_secs_f64(),
                t.count
            );
        }
    }
    let counters: Vec<_> = registry.counters().collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (k, v) in counters {
            let _ = writeln!(out, "    {k:<40} {v:>12}");
        }
    }
    let gauges: Vec<_> = registry.gauges().collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "  gauges (max):");
        for (k, v) in gauges {
            let _ = writeln!(out, "    {k:<40} {v:>12.4}");
        }
    }
    for (k, h) in registry.histograms() {
        let _ = writeln!(
            out,
            "  histogram {:<30} n={} mean={:.2}",
            k,
            h.count(),
            h.mean()
        );
    }
    out
}

/// Writes `results/METRICS_<run>.json` (creating `results/` if needed)
/// and prints the summary to stderr. Returns `Ok(None)` without
/// touching the filesystem when the handle is disabled, otherwise the
/// path written.
pub fn write_run(run: &str, metrics: &Metrics) -> std::io::Result<Option<PathBuf>> {
    write_run_in(Path::new("results"), run, metrics)
}

/// [`write_run`] with an explicit output directory (for tests).
pub fn write_run_in(dir: &Path, run: &str, metrics: &Metrics) -> std::io::Result<Option<PathBuf>> {
    if !metrics.is_enabled() {
        return Ok(None);
    }
    let registry = metrics.snapshot();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("METRICS_{run}.json"));
    std::fs::write(&path, render_json(run, &registry))?;
    let mut stderr = std::io::stderr().lock();
    let _ = stderr.write_all(render_summary(run, &registry).as_bytes());
    let _ = writeln!(stderr, "[eagleeye-obs] wrote {}", path.display());
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Metrics {
        let m = Metrics::enabled();
        m.add("ilp/nodes_explored", 42);
        m.add("orbit/grid_hits", 7);
        m.gauge_max("exec/threads", 4.0);
        m.record_duration("core/evaluate", std::time::Duration::from_millis(125));
        m.observe("ilp/lp_iterations", 9, &[4, 16, 64]);
        m
    }

    #[test]
    fn rendered_json_parses_with_expected_keys() {
        let m = sample();
        let doc = render_json("fig11a", &m.snapshot());
        let v = parse(&doc).expect("render_json must emit valid JSON");
        assert_eq!(v.get("run").unwrap().as_str(), Some("fig11a"));
        for key in ["counters", "gauges", "timers", "histograms"] {
            assert!(v.get(key).unwrap().as_object().is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("ilp/nodes_explored")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        let timer = v.get("timers").unwrap().get("core/evaluate").unwrap();
        assert_eq!(timer.get("count").unwrap().as_u64(), Some(1));
        assert!(timer.get("total_s").unwrap().as_f64().unwrap() > 0.1);
        let hist = v
            .get("histograms")
            .unwrap()
            .get("ilp/lp_iterations")
            .unwrap();
        assert_eq!(hist.get("counts").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn empty_registry_renders_valid_json() {
        let doc = render_json("empty", &MetricsRegistry::default());
        let v = parse(&doc).unwrap();
        assert!(v.get("counters").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn equal_registries_render_identically() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        assert_eq!(render_json("r", &a), render_json("r", &b));
    }

    #[test]
    fn write_run_is_noop_when_disabled() {
        let dir = std::env::temp_dir().join("eagleeye_obs_disabled_test");
        let out = write_run_in(&dir, "nope", &Metrics::disabled()).unwrap();
        assert_eq!(out, None);
        assert!(!dir.join("METRICS_nope.json").exists());
    }

    #[test]
    fn write_run_emits_artifact_when_enabled() {
        let dir =
            std::env::temp_dir().join(format!("eagleeye_obs_export_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_run_in(&dir, "smoke", &sample()).unwrap().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_each_section() {
        let s = render_summary("r", &sample().snapshot());
        for needle in [
            "timers",
            "counters",
            "gauges",
            "histogram",
            "ilp/nodes_explored",
        ] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
        assert!(render_summary("r", &MetricsRegistry::default()).contains("no metrics"));
    }

    #[test]
    fn fmt_f64_keeps_floats_floats() {
        assert_eq!(fmt_f64(4.0), "4.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
