//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace writes JSON by hand (see [`crate::export`] and
//! `perf_eval`); this parser exists so the `metrics_check` smoke
//! binary and the golden tests can *read artifacts back* and validate
//! their structure without an external dependency. It accepts strict
//! JSON (RFC 8259) minus exotica we never emit: no `\u` surrogate
//! pairs beyond the BMP and numbers are parsed with `f64::from_str`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are held in sorted order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup: `Some` only for objects that contain `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, when this is a number with an exact
    /// `u64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // eagleeye-lint: allow(float-eq): fract() == 0.0 is the exact integrality test gating u64 emission
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(63) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape outside the BMP"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever
                    // advances by whole-scalar widths, so the slice is
                    // on a char boundary; `get` keeps that checked.
                    let rest = self
                        .input
                        .get(self.pos..)
                        .ok_or_else(|| self.err("bad utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"run": "fig11a", "counters": {"ilp/nodes": 42},
                      "list": [1, -2.5, 1e3, true, false, null, "s\nA"]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("run").unwrap().as_str(), Some("fig11a"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("ilp/nodes")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 7);
        assert_eq!(list[1].as_f64(), Some(-2.5));
        assert_eq!(list[2].as_f64(), Some(1000.0));
        assert_eq!(list[6].as_str(), Some("s\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "12 34",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nline2\t\"quoted\" \\ \u{1} ünïcode";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
    }
}
