//! The cheap, cloneable recording handle threaded through the
//! pipeline.
//!
//! A [`Metrics`] is either *disabled* (the default — every recording
//! call is a single branch on a `None`) or *enabled*, in which case it
//! wraps a shared [`MetricsRegistry`] behind a mutex. Enablement is
//! decided once at startup ([`Metrics::from_env`] honours
//! `EAGLEEYE_TRACE=1`) and then the handle is passed by value through
//! `CoverageOptions`, the bench CLI, and the exec pool.
//!
//! For parallel sections, workers do **not** share the mutex: the
//! driver [`fork`](Metrics::fork)s one private handle per work item
//! and [`absorb`](Metrics::absorb)s them back **in input order** once
//! the pool drains. Because [`MetricsRegistry::merge`] is exactly
//! associative and commutative, the absorbed totals are bit-identical
//! at any thread count.

use crate::registry::MetricsRegistry;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable that enables tracing when set to `1`
/// (or any non-empty value other than `0`).
pub const TRACE_ENV: &str = "EAGLEEYE_TRACE";

/// Cloneable recording handle; disabled by default. See the module
/// docs for the fork/absorb discipline in parallel sections.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    shared: Option<Arc<Mutex<MetricsRegistry>>>,
}

/// Two handles compare equal when both are disabled or both point at
/// the *same* registry. This keeps `PartialEq` derivable on structs
/// like `CoverageOptions` that carry a handle.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        match (&self.shared, &other.shared) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Metrics {
    /// A disabled handle: every recording call is a no-op branch.
    pub fn disabled() -> Self {
        Metrics { shared: None }
    }

    /// An enabled handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Metrics {
            shared: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
        }
    }

    /// Enabled iff `EAGLEEYE_TRACE` is set to something other than
    /// `""` or `"0"`.
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => Metrics::enabled(),
            _ => Metrics::disabled(),
        }
    }

    /// True when recording calls actually store anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.shared.as_ref().map(|shared| {
            // A worker that panicked mid-record poisons the mutex;
            // the registry itself is always left consistent, so keep
            // collecting rather than cascading the panic.
            let mut reg = shared.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut reg)
        })
    }

    /// Increments the counter at `key` by 1.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the counter at `key`.
    pub fn add(&self, key: &str, n: u64) {
        self.with(|r| r.add(key, n));
    }

    /// Raises the gauge at `key` to at least `value`.
    pub fn gauge_max(&self, key: &str, value: f64) {
        self.with(|r| r.gauge_max(key, value));
    }

    /// Records an integer observation in the fixed-bucket histogram at
    /// `key` (bounds fixed at first touch; see
    /// [`MetricsRegistry::observe`]).
    pub fn observe(&self, key: &str, value: u64, bounds: &[u64]) {
        self.with(|r| r.observe(key, value, bounds));
    }

    /// Records one closed span of `elapsed` under the timer at `key`.
    pub fn record_duration(&self, key: &str, elapsed: Duration) {
        self.with(|r| r.record_duration(key, elapsed));
    }

    /// Times `f` under the timer at `key`. When the handle is disabled
    /// the clock is never read.
    pub fn time<R>(&self, key: &str, f: impl FnOnce() -> R) -> R {
        if self.is_enabled() {
            let start = Instant::now();
            let out = f();
            self.record_duration(key, start.elapsed());
            out
        } else {
            f()
        }
    }

    /// Opens a hierarchical timing span at `key`; the elapsed time is
    /// recorded when the returned guard drops. Child spans append
    /// slash-separated segments:
    ///
    /// ```
    /// let m = eagleeye_obs::Metrics::enabled();
    /// {
    ///     let eval = m.span("core/evaluate");
    ///     let _cluster = eval.child("cluster");
    /// } // records core/evaluate/cluster, then core/evaluate
    /// assert_eq!(m.snapshot().timer("core/evaluate").unwrap().count, 1);
    /// ```
    pub fn span(&self, key: &str) -> SpanTimer {
        SpanTimer {
            metrics: self.clone(),
            key: key.to_string(),
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// A private handle for one parallel work item. Disabled parent →
    /// disabled fork (no allocation). The caller must later
    /// [`absorb`](Metrics::absorb) the fork **in input order**.
    pub fn fork(&self) -> Metrics {
        if self.is_enabled() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        }
    }

    /// Merges a fork's registry into this handle. No-op when either
    /// side is disabled.
    pub fn absorb(&self, fork: &Metrics) {
        if let Some(other) = fork.with(|r| r.clone()) {
            self.with(|r| r.merge(&other));
        }
    }

    /// Merges a bare registry into this handle — the checkpoint/resume
    /// path: a resumed run decodes each stored fork
    /// ([`MetricsRegistry::from_bytes`]) and absorbs it in item order,
    /// reproducing the counters of an uninterrupted run bit-exactly.
    /// No-op when disabled.
    pub fn absorb_registry(&self, registry: &MetricsRegistry) {
        self.with(|r| r.merge(registry));
    }

    /// A copy of the current registry contents (empty when disabled).
    pub fn snapshot(&self) -> MetricsRegistry {
        self.with(|r| r.clone()).unwrap_or_default()
    }
}

/// Guard returned by [`Metrics::span`]; records the elapsed time under
/// its key on drop.
#[derive(Debug)]
pub struct SpanTimer {
    metrics: Metrics,
    key: String,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Opens a nested span at `<parent-key>/<segment>`.
    pub fn child(&self, segment: &str) -> SpanTimer {
        let key = format!("{}/{}", self.key, segment);
        self.metrics.span(&key)
    }

    /// The full slash-separated key of this span.
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.metrics.record_duration(&self.key, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.incr("c");
        m.observe("h", 3, &[4]);
        m.gauge_max("g", 1.0);
        let _span = m.span("s");
        assert!(!m.is_enabled());
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn enabled_handle_accumulates() {
        let m = Metrics::enabled();
        m.incr("c");
        m.add("c", 4);
        m.observe("h", 3, &[4, 8]);
        let snap = m.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.incr("c");
        m2.incr("c");
        assert_eq!(m.snapshot().counter("c"), 2);
        assert_eq!(m, m2);
        assert_ne!(m, Metrics::enabled());
        assert_eq!(Metrics::disabled(), Metrics::disabled());
    }

    #[test]
    fn span_guard_records_on_drop() {
        let m = Metrics::enabled();
        {
            let outer = m.span("a");
            let _inner = outer.child("b");
            assert_eq!(outer.key(), "a");
        }
        let snap = m.snapshot();
        assert_eq!(snap.timer("a").unwrap().count, 1);
        assert_eq!(snap.timer("a/b").unwrap().count, 1);
    }

    #[test]
    fn fork_absorb_round_trips() {
        let m = Metrics::enabled();
        m.incr("c");
        let f = m.fork();
        assert!(f.is_enabled());
        f.add("c", 2);
        f.incr("only_fork");
        m.absorb(&f);
        let snap = m.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.counter("only_fork"), 1);

        let d = Metrics::disabled().fork();
        assert!(!d.is_enabled());
        Metrics::disabled().absorb(&f); // no-op, must not panic
    }

    #[test]
    fn time_records_one_span() {
        let m = Metrics::enabled();
        let out = m.time("t", || 42);
        assert_eq!(out, 42);
        assert_eq!(m.snapshot().timer("t").unwrap().count, 1);
        // Disabled path still returns the closure result.
        assert_eq!(Metrics::disabled().time("t", || 7), 7);
    }
}
