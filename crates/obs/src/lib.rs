//! Dependency-free observability layer for the EagleEye pipeline.
//!
//! The paper's headline numbers (coverage %, time-to-acquisition, ILP
//! behaviour under the actuation model) come out of a deep pipeline —
//! propagation → detection → clustering → scheduling — and until now
//! the only visibility into it was the final CSVs. This crate adds the
//! standard next layer: cheap always-on counters plus opt-in tracing,
//! in the spirit of OR-Tools' solver statistics, built purely on `std`
//! because the workspace is deliberately offline.
//!
//! # The three pieces
//!
//! * [`MetricsRegistry`] — a plain mergeable value holding counters,
//!   max-gauges, timers, and fixed-bucket integer histograms in
//!   `BTreeMap`s. [`MetricsRegistry::merge`] is *exactly* associative
//!   and commutative (integer sums, `f64::max`, integer-nanosecond
//!   `Duration` sums), which is the foundation of deterministic
//!   parallel recording.
//! * [`Metrics`] — the cloneable handle threaded through
//!   `CoverageOptions`, the bench CLI, and the exec pool. Disabled by
//!   default (every call is one branch on a `None`); enabled it wraps
//!   a shared registry behind a mutex. [`Metrics::span`] opens
//!   hierarchical timing spans (`"core/evaluate/cluster"`) recorded on
//!   drop. For parallel sections the driver [`Metrics::fork`]s one
//!   private handle per work item and [`Metrics::absorb`]s them back
//!   in input order, so totals are bit-identical at any thread count.
//! * [`export`] / [`json`] — hand-rolled JSON writer for
//!   `results/METRICS_<run>.json` artifacts (plus a stderr summary),
//!   and a minimal parser so smoke tests can validate artifacts
//!   without external dependencies.
//!
//! # Enabling
//!
//! [`Metrics::from_env`] returns an enabled handle iff
//! `EAGLEEYE_TRACE=1` (any non-empty value other than `0`). Every
//! figure binary and `perf_eval` does this at startup and calls
//! [`export::write_run`] before exiting; with the variable unset the
//! entire layer costs a handful of never-taken branches.
//!
//! # Key namespace
//!
//! Slash-separated paths, first segment = subsystem: `ilp/*` (solver
//! statistics), `orbit/*` (propagation-cache behaviour), `sim/*`
//! (fault activity), `core/*` (pipeline phases), `exec/*` (pool
//! shape). DESIGN.md §10 lists the emitted keys.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
mod metrics;
mod registry;
mod stopwatch;

pub use metrics::{Metrics, SpanTimer, TRACE_ENV};
pub use registry::{Histogram, MetricsRegistry, TimerStat};
pub use stopwatch::Stopwatch;
