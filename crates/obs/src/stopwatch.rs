//! The sanctioned raw elapsed-time primitive.
//!
//! The workspace lint (`eagleeye-lint`, rule `clock`) bans
//! `Instant::now()` outside the `obs`, `exec`, and `bench` crates so
//! simulation results can never silently depend on wall time. Code
//! that genuinely needs a measured [`Duration`] back — the coverage
//! evaluator accumulates per-phase times into its report, which the
//! registry later mirrors under `core/evaluate/*` — starts a
//! [`Stopwatch`] instead of touching the clock directly. The clock
//! read then lives *here*, in the observability layer, where it is
//! auditable and excluded from the determinism contract
//! (DESIGN.md §10.1: timers vary run to run and are exempt from
//! `same_outcome`).
//!
//! For timing that only needs to land in the metrics registry, prefer
//! [`Metrics::time`](crate::Metrics::time) or
//! [`Metrics::span`](crate::Metrics::span), which skip the clock
//! entirely when the handle is disabled.

use std::time::{Duration, Instant};

/// A running wall-clock measurement. Unlike
/// [`SpanTimer`](crate::SpanTimer) it is not tied to a registry key:
/// it hands the measured [`Duration`] back to the caller.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn default_starts_running() {
        let sw = Stopwatch::default();
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
