//! The mergeable metric store underneath [`crate::Metrics`].
//!
//! A [`MetricsRegistry`] is a plain value: four ordered maps (counters,
//! gauges, timers, histograms) keyed by slash-separated path strings.
//! Everything about it is chosen so that [`MetricsRegistry::merge`] is
//! **exactly** associative and commutative:
//!
//! * counters and histogram bucket counts are `u64` sums;
//! * gauges keep the maximum (`f64::max` is associative and ignores
//!   NaN);
//! * timers sum integer-nanosecond [`Duration`]s;
//! * histogram observations are integers (`u64`), so the running sum
//!   (`u128`) is exact.
//!
//! That exactness is what makes parallel recording deterministic: the
//! evaluator forks one recorder per worker and merges them back in
//! input order, but because merge is order-independent the result is
//! bit-identical at any thread count (see DESIGN.md §10). The
//! `eagleeye-check` property suite in `tests/properties.rs` pins this
//! contract down.

use eagleeye_harden::{ByteReader, ByteWriter, CodecError};
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregate of one timer key: how many spans closed and their total
/// wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Number of recorded spans.
    pub count: u64,
    /// Total recorded wall-clock time.
    pub total: Duration,
}

/// A fixed-bucket histogram over integer observations.
///
/// `bounds` are inclusive upper bucket edges in strictly increasing
/// order; an observation `v` lands in the first bucket with
/// `v <= bounds[i]`, or in the implicit overflow bucket past the last
/// edge. Bounds are fixed at the first observation of a key and must
/// match on merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket: `bounds.len() + 1`.
    counts: Vec<u64>,
    /// Exact sum of all observations.
    sum: u128,
    /// Total number of observations.
    count: u64,
}

impl Histogram {
    /// An empty histogram over the given inclusive upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += u128::from(value);
        self.count += 1;
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: &Histogram, key: &str) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram '{key}' merged with mismatched bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The mergeable metric store: four ordered maps keyed by path strings
/// like `"ilp/nodes_explored"`. See the module docs for the merge
/// semantics that make parallel recording deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, TimerStat>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter at `key` (creating it at zero).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry_ref(key) += n;
    }

    /// Raises the gauge at `key` to at least `value` (max-merge; NaN is
    /// ignored, so the gauge keeps its previous reading).
    pub fn gauge_max(&mut self, key: &str, value: f64) {
        match self.gauges.get_mut(key) {
            Some(g) => *g = g.max(value),
            None => {
                if !value.is_nan() {
                    self.gauges.insert(key.to_string(), value);
                }
            }
        }
    }

    /// Records one closed span of `elapsed` under the timer at `key`.
    pub fn record_duration(&mut self, key: &str, elapsed: Duration) {
        let t = self.timers.entry_ref(key);
        t.count += 1;
        t.total += elapsed;
    }

    /// Records an integer observation in the histogram at `key`,
    /// creating it with `bounds` on first touch.
    ///
    /// # Panics
    ///
    /// Panics when the key already exists with different bounds.
    pub fn observe(&mut self, key: &str, value: u64, bounds: &[u64]) {
        if let Some(h) = self.histograms.get_mut(key) {
            assert_eq!(
                h.bounds(),
                bounds,
                "histogram '{key}' observed with mismatched bounds"
            );
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// Merges `other` into `self`. Exactly associative and commutative
    /// (see the module docs), which is the determinism contract for
    /// parallel recording.
    ///
    /// # Panics
    ///
    /// Panics when the same histogram key carries different bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry_ref(k) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauge_max(k, v);
        }
        for (k, v) in &other.timers {
            let t = self.timers.entry_ref(k);
            t.count += v.count;
            t.total += v.total;
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v, k),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// The counter at `key`, or 0 when never touched.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The gauge at `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// The timer aggregate at `key`, if ever recorded.
    pub fn timer(&self, key: &str) -> Option<TimerStat> {
        self.timers.get(key).copied()
    }

    /// The histogram at `key`, if ever observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All timers in key order.
    pub fn timers(&self) -> impl Iterator<Item = (&str, TimerStat)> {
        self.timers.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.histograms.is_empty()
    }

    /// Serializes the registry to the harden byte codec, exactly:
    /// counters/timers/histogram counts round-trip as fixed-width
    /// integers and gauges as raw IEEE-754 bits, so a registry restored
    /// from a checkpoint merges bit-identically to one that never left
    /// memory. Deterministic (`BTreeMap` key order).
    // eagleeye-lint: codec-write(MetricsRegistry)
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(1); // format version
        w.usize(self.counters.len());
        for (k, &v) in &self.counters {
            w.str(k);
            w.u64(v);
        }
        w.usize(self.gauges.len());
        for (k, &v) in &self.gauges {
            w.str(k);
            w.f64(v);
        }
        w.usize(self.timers.len());
        for (k, v) in &self.timers {
            w.str(k);
            w.u64(v.count);
            // Duration is (secs, subsec nanos) internally; storing the
            // pair round-trips exactly with no u128 narrowing.
            w.u64(v.total.as_secs());
            w.u32(v.total.subsec_nanos());
        }
        w.usize(self.histograms.len());
        for (k, h) in &self.histograms {
            w.str(k);
            w.usize(h.bounds.len());
            for &b in &h.bounds {
                w.u64(b);
            }
            for &c in &h.counts {
                w.u64(c);
            }
            w.u128(h.sum);
            w.u64(h.count);
        }
        w.into_bytes()
    }

    /// Restores a registry written by [`MetricsRegistry::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, an unknown format version, or
    /// internally inconsistent histogram data.
    // eagleeye-lint: codec-read(MetricsRegistry)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.u8()? != 1 {
            return Err(CodecError {
                context: "registry format version",
            });
        }
        let mut reg = MetricsRegistry::new();
        for _ in 0..r.usize()? {
            let k = r.str()?.to_string();
            let v = r.u64()?;
            reg.counters.insert(k, v);
        }
        for _ in 0..r.usize()? {
            let k = r.str()?.to_string();
            let v = r.f64()?;
            reg.gauges.insert(k, v);
        }
        for _ in 0..r.usize()? {
            let k = r.str()?.to_string();
            let count = r.u64()?;
            let total = Duration::new(r.u64()?, r.u32()?);
            reg.timers.insert(k, TimerStat { count, total });
        }
        for _ in 0..r.usize()? {
            let k = r.str()?.to_string();
            let n_bounds = r.usize()?;
            let mut bounds = Vec::with_capacity(n_bounds);
            for _ in 0..n_bounds {
                bounds.push(r.u64()?);
            }
            if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CodecError {
                    context: "histogram bounds",
                });
            }
            let mut counts = Vec::with_capacity(n_bounds + 1);
            for _ in 0..=n_bounds {
                counts.push(r.u64()?);
            }
            let sum = r.u128()?;
            let count = r.u64()?;
            if counts.iter().sum::<u64>() != count {
                return Err(CodecError {
                    context: "histogram bucket totals",
                });
            }
            reg.histograms.insert(
                k,
                Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                },
            );
        }
        if !r.is_exhausted() {
            return Err(CodecError {
                context: "trailing registry bytes",
            });
        }
        Ok(reg)
    }
}

/// `BTreeMap` helpers that avoid allocating the key `String` on the
/// read path (the common case for repeat increments).
trait EntryRef<V> {
    fn entry_ref(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryRef<V> for BTreeMap<String, V> {
    fn entry_ref(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_string(), V::default());
        }
        match self.get_mut(key) {
            Some(v) => v,
            // The branch above guarantees presence.
            None => unreachable!("key inserted above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.add("a/b", 2);
        r.add("a/b", 3);
        assert_eq!(r.counter("a/b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_the_max_and_ignore_nan() {
        let mut r = MetricsRegistry::new();
        r.gauge_max("g", 2.0);
        r.gauge_max("g", 1.0);
        assert_eq!(r.gauge("g"), Some(2.0));
        r.gauge_max("g", f64::NAN);
        assert_eq!(r.gauge("g"), Some(2.0));
        r.gauge_max("h", f64::NAN);
        assert_eq!(r.gauge("h"), None);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
        assert!((h.mean() - 1045.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[4, 1]);
    }

    #[test]
    #[should_panic(expected = "mismatched bounds")]
    fn observe_rejects_bound_changes() {
        let mut r = MetricsRegistry::new();
        r.observe("h", 1, &[1, 2]);
        r.observe("h", 1, &[1, 3]);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.observe("h", 3, &[4, 8]);
        a.record_duration("t", Duration::from_millis(5));
        a.gauge_max("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.add("only_b", 7);
        b.observe("h", 9, &[4, 8]);
        b.record_duration("t", Duration::from_millis(7));
        b.gauge_max("g", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(3.0));
        let t = a.timer("t").unwrap();
        assert_eq!(t.count, 2);
        assert_eq!(t.total, Duration::from_millis(12));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts(), &[1, 0, 1]);
        assert_eq!(h.sum(), 12);
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let mut r = MetricsRegistry::new();
        r.add("core/frames", 360);
        r.add("ilp/nodes", 17);
        r.gauge_max("exec/threads", 4.0);
        r.gauge_max("neg", -0.0);
        r.record_duration("core/eval", Duration::new(3, 999_999_999));
        r.observe("h/latency", 3, &[4, 8, 16]);
        r.observe("h/latency", 100, &[4, 8, 16]);
        let bytes = r.to_bytes();
        let back = MetricsRegistry::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        // Deterministic encoding, and -0.0 keeps its sign bit.
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.gauge("neg").unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn empty_registry_round_trips() {
        let bytes = MetricsRegistry::new().to_bytes();
        assert!(MetricsRegistry::from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn malformed_registry_bytes_are_rejected() {
        let mut r = MetricsRegistry::new();
        r.add("c", 1);
        r.observe("h", 2, &[4]);
        let bytes = r.to_bytes();
        assert!(MetricsRegistry::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(MetricsRegistry::from_bytes(&[9]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(MetricsRegistry::from_bytes(&trailing).is_err());
    }

    #[test]
    fn restored_registry_merges_like_the_original() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.observe("h", 3, &[4, 8]);
        let restored = MetricsRegistry::from_bytes(&a.to_bytes()).unwrap();
        let mut direct = MetricsRegistry::new();
        direct.add("c", 10);
        direct.merge(&a);
        let mut via_bytes = MetricsRegistry::new();
        via_bytes.add("c", 10);
        via_bytes.merge(&restored);
        assert_eq!(via_bytes, direct);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.add("c", 5);
        a.observe("h", 2, &[8]);
        let before = a.clone();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a, before);
        let mut empty = MetricsRegistry::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
