//! Tiny deterministic PRNG for the EagleEye workspace.
//!
//! The sandboxed build environment has no network access, so the
//! workspace cannot depend on the `rand` crate. Every consumer of
//! randomness in this repository — the synthetic dataset generators,
//! the analytic detector models, and the fault-injection layer — only
//! needs a seeded, reproducible, statistically-decent stream of `u64`s,
//! which [splitmix64] delivers in a dozen lines with no dependencies.
//!
//! Streams are deterministic in the seed and portable across platforms
//! (pure integer arithmetic; the `u64 → f64` conversion uses the top 53
//! bits, the standard exact mapping onto `[0, 1)`).
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use eagleeye_rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.range_f64(10.0, 20.0);
//! assert!((10.0..20.0).contains(&x));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// One round of the splitmix64 output function: a bijective avalanche
/// mix of `z`. Useful on its own for stateless hashing of identifiers
/// (e.g. deriving per-entity fault rolls from `(seed, entity, time)`).
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded splitmix64 generator.
///
/// Not cryptographic — it is a simulation/testing PRNG with full 64-bit
/// state, period 2^64, and excellent avalanche behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator keyed by `salt` without
    /// disturbing this generator's stream. Two forks with different
    /// salts (or from different parent seeds) produce unrelated
    /// streams — the mechanism behind per-subsystem fault streams.
    #[must_use]
    pub fn fork(&self, salt: u64) -> SplitMix64 {
        SplitMix64 {
            state: mix64(self.state ^ mix64(salt)),
        }
    }

    /// Current internal state. `SplitMix64::new(self.state())` yields a
    /// generator that continues this exact stream — the mechanism
    /// behind `eagleeye-check`'s replayable failure seeds.
    #[inline]
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`. Degenerate ranges (`hi <= lo`)
    /// return `lo`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if !(hi > lo) {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[lo, hi)`. Degenerate ranges return
    /// `lo`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64;
        // Multiply-shift mapping; the bias is < span / 2^64, irrelevant
        // for simulation use.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as usize
    }

    /// Uniform integer draw in `[lo, hi]` (inclusive).
    pub fn range_usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        if hi < lo {
            return lo;
        }
        self.range_usize(lo, hi.saturating_add(1).max(hi))
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if !(p > 0.0) {
            return false;
        }
        self.next_f64() < p
    }

    /// Standard-normal draw (Box–Muller, cosine branch).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.range_f64(1e-12, 1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn matches_reference_vector() {
        // Reference outputs of splitmix64 with seed 1234567.
        let mut r = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423,
            ]
        );
    }

    #[test]
    fn f64_is_unit_interval_and_uniformish() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.range_f64(-3.0, 8.5);
            assert!((-3.0..8.5).contains(&x));
            let i = r.range_usize(4, 9);
            assert!((4..9).contains(&i));
            let j = r.range_usize_inclusive(2, 4);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn degenerate_ranges_return_lo() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.range_f64(3.0, 3.0), 3.0);
        assert_eq!(r.range_usize(7, 7), 7);
        assert_eq!(r.range_usize_inclusive(7, 6), 7);
    }

    #[test]
    fn chance_extremes_and_frequency() {
        let mut r = SplitMix64::new(11);
        assert!(r.chance(1.0));
        assert!(!r.chance(0.0));
        assert!(!r.chance(f64::NAN));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let parent = SplitMix64::new(21);
        let mut f1 = parent.fork(0);
        let mut f2 = parent.fork(1);
        let mut f1b = parent.fork(0);
        assert_ne!(f1.next_u64(), f2.next_u64());
        assert_eq!(SplitMix64::new(21).fork(0).next_u64(), f1b.next_u64());
    }

    #[test]
    fn mix64_is_deterministic_and_avalanches() {
        assert_eq!(mix64(0), mix64(0));
        // Flipping one input bit flips roughly half the output bits.
        let d = (mix64(0x1234) ^ mix64(0x1235)).count_ones();
        assert!((20..=44).contains(&d), "avalanche {d}");
    }
}
