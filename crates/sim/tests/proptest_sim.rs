//! Property-based tests for the energy simulator.

use eagleeye_sim::{simulate_battery, simulate_orbit, ActivityProfile, Battery, PowerProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Battery charge is conserved: deposits minus withdrawals equal the
    /// charge delta, and the state of charge stays in [0, 1].
    #[test]
    fn battery_accounting_is_conservative(
        capacity in 1.0f64..1e6,
        ops in proptest::collection::vec((any::<bool>(), 0.0f64..1e5), 1..64),
    ) {
        let mut b = Battery::new(capacity);
        let mut expected = capacity;
        for (is_deposit, amount) in ops {
            if is_deposit {
                let stored = b.deposit(amount);
                prop_assert!(stored <= amount + 1e-9);
                expected = (expected + stored).min(capacity);
            } else {
                let unmet = b.withdraw(amount);
                prop_assert!(unmet <= amount + 1e-9);
                expected = (expected - (amount - unmet)).max(0.0);
            }
            prop_assert!((b.charge_j() - expected).abs() < 1e-6);
            prop_assert!((0.0..=1.0).contains(&b.state_of_charge()));
        }
    }

    /// Orbit energy reports scale monotonically with activity: more
    /// tiles, slewing, or transmit time never reduces consumption.
    #[test]
    fn consumption_is_monotone_in_activity(
        frames in 0.0f64..500.0,
        tiles in 0.0f64..50_000.0,
        slew in 0.0f64..2_000.0,
        tx in 0.0f64..600.0,
        extra in 1.0f64..2.0,
    ) {
        let power = PowerProfile::cubesat_3u();
        let base = ActivityProfile {
            frames_captured: frames,
            tiles_processed: tiles,
            per_tile_latency_s: 0.014,
            slew_s: slew,
            tx_s: tx,
        };
        let more = ActivityProfile {
            frames_captured: frames * extra,
            tiles_processed: tiles * extra,
            slew_s: slew * extra,
            tx_s: tx * extra,
            ..base
        };
        let r1 = simulate_orbit(&power, &base, 0.62, 5_640.0);
        let r2 = simulate_orbit(&power, &more, 0.62, 5_640.0);
        prop_assert!(r2.subsystems.total_j() >= r1.subsystems.total_j() - 1e-9);
        prop_assert_eq!(r1.harvested_j, r2.harvested_j);
    }

    /// Feasible-on-average activities never brown out in the stepped
    /// battery simulation when the battery buffers at least one eclipse.
    #[test]
    fn average_feasibility_with_margin_implies_no_brownout(
        tile_factor in 0.2f64..1.4,
        orbits in 2usize..10,
    ) {
        let power = PowerProfile::cubesat_3u();
        let activity = ActivityProfile::leader_default(tile_factor);
        let report = simulate_orbit(&power, &activity, 0.62, 5_640.0);
        // Only assert when there is ≥10% average margin — right at the
        // boundary the eclipse phase can still dip.
        prop_assume!(report.normalized_consumption() < 0.9);
        let series = simulate_battery(&power, &activity, 0.62, 5_640.0, orbits, 10.0);
        prop_assert!(series.depleted_at_s.is_none(),
            "browned out at {:?} with margin {:.2}",
            series.depleted_at_s, report.normalized_consumption());
    }

    /// Infeasible activities always brown out eventually.
    #[test]
    fn sustained_deficit_browns_out(tile_factor in 3.5f64..6.0) {
        let power = PowerProfile::cubesat_3u();
        let activity = ActivityProfile::leader_default(tile_factor);
        let report = simulate_orbit(&power, &activity, 0.62, 5_640.0);
        prop_assert!(!report.is_energy_feasible());
        let series = simulate_battery(&power, &activity, 0.62, 5_640.0, 20, 20.0);
        prop_assert!(series.depleted_at_s.is_some());
    }
}
