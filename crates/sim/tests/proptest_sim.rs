//! Property-based tests for the energy simulator, on the
//! `eagleeye-check` harness (replay with `EAGLEEYE_CHECK_SEED`, scale
//! with `EAGLEEYE_CHECK_CASES`).

use eagleeye_check::{
    any_bool, check_cases, f64_range, prop_assert, prop_assert_eq, prop_assume, usize_range, vec_of,
};
use eagleeye_sim::{simulate_battery, simulate_orbit, ActivityProfile, Battery, PowerProfile};

const CASES: u32 = 64;

/// Battery charge is conserved: deposits minus withdrawals equal the
/// charge delta, and the state of charge stays in [0, 1].
#[test]
fn battery_accounting_is_conservative() {
    check_cases(
        CASES,
        "battery_accounting_is_conservative",
        (
            f64_range(1.0, 1e6),
            vec_of((any_bool(), f64_range(0.0, 1e5)), 1, 64),
        ),
        |(capacity, ops)| {
            let capacity = *capacity;
            let mut b = Battery::new(capacity);
            let mut expected = capacity;
            for &(is_deposit, amount) in ops {
                if is_deposit {
                    let stored = b.deposit(amount);
                    prop_assert!(stored <= amount + 1e-9);
                    expected = (expected + stored).min(capacity);
                } else {
                    let unmet = b.withdraw(amount);
                    prop_assert!(unmet <= amount + 1e-9);
                    expected = (expected - (amount - unmet)).max(0.0);
                }
                prop_assert!((b.charge_j() - expected).abs() < 1e-6);
                prop_assert!((0.0..=1.0).contains(&b.state_of_charge()));
            }
            Ok(())
        },
    );
}

/// Orbit energy reports scale monotonically with activity: more
/// tiles, slewing, or transmit time never reduces consumption.
#[test]
fn consumption_is_monotone_in_activity() {
    check_cases(
        CASES,
        "consumption_is_monotone_in_activity",
        (
            f64_range(0.0, 500.0),
            f64_range(0.0, 50_000.0),
            f64_range(0.0, 2_000.0),
            f64_range(0.0, 600.0),
            f64_range(1.0, 2.0),
        ),
        |&(frames, tiles, slew, tx, extra)| {
            let power = PowerProfile::cubesat_3u();
            let base = ActivityProfile {
                frames_captured: frames,
                tiles_processed: tiles,
                per_tile_latency_s: 0.014,
                slew_s: slew,
                tx_s: tx,
            };
            let more = ActivityProfile {
                frames_captured: frames * extra,
                tiles_processed: tiles * extra,
                slew_s: slew * extra,
                tx_s: tx * extra,
                ..base
            };
            let r1 = simulate_orbit(&power, &base, 0.62, 5_640.0);
            let r2 = simulate_orbit(&power, &more, 0.62, 5_640.0);
            prop_assert!(r2.subsystems.total_j() >= r1.subsystems.total_j() - 1e-9);
            prop_assert_eq!(r1.harvested_j, r2.harvested_j);
            Ok(())
        },
    );
}

/// Feasible-on-average activities never brown out in the stepped
/// battery simulation when the battery buffers at least one eclipse.
#[test]
fn average_feasibility_with_margin_implies_no_brownout() {
    check_cases(
        CASES,
        "average_feasibility_with_margin_implies_no_brownout",
        (f64_range(0.2, 1.4), usize_range(2, 10)),
        |&(tile_factor, orbits)| {
            let power = PowerProfile::cubesat_3u();
            let activity = ActivityProfile::leader_default(tile_factor);
            let report = simulate_orbit(&power, &activity, 0.62, 5_640.0);
            // Only assert when there is ≥10% average margin — right at the
            // boundary the eclipse phase can still dip.
            prop_assume!(report.normalized_consumption() < 0.9);
            let series = simulate_battery(&power, &activity, 0.62, 5_640.0, orbits, 10.0);
            prop_assert!(
                series.depleted_at_s.is_none(),
                "browned out at {:?} with margin {:.2}",
                series.depleted_at_s,
                report.normalized_consumption()
            );
            Ok(())
        },
    );
}

/// Infeasible activities always brown out eventually.
#[test]
fn sustained_deficit_browns_out() {
    check_cases(
        CASES,
        "sustained_deficit_browns_out",
        f64_range(3.5, 6.0),
        |&tile_factor| {
            let power = PowerProfile::cubesat_3u();
            let activity = ActivityProfile::leader_default(tile_factor);
            let report = simulate_orbit(&power, &activity, 0.62, 5_640.0);
            prop_assert!(!report.is_energy_feasible());
            let series = simulate_battery(&power, &activity, 0.62, 5_640.0, 20, 20.0);
            prop_assert!(series.depleted_at_s.is_some());
            Ok(())
        },
    );
}
