use eagleeye_detect::{TileElision, TilingConfig, YoloVariant};

/// What a satellite does during one orbit, for energy accounting.
///
/// Build one by hand or from the presets that mirror the constellation
/// roles in the paper's Fig. 16: leaders image and process the whole
/// ground track; followers slew and capture on command; baselines image,
/// process, and downlink everything.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityProfile {
    /// Low- or high-resolution frames captured this orbit.
    pub frames_captured: f64,
    /// ML inference tiles processed this orbit.
    pub tiles_processed: f64,
    /// Per-tile inference latency, seconds.
    pub per_tile_latency_s: f64,
    /// Seconds spent actively slewing.
    pub slew_s: f64,
    /// Seconds spent transmitting (downlink + crosslink).
    pub tx_s: f64,
}

impl ActivityProfile {
    /// Frames per orbit at the paper's 15 s capture cadence over a
    /// ~94 minute orbit.
    pub const FRAMES_PER_ORBIT: f64 = 5_640.0 / 15.0;

    /// Leader preset: full ground-track imaging and inference at the
    /// given tile factor, negligible slewing (nadir pointing), crosslink
    /// only (schedules are ~2 KB each; well under a minute of radio
    /// time).
    pub fn leader_default(tile_factor: f64) -> Self {
        let tiling = TilingConfig {
            tile_factor,
            ..TilingConfig::paper_default()
        };
        ActivityProfile {
            frames_captured: Self::FRAMES_PER_ORBIT,
            tiles_processed: Self::FRAMES_PER_ORBIT * tiling.tiles_per_frame() as f64,
            per_tile_latency_s: YoloVariant::N.per_tile_latency_s(),
            slew_s: 0.0,
            tx_s: 30.0,
        }
    }

    /// Follower preset: `captures` high-resolution captures this orbit,
    /// each preceded by ~`mean_slew_s` of actuation; six minutes of
    /// downlink (paper §5.3); no onboard inference.
    pub fn follower_default(captures: f64, mean_slew_s: f64) -> Self {
        ActivityProfile {
            frames_captured: captures,
            tiles_processed: 0.0,
            per_tile_latency_s: 0.0,
            slew_s: captures * mean_slew_s,
            tx_s: 6.0 * 60.0,
        }
    }

    /// Homogeneous baseline preset (Low-Res Only / High-Res Only):
    /// image the whole track, process it, and downlink for six minutes.
    pub fn baseline_default(tile_factor: f64) -> Self {
        let tiling = TilingConfig {
            tile_factor,
            ..TilingConfig::paper_default()
        };
        ActivityProfile {
            frames_captured: Self::FRAMES_PER_ORBIT,
            tiles_processed: Self::FRAMES_PER_ORBIT * tiling.tiles_per_frame() as f64,
            per_tile_latency_s: YoloVariant::N.per_tile_latency_s(),
            slew_s: 0.0,
            tx_s: 6.0 * 60.0,
        }
    }

    /// Leader preset with Kodan-style tile elision (extension): only
    /// `keep_fraction` of each frame's tiles are processed, cutting
    /// compute energy proportionally — the knob that brings dense
    /// tilings back under the energy budget.
    pub fn leader_with_elision(tile_factor: f64, keep_fraction: f64) -> Self {
        let tiling = TilingConfig {
            tile_factor,
            ..TilingConfig::paper_default()
        };
        let elision = TileElision::new(keep_fraction);
        ActivityProfile {
            tiles_processed: Self::FRAMES_PER_ORBIT * elision.tiles_per_frame(&tiling) as f64,
            ..Self::leader_default(tile_factor)
        }
    }

    /// Mix-camera preset: leader workload plus follower-style slewing for
    /// its own captures.
    pub fn mix_camera_default(tile_factor: f64, captures: f64, mean_slew_s: f64) -> Self {
        let leader = Self::leader_default(tile_factor);
        ActivityProfile {
            frames_captured: leader.frames_captured + captures,
            slew_s: captures * mean_slew_s,
            tx_s: 6.0 * 60.0,
            ..leader
        }
    }

    /// Total compute-active seconds this orbit.
    pub fn compute_s(&self) -> f64 {
        self.tiles_processed * self.per_tile_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_compute_time_scales_with_tile_factor() {
        let one = ActivityProfile::leader_default(1.0);
        let four = ActivityProfile::leader_default(4.0);
        assert!((four.compute_s() / one.compute_s() - 4.0).abs() < 0.05);
    }

    #[test]
    fn leader_processes_every_frame() {
        let l = ActivityProfile::leader_default(1.0);
        assert!((l.frames_captured - 376.0).abs() < 1.0);
        assert!((l.tiles_processed - 376.0 * 100.0).abs() < 100.0);
    }

    #[test]
    fn follower_has_no_compute() {
        let f = ActivityProfile::follower_default(400.0, 3.0);
        assert_eq!(f.compute_s(), 0.0);
        assert_eq!(f.slew_s, 1_200.0);
    }

    #[test]
    fn leader_transmits_less_than_baseline() {
        // The leader crosslinks schedules instead of downlinking imagery.
        let l = ActivityProfile::leader_default(1.0);
        let b = ActivityProfile::baseline_default(1.0);
        assert!(l.tx_s < b.tx_s);
    }

    #[test]
    fn elision_reduces_leader_compute_proportionally() {
        let full = ActivityProfile::leader_default(4.0);
        let elided = ActivityProfile::leader_with_elision(4.0, 0.4);
        assert!((elided.compute_s() / full.compute_s() - 0.4).abs() < 0.02);
    }

    #[test]
    fn elision_makes_dense_tiling_energy_feasible() {
        // The paper's infeasible 4x tiling fits the budget once ~60% of
        // tiles are elided (Kodan's regime).
        let power = crate::PowerProfile::cubesat_3u();
        let dense =
            crate::simulate_orbit(&power, &ActivityProfile::leader_default(4.0), 0.62, 5_640.0);
        assert!(!dense.is_energy_feasible());
        let elided = crate::simulate_orbit(
            &power,
            &ActivityProfile::leader_with_elision(4.0, 0.4),
            0.62,
            5_640.0,
        );
        assert!(elided.is_energy_feasible());
    }

    #[test]
    fn mix_camera_adds_slewing_on_top_of_leader_load() {
        let m = ActivityProfile::mix_camera_default(1.0, 100.0, 3.0);
        let l = ActivityProfile::leader_default(1.0);
        assert!(m.slew_s > 0.0);
        assert_eq!(m.compute_s(), l.compute_s());
        assert!(m.frames_captured > l.frames_captured);
    }
}
