//! Seeded, reproducible fault injection for constellation simulations.
//!
//! A [`FaultPlan`] is a timeline of [`Fault`]s — satellite outages,
//! detector dropout, radio-link derating, ADACS slew-rate derating, and
//! battery-brownout windows — each active over a `[start_s, end_s)`
//! window of simulation time. Plans are either built explicitly
//! ([`FaultPlan::with_fault`]) or drawn from a Monte-Carlo
//! [`FaultScenario`] with a fixed seed, in which case the same seed
//! always yields the same plan (splitmix64 substreams, one per fault
//! class, so adding one fault class never perturbs the draws of
//! another).
//!
//! The plan is *descriptive*, not *prescriptive*: it answers point
//! queries ("is follower 3 out at t = 812 s?", "what is the effective
//! slew-rate factor right now?") and leaves the semantics of degraded
//! operation to the consumer (the coverage evaluator and the resilient
//! scheduler in `eagleeye-core`).
//!
//! # Example
//!
//! ```
//! use eagleeye_sim::{FaultKind, FaultPlan, FaultScenario};
//!
//! // Explicit plan: follower 1 dies for good at t = 600 s.
//! let plan = FaultPlan::new(7).with_fault(
//!     FaultKind::FollowerOutage { follower: 1 },
//!     600.0,
//!     f64::INFINITY,
//! );
//! assert!(!plan.follower_out(1, 599.0));
//! assert!(plan.follower_out(1, 600.0));
//! assert!(!plan.follower_out(0, 600.0));
//!
//! // Monte-Carlo plan: 20% permanent follower-outage rate.
//! let scenario = FaultScenario { follower_outage_rate: 0.2, ..FaultScenario::none() };
//! let a = FaultPlan::monte_carlo(42, &scenario, 10, 3_600.0);
//! let b = FaultPlan::monte_carlo(42, &scenario, 10, 3_600.0);
//! assert_eq!(a.faults().len(), b.faults().len()); // same seed, same plan
//! ```

use eagleeye_obs::Metrics;
use eagleeye_rng::{mix64, SplitMix64};

/// One class of injected fault. Each variant carries the parameters
/// that distinguish instances of the class; the *when* lives in the
/// owning [`Fault`]'s window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// A follower satellite is entirely out of service (no captures,
    /// no task uplink). `follower` is the in-group follower index used
    /// by the scheduler.
    FollowerOutage {
        /// In-group index of the affected follower.
        follower: usize,
    },
    /// The leader satellite is out: no detections are produced, so
    /// followers fall back to nadir-only serendipitous capture.
    LeaderOutage,
    /// The leader's on-board detector drops detections it would
    /// otherwise have made (model degradation, thermal throttling,
    /// memory pressure — paper §4.5's recall knob, time-varying).
    DetectorDropout {
        /// Additional false-negative probability in `[0, 1]`, applied
        /// on top of the detector's baseline recall.
        false_negative_rate: f64,
    },
    /// The leader→follower tasking crosslink is degraded and can carry
    /// only a fraction of its nominal task volume.
    RadioDerate {
        /// Multiplier in `[0, 1]` on the per-frame task capacity.
        capacity_factor: f64,
    },
    /// Follower reaction wheels are derated (momentum saturation,
    /// wheel failure with redistributed torque): slews run slower.
    SlewDerate {
        /// Multiplier in `(0, 1]` on the nominal ADACS slew rate.
        rate_factor: f64,
    },
    /// Battery brownout across the follower fleet: depth-of-discharge
    /// protection inhibits capture (and slewing) until the window ends.
    BatteryBrownout,
}

/// A single injected fault: what goes wrong and over which half-open
/// interval `[start_s, end_s)` of simulation time it is active. Use
/// `end_s = f64::INFINITY` for permanent faults.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fault {
    /// The fault class and its parameters.
    pub kind: FaultKind,
    /// Activation time, seconds of simulation time (inclusive).
    pub start_s: f64,
    /// Deactivation time, seconds (exclusive); `INFINITY` = permanent.
    pub end_s: f64,
}

impl Fault {
    /// True when the fault is active at simulation time `t_s`.
    #[inline]
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// Monte-Carlo fault scenario: per-class rates from which
/// [`FaultPlan::monte_carlo`] draws a concrete, seeded plan. All rates
/// are probabilities in `[0, 1]` unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultScenario {
    /// Probability that each follower suffers an outage, onset uniform
    /// over the run.
    pub follower_outage_rate: f64,
    /// Mean outage duration, seconds. `INFINITY` (the default) makes
    /// outages permanent.
    pub mean_outage_duration_s: f64,
    /// Probability that the leader suffers an outage, onset uniform
    /// over the run, duration as above.
    pub leader_outage_rate: f64,
    /// Probability of one detector-dropout window over the run.
    pub detector_dropout_rate: f64,
    /// False-negative probability inside a dropout window.
    pub detector_false_negative_rate: f64,
    /// Probability of one radio-derate window over the run.
    pub radio_derate_rate: f64,
    /// Capacity multiplier inside a radio-derate window.
    pub radio_capacity_factor: f64,
    /// Probability of one slew-derate window over the run.
    pub slew_derate_rate: f64,
    /// Slew-rate multiplier inside a slew-derate window.
    pub slew_rate_factor: f64,
    /// Probability of one battery-brownout window over the run.
    pub brownout_rate: f64,
    /// Mean duration of transient windows (dropout, derates,
    /// brownout), seconds.
    pub transient_duration_s: f64,
}

impl FaultScenario {
    /// The all-zeros scenario: no faults ever drawn. Use struct-update
    /// syntax to switch on individual classes.
    pub fn none() -> Self {
        FaultScenario {
            follower_outage_rate: 0.0,
            mean_outage_duration_s: f64::INFINITY,
            leader_outage_rate: 0.0,
            detector_dropout_rate: 0.0,
            detector_false_negative_rate: 0.5,
            radio_derate_rate: 0.0,
            radio_capacity_factor: 0.5,
            slew_derate_rate: 0.0,
            slew_rate_factor: 0.5,
            brownout_rate: 0.0,
            transient_duration_s: 600.0,
        }
    }
}

/// A concrete, seeded fault timeline. See the module-level docs for
/// the construction and query model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

/// Distinct substream salts so each fault class draws from an
/// independent splitmix64 stream of the plan seed.
const SALT_FOLLOWER: u64 = 0xF01;
const SALT_LEADER: u64 = 0xF02;
const SALT_DETECTOR: u64 = 0xF03;
const SALT_RADIO: u64 = 0xF04;
const SALT_SLEW: u64 = 0xF05;
const SALT_BROWNOUT: u64 = 0xF06;
const SALT_DROP_ROLL: u64 = 0xF07;

impl FaultPlan {
    /// An empty plan with the given seed (the seed only matters for
    /// the per-detection dropout rolls of [`FaultPlan::detector_drops`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder: appends one fault active over `[start_s, end_s)`.
    pub fn with_fault(mut self, kind: FaultKind, start_s: f64, end_s: f64) -> Self {
        self.faults.push(Fault {
            kind,
            start_s,
            end_s,
        });
        self
    }

    /// Draws a concrete plan from `scenario` for a run of
    /// `duration_s` seconds over `n_followers` followers. The same
    /// `(seed, scenario, n_followers, duration_s)` always produces
    /// the same plan.
    pub fn monte_carlo(
        seed: u64,
        scenario: &FaultScenario,
        n_followers: usize,
        duration_s: f64,
    ) -> Self {
        let root = SplitMix64::new(seed);
        let mut plan = FaultPlan::new(seed);

        // Follower outages: one independent substream per follower so
        // the fate of follower k is invariant to fleet size changes.
        for follower in 0..n_followers {
            let mut rng = root.fork(SALT_FOLLOWER ^ mix64(follower as u64));
            if rng.chance(scenario.follower_outage_rate) {
                let start = rng.range_f64(0.0, duration_s);
                let end = outage_end(&mut rng, start, scenario.mean_outage_duration_s);
                plan.faults.push(Fault {
                    kind: FaultKind::FollowerOutage { follower },
                    start_s: start,
                    end_s: end,
                });
            }
        }

        let transient = |salt: u64, rate: f64, kind: FaultKind, plan: &mut FaultPlan| {
            let mut rng = root.fork(salt);
            if rng.chance(rate) {
                let start = rng.range_f64(0.0, duration_s);
                let end = outage_end(&mut rng, start, scenario.transient_duration_s);
                plan.faults.push(Fault {
                    kind,
                    start_s: start,
                    end_s: end,
                });
            }
        };

        let mut leader_rng = root.fork(SALT_LEADER);
        if leader_rng.chance(scenario.leader_outage_rate) {
            let start = leader_rng.range_f64(0.0, duration_s);
            let end = outage_end(&mut leader_rng, start, scenario.mean_outage_duration_s);
            plan.faults.push(Fault {
                kind: FaultKind::LeaderOutage,
                start_s: start,
                end_s: end,
            });
        }
        transient(
            SALT_DETECTOR,
            scenario.detector_dropout_rate,
            FaultKind::DetectorDropout {
                false_negative_rate: scenario.detector_false_negative_rate,
            },
            &mut plan,
        );
        transient(
            SALT_RADIO,
            scenario.radio_derate_rate,
            FaultKind::RadioDerate {
                capacity_factor: scenario.radio_capacity_factor,
            },
            &mut plan,
        );
        transient(
            SALT_SLEW,
            scenario.slew_derate_rate,
            FaultKind::SlewDerate {
                rate_factor: scenario.slew_rate_factor,
            },
            &mut plan,
        );
        transient(
            SALT_BROWNOUT,
            scenario.brownout_rate,
            FaultKind::BatteryBrownout,
            &mut plan,
        );

        plan
    }

    /// The seed this plan was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All injected faults, in insertion order.
    #[inline]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects no faults at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when follower `follower` is out of service at time `t_s`.
    pub fn follower_out(&self, follower: usize, t_s: f64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::FollowerOutage { follower: k } if k == follower)
                && f.active_at(t_s)
        })
    }

    /// First outage onset for `follower` strictly inside `(t0_s, t1_s]`,
    /// if any. Used by the evaluator to detect mid-horizon failures.
    pub fn follower_outage_onset(&self, follower: usize, t0_s: f64, t1_s: f64) -> Option<f64> {
        self.faults
            .iter()
            .filter(
                |f| matches!(f.kind, FaultKind::FollowerOutage { follower: k } if k == follower),
            )
            .map(|f| f.start_s)
            .filter(|&s| s > t0_s && s <= t1_s)
            .min_by(f64::total_cmp)
    }

    /// True when the leader is out of service at time `t_s`.
    pub fn leader_out(&self, t_s: f64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::LeaderOutage) && f.active_at(t_s))
    }

    /// Probability that a detection made at time `t_s` survives all
    /// active dropout faults (product of `1 - false_negative_rate`
    /// over active windows). `1.0` when no dropout is active.
    pub fn detector_pass_rate(&self, t_s: f64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(t_s))
            .filter_map(|f| match f.kind {
                FaultKind::DetectorDropout {
                    false_negative_rate,
                } => Some((1.0 - false_negative_rate).clamp(0.0, 1.0)),
                _ => None,
            })
            .product()
    }

    /// Deterministic per-detection dropout roll: true when the
    /// detection of `target` in `frame` at time `t_s` is *dropped* by
    /// an active [`FaultKind::DetectorDropout`]. Stateless — the same
    /// `(seed, target, frame)` always rolls the same way.
    pub fn detector_drops(&self, target: u64, frame: u64, t_s: f64) -> bool {
        let pass = self.detector_pass_rate(t_s);
        if pass >= 1.0 {
            return false;
        }
        let h = mix64(
            self.seed
                ^ mix64(SALT_DROP_ROLL ^ mix64(target) ^ mix64(frame.wrapping_mul(0x9E37_79B9))),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u >= pass
    }

    /// Effective tasking-link capacity multiplier at time `t_s`
    /// (minimum over active radio-derate faults; `1.0` nominal).
    pub fn radio_capacity_factor(&self, t_s: f64) -> f64 {
        self.min_factor(t_s, |kind| match kind {
            FaultKind::RadioDerate { capacity_factor } => Some(capacity_factor),
            _ => None,
        })
    }

    /// Effective ADACS slew-rate multiplier at time `t_s` (minimum
    /// over active slew-derate faults; `1.0` nominal).
    pub fn slew_rate_factor(&self, t_s: f64) -> f64 {
        self.min_factor(t_s, |kind| match kind {
            FaultKind::SlewDerate { rate_factor } => Some(rate_factor),
            _ => None,
        })
    }

    /// True when a battery brownout inhibits follower capture at `t_s`.
    pub fn brownout(&self, t_s: f64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::BatteryBrownout) && f.active_at(t_s))
    }

    /// Records per-class fault activity for one evaluation frame at
    /// time `t_s` under `sim/*` counters: how many faults of each
    /// class are active, plus `sim/fault_active_frames` when any
    /// fault is active at all. No-op when `metrics` is disabled.
    pub fn record_frame_activity(&self, t_s: f64, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        let mut follower_out = 0u64;
        let mut leader_out = 0u64;
        let mut dropout = 0u64;
        let mut radio = 0u64;
        let mut slew = 0u64;
        let mut brownout = 0u64;
        for f in self.faults.iter().filter(|f| f.active_at(t_s)) {
            match f.kind {
                FaultKind::FollowerOutage { .. } => follower_out += 1,
                FaultKind::LeaderOutage => leader_out += 1,
                FaultKind::DetectorDropout { .. } => dropout += 1,
                FaultKind::RadioDerate { .. } => radio += 1,
                FaultKind::SlewDerate { .. } => slew += 1,
                FaultKind::BatteryBrownout => brownout += 1,
            }
        }
        let total = follower_out + leader_out + dropout + radio + slew + brownout;
        if total > 0 {
            metrics.incr("sim/fault_active_frames");
            metrics.add("sim/follower_outage_frames", follower_out.min(1));
            metrics.add("sim/leader_outage_frames", leader_out.min(1));
            metrics.add("sim/detector_dropout_frames", dropout.min(1));
            metrics.add("sim/radio_derate_frames", radio.min(1));
            metrics.add("sim/slew_derate_frames", slew.min(1));
            metrics.add("sim/brownout_frames", brownout.min(1));
            metrics.add("sim/active_faults", total);
        }
    }

    fn min_factor(&self, t_s: f64, pick: impl Fn(FaultKind) -> Option<f64>) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(t_s))
            .filter_map(|f| pick(f.kind))
            .fold(1.0, |acc, v| acc.min(v.clamp(0.0, 1.0)))
    }
}

/// Draws an end time: `start + Exp(mean)` via inverse CDF, or
/// `INFINITY` for non-finite means (permanent fault).
fn outage_end(rng: &mut SplitMix64, start_s: f64, mean_s: f64) -> f64 {
    if !mean_s.is_finite() {
        return f64::INFINITY;
    }
    // Inverse-CDF exponential; next_f64 is in [0, 1), so 1-u is in
    // (0, 1] and the log is finite.
    let u = rng.next_f64();
    start_s + mean_s * -(1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_point_queries() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultKind::FollowerOutage { follower: 2 }, 100.0, 200.0)
            .with_fault(FaultKind::LeaderOutage, 50.0, 60.0)
            .with_fault(FaultKind::SlewDerate { rate_factor: 0.5 }, 0.0, 1000.0)
            .with_fault(
                FaultKind::RadioDerate {
                    capacity_factor: 0.25,
                },
                300.0,
                400.0,
            )
            .with_fault(FaultKind::BatteryBrownout, 500.0, 600.0);

        assert!(plan.follower_out(2, 150.0));
        assert!(!plan.follower_out(2, 200.0)); // half-open window
        assert!(!plan.follower_out(1, 150.0));
        assert!(plan.leader_out(55.0));
        assert!(!plan.leader_out(60.0));
        assert_eq!(plan.slew_rate_factor(500.0), 0.5);
        assert_eq!(plan.slew_rate_factor(1500.0), 1.0);
        assert_eq!(plan.radio_capacity_factor(350.0), 0.25);
        assert_eq!(plan.radio_capacity_factor(250.0), 1.0);
        assert!(plan.brownout(599.0));
        assert!(!plan.brownout(600.0));
    }

    #[test]
    fn outage_onset_detection() {
        let plan = FaultPlan::new(1).with_fault(
            FaultKind::FollowerOutage { follower: 0 },
            120.0,
            f64::INFINITY,
        );
        assert_eq!(plan.follower_outage_onset(0, 100.0, 130.0), Some(120.0));
        assert_eq!(plan.follower_outage_onset(0, 120.0, 130.0), None); // strictly after t0
        assert_eq!(plan.follower_outage_onset(0, 0.0, 100.0), None);
        assert_eq!(plan.follower_outage_onset(1, 100.0, 130.0), None);
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let s = FaultScenario {
            follower_outage_rate: 0.5,
            leader_outage_rate: 0.3,
            detector_dropout_rate: 0.5,
            radio_derate_rate: 0.5,
            slew_derate_rate: 0.5,
            brownout_rate: 0.5,
            mean_outage_duration_s: 900.0,
            ..FaultScenario::none()
        };
        let a = FaultPlan::monte_carlo(99, &s, 8, 7200.0);
        let b = FaultPlan::monte_carlo(99, &s, 8, 7200.0);
        assert_eq!(a, b);
        let c = FaultPlan::monte_carlo(100, &s, 8, 7200.0);
        assert_ne!(a, c, "different seeds should differ for these rates");
    }

    #[test]
    fn monte_carlo_outage_rate_matches_statistics() {
        let s = FaultScenario {
            follower_outage_rate: 0.2,
            ..FaultScenario::none()
        };
        let mut outages = 0usize;
        let trials = 400;
        let per_plan = 10;
        for seed in 0..trials {
            let plan = FaultPlan::monte_carlo(seed, &s, per_plan, 3600.0);
            outages += plan.faults().len();
        }
        let rate = outages as f64 / (trials * per_plan as u64) as f64;
        assert!(
            (rate - 0.2).abs() < 0.03,
            "empirical outage rate {rate} far from 0.2"
        );
    }

    #[test]
    fn follower_fate_invariant_to_fleet_size() {
        let s = FaultScenario {
            follower_outage_rate: 0.4,
            ..FaultScenario::none()
        };
        let small = FaultPlan::monte_carlo(5, &s, 4, 3600.0);
        let large = FaultPlan::monte_carlo(5, &s, 12, 3600.0);
        for k in 0..4 {
            let a: Vec<_> = small
                .faults()
                .iter()
                .filter(
                    |f| matches!(f.kind, FaultKind::FollowerOutage { follower } if follower == k),
                )
                .collect();
            let b: Vec<_> = large
                .faults()
                .iter()
                .filter(
                    |f| matches!(f.kind, FaultKind::FollowerOutage { follower } if follower == k),
                )
                .collect();
            assert_eq!(a, b, "follower {k} fate changed with fleet size");
        }
    }

    #[test]
    fn dropout_rolls_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(3).with_fault(
            FaultKind::DetectorDropout {
                false_negative_rate: 0.3,
            },
            0.0,
            f64::INFINITY,
        );
        let mut dropped = 0usize;
        for target in 0..2000u64 {
            assert_eq!(
                plan.detector_drops(target, 7, 10.0),
                plan.detector_drops(target, 7, 10.0)
            );
            if plan.detector_drops(target, 7, 10.0) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 2000.0;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "empirical drop rate {rate} far from 0.3"
        );
        // Outside the window nothing drops.
        let quiet = FaultPlan::new(3).with_fault(
            FaultKind::DetectorDropout {
                false_negative_rate: 0.3,
            },
            100.0,
            200.0,
        );
        assert!(!quiet.detector_drops(1, 7, 50.0));
    }

    #[test]
    fn stacked_dropouts_compound() {
        let plan = FaultPlan::new(1)
            .with_fault(
                FaultKind::DetectorDropout {
                    false_negative_rate: 0.5,
                },
                0.0,
                100.0,
            )
            .with_fault(
                FaultKind::DetectorDropout {
                    false_negative_rate: 0.5,
                },
                50.0,
                100.0,
            );
        assert!((plan.detector_pass_rate(75.0) - 0.25).abs() < 1e-12);
        assert!((plan.detector_pass_rate(25.0) - 0.5).abs() < 1e-12);
        assert_eq!(plan.detector_pass_rate(150.0), 1.0);
    }

    #[test]
    fn overlapping_same_kind_windows_compose() {
        // Two overlapping slew derates: the *minimum* factor wins inside
        // the overlap, each window's own factor outside it, and two
        // overlapping outages for the same follower cover the union of
        // their windows.
        let plan = FaultPlan::new(1)
            .with_fault(FaultKind::SlewDerate { rate_factor: 0.8 }, 0.0, 300.0)
            .with_fault(FaultKind::SlewDerate { rate_factor: 0.3 }, 200.0, 500.0)
            .with_fault(FaultKind::FollowerOutage { follower: 0 }, 100.0, 250.0)
            .with_fault(FaultKind::FollowerOutage { follower: 0 }, 200.0, 400.0);

        assert_eq!(plan.slew_rate_factor(100.0), 0.8); // first window only
        assert_eq!(plan.slew_rate_factor(250.0), 0.3); // overlap: min wins
        assert_eq!(plan.slew_rate_factor(400.0), 0.3); // second window only
        assert_eq!(plan.slew_rate_factor(500.0), 1.0); // both ended

        // Union coverage of the two outage windows, including the seam at
        // t = 250 (first ends, second already active) and a point covered
        // by only one of them.
        for t in [100.0, 199.0, 249.9, 250.0, 399.9] {
            assert!(plan.follower_out(0, t), "expected outage at t={t}");
        }
        assert!(!plan.follower_out(0, 99.9));
        assert!(!plan.follower_out(0, 400.0));

        // Overlapping radio derates compose the same way.
        let radio = FaultPlan::new(2)
            .with_fault(
                FaultKind::RadioDerate {
                    capacity_factor: 0.6,
                },
                0.0,
                100.0,
            )
            .with_fault(
                FaultKind::RadioDerate {
                    capacity_factor: 0.9,
                },
                50.0,
                150.0,
            );
        assert_eq!(radio.radio_capacity_factor(75.0), 0.6);
        assert_eq!(radio.radio_capacity_factor(125.0), 0.9);
    }

    #[test]
    fn radio_and_slew_derates_compose_independently() {
        // Simultaneous radio + slew derating: each channel sees only its
        // own class, so one fault class never leaks into the other's
        // factor.
        let plan = FaultPlan::new(1)
            .with_fault(
                FaultKind::RadioDerate {
                    capacity_factor: 0.25,
                },
                100.0,
                400.0,
            )
            .with_fault(FaultKind::SlewDerate { rate_factor: 0.5 }, 200.0, 300.0);

        // Only radio active.
        assert_eq!(plan.radio_capacity_factor(150.0), 0.25);
        assert_eq!(plan.slew_rate_factor(150.0), 1.0);
        // Both active: each keeps its own factor.
        assert_eq!(plan.radio_capacity_factor(250.0), 0.25);
        assert_eq!(plan.slew_rate_factor(250.0), 0.5);
        // Slew window over, radio persists.
        assert_eq!(plan.radio_capacity_factor(350.0), 0.25);
        assert_eq!(plan.slew_rate_factor(350.0), 1.0);
        // Neither class affects detection or brownout.
        assert_eq!(plan.detector_pass_rate(250.0), 1.0);
        assert!(!plan.brownout(250.0));
    }

    #[test]
    fn frame_activity_counters_record_active_classes() {
        let plan = FaultPlan::new(1)
            .with_fault(
                FaultKind::RadioDerate {
                    capacity_factor: 0.5,
                },
                0.0,
                100.0,
            )
            .with_fault(FaultKind::SlewDerate { rate_factor: 0.5 }, 0.0, 100.0)
            .with_fault(FaultKind::BatteryBrownout, 50.0, 100.0);
        let metrics = Metrics::enabled();
        plan.record_frame_activity(25.0, &metrics); // radio + slew
        plan.record_frame_activity(75.0, &metrics); // radio + slew + brownout
        plan.record_frame_activity(200.0, &metrics); // nothing active
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("sim/fault_active_frames"), 2);
        assert_eq!(snap.counter("sim/radio_derate_frames"), 2);
        assert_eq!(snap.counter("sim/slew_derate_frames"), 2);
        assert_eq!(snap.counter("sim/brownout_frames"), 1);
        assert_eq!(snap.counter("sim/leader_outage_frames"), 0);
        assert_eq!(snap.counter("sim/active_faults"), 5);
        // Disabled handle records nothing and costs nothing.
        plan.record_frame_activity(75.0, &Metrics::disabled());
    }

    #[test]
    fn transient_outages_end() {
        let s = FaultScenario {
            follower_outage_rate: 1.0,
            mean_outage_duration_s: 300.0,
            ..FaultScenario::none()
        };
        let plan = FaultPlan::monte_carlo(11, &s, 6, 3600.0);
        assert_eq!(plan.faults().len(), 6);
        for f in plan.faults() {
            assert!(f.end_s.is_finite() && f.end_s > f.start_s);
        }
    }
}
