/// Subsystem power and energy constants for a computational nanosatellite.
///
/// Defaults follow the 3U-cubesat parameters of the orbital edge
/// computing literature the paper builds on (§5.3): one body-mounted
/// solar panel, Jetson AGX Orin at 15 W, reaction-wheel ADACS, S-band
/// downlink.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Solar harvest power while in sunlight, watts.
    pub solar_harvest_w: f64,
    /// Bus idle power (avionics, thermal, GPS), watts, always on.
    pub idle_w: f64,
    /// Compute power while running inference/scheduling, watts.
    pub compute_w: f64,
    /// Energy per image capture, joules.
    pub camera_j_per_frame: f64,
    /// ADACS power while actively slewing, watts.
    pub adacs_slew_w: f64,
    /// ADACS station-keeping power, watts, always on.
    pub adacs_idle_w: f64,
    /// Radio transmit power, watts.
    pub tx_w: f64,
    /// Battery capacity, joules.
    pub battery_capacity_j: f64,
}

impl PowerProfile {
    /// The paper's 3U cubesat operating point.
    pub fn cubesat_3u() -> Self {
        PowerProfile {
            solar_harvest_w: 7.4,
            idle_w: 0.7,
            compute_w: 15.0,
            camera_j_per_frame: 5.0,
            adacs_slew_w: 4.0,
            adacs_idle_w: 0.5,
            tx_w: 8.0,
            // ~20 Wh battery, typical for 3U.
            battery_capacity_j: 20.0 * 3_600.0,
        }
    }

    /// Harvestable energy over one orbit, joules.
    pub fn harvestable_per_orbit_j(&self, sunlit_fraction: f64, period_s: f64) -> f64 {
        self.solar_harvest_w * sunlit_fraction.clamp(0.0, 1.0) * period_s.max(0.0)
    }
}

impl Default for PowerProfile {
    fn default() -> Self {
        Self::cubesat_3u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvestable_energy_magnitude() {
        // 7.4 W * 0.62 * 5640 s ≈ 25.9 kJ per orbit.
        let p = PowerProfile::cubesat_3u();
        let e = p.harvestable_per_orbit_j(0.62, 5_640.0);
        assert!((e - 25_876.0).abs() < 500.0, "harvest {e}");
    }

    #[test]
    fn sunlit_fraction_is_clamped() {
        let p = PowerProfile::cubesat_3u();
        assert_eq!(
            p.harvestable_per_orbit_j(2.0, 100.0),
            p.harvestable_per_orbit_j(1.0, 100.0)
        );
        assert_eq!(p.harvestable_per_orbit_j(-1.0, 100.0), 0.0);
    }

    #[test]
    fn default_is_cubesat() {
        assert_eq!(PowerProfile::default(), PowerProfile::cubesat_3u());
    }
}
