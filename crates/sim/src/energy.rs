use crate::{ActivityProfile, PowerProfile};

/// Energy used by each subsystem over one orbit, joules.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubsystemEnergy {
    /// Image capture energy.
    pub camera_j: f64,
    /// ADACS energy (slewing + station keeping).
    pub adacs_j: f64,
    /// ML inference + scheduling compute energy.
    pub compute_j: f64,
    /// Radio transmit energy.
    pub tx_j: f64,
    /// Always-on bus energy.
    pub idle_j: f64,
}

impl SubsystemEnergy {
    /// Total consumption, joules.
    pub fn total_j(&self) -> f64 {
        self.camera_j + self.adacs_j + self.compute_j + self.tx_j + self.idle_j
    }
}

/// One orbit's energy budget: harvest vs. per-subsystem consumption.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitEnergyReport {
    /// Energy harvested this orbit, joules.
    pub harvested_j: f64,
    /// Consumption breakdown.
    pub subsystems: SubsystemEnergy,
}

impl OrbitEnergyReport {
    /// True when consumption fits within the harvest — the paper's
    /// feasibility criterion for sustained operation (Fig. 16: the
    /// dashed "Total Harvestable Energy" line).
    pub fn is_energy_feasible(&self) -> bool {
        self.subsystems.total_j() <= self.harvested_j
    }

    /// Consumption normalized to the harvestable energy (the y-axis of
    /// Fig. 16).
    pub fn normalized_consumption(&self) -> f64 {
        if self.harvested_j <= 0.0 {
            return f64::INFINITY;
        }
        self.subsystems.total_j() / self.harvested_j
    }
}

/// Computes one orbit's energy report for a satellite with the given
/// power constants performing the given activity.
///
/// # Example
///
/// ```
/// use eagleeye_sim::{ActivityProfile, PowerProfile, simulate_orbit};
///
/// let follower = ActivityProfile::follower_default(400.0, 3.0);
/// let report = simulate_orbit(&PowerProfile::cubesat_3u(), &follower, 0.62, 5_640.0);
/// // Followers are never the energy bottleneck (paper Fig. 16).
/// assert!(report.is_energy_feasible());
/// ```
pub fn simulate_orbit(
    power: &PowerProfile,
    activity: &ActivityProfile,
    sunlit_fraction: f64,
    period_s: f64,
) -> OrbitEnergyReport {
    let camera_j = activity.frames_captured * power.camera_j_per_frame;
    let adacs_j = activity.slew_s * power.adacs_slew_w + period_s * power.adacs_idle_w;
    let compute_j = activity.compute_s() * power.compute_w;
    let tx_j = activity.tx_s * power.tx_w;
    let idle_j = period_s * power.idle_w;
    OrbitEnergyReport {
        harvested_j: power.harvestable_per_orbit_j(sunlit_fraction, period_s),
        subsystems: SubsystemEnergy {
            camera_j,
            adacs_j,
            compute_j,
            tx_j,
            idle_j,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERIOD: f64 = 5_640.0;
    const SUNLIT: f64 = 0.62;

    fn report(a: ActivityProfile) -> OrbitEnergyReport {
        simulate_orbit(&PowerProfile::cubesat_3u(), &a, SUNLIT, PERIOD)
    }

    #[test]
    fn leader_is_feasible_at_2x_tiling_but_not_4x() {
        // The paper's headline energy result (Fig. 16): harvestable energy
        // supports ~2x tiling; 4x tiling breaks the leader's budget.
        assert!(report(ActivityProfile::leader_default(1.0)).is_energy_feasible());
        assert!(report(ActivityProfile::leader_default(2.0)).is_energy_feasible());
        assert!(!report(ActivityProfile::leader_default(4.0)).is_energy_feasible());
    }

    #[test]
    fn followers_are_never_the_bottleneck() {
        for captures in [0.0, 100.0, 400.0, 800.0] {
            let r = report(ActivityProfile::follower_default(captures, 3.0));
            assert!(r.is_energy_feasible(), "captures {captures}");
        }
    }

    #[test]
    fn leader_uses_slightly_less_than_baseline() {
        // The leader offloads image downlink to followers (paper §6.2).
        let leader = report(ActivityProfile::leader_default(1.0));
        let baseline = report(ActivityProfile::baseline_default(1.0));
        assert!(leader.subsystems.total_j() < baseline.subsystems.total_j());
        assert!(leader.subsystems.tx_j < baseline.subsystems.tx_j);
    }

    #[test]
    fn compute_dominates_leader_budget() {
        let r = report(ActivityProfile::leader_default(1.0));
        let s = r.subsystems;
        assert!(s.compute_j > s.camera_j);
        assert!(s.compute_j > s.tx_j);
        assert!(s.compute_j > s.adacs_j);
    }

    #[test]
    fn totals_add_up() {
        let r = report(ActivityProfile::leader_default(1.0));
        let s = r.subsystems;
        let manual = s.camera_j + s.adacs_j + s.compute_j + s.tx_j + s.idle_j;
        assert_eq!(s.total_j(), manual);
    }

    #[test]
    fn normalized_consumption_is_ratio() {
        let r = report(ActivityProfile::leader_default(1.0));
        let n = r.normalized_consumption();
        assert!((n - r.subsystems.total_j() / r.harvested_j).abs() < 1e-12);
        assert!(n > 0.0 && n < 1.0);
    }

    #[test]
    fn zero_harvest_is_infeasible() {
        let r = simulate_orbit(
            &PowerProfile::cubesat_3u(),
            &ActivityProfile::leader_default(1.0),
            0.0,
            PERIOD,
        );
        assert!(!r.is_energy_feasible());
        assert_eq!(r.normalized_consumption(), f64::INFINITY);
    }
}
