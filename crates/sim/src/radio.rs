//! Radio link budgets: crosslink (leader → follower schedules) and
//! downlink (follower → ground imagery).
//!
//! Reproduces the paper's §5.3 communication claims: each schedule is
//! under 2 KB, a leader sends ~400 schedules per orbit, so crosslink
//! volume stays under 1 MB/orbit — trivially accommodated by an S-band
//! radio at 0.4 MB/s — while image downlink is bounded by the six-minute
//! ground-station contact per orbit.

/// An S-band-class radio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Sustained data rate, bytes per second.
    pub rate_bytes_s: f64,
}

impl RadioModel {
    /// The paper's S-band operating point: 0.4 MB/s.
    pub fn s_band() -> Self {
        RadioModel {
            rate_bytes_s: 0.4e6,
        }
    }

    /// Airtime to transfer `bytes`, seconds.
    #[inline]
    pub fn airtime_s(&self, bytes: f64) -> f64 {
        if self.rate_bytes_s <= 0.0 {
            f64::INFINITY
        } else {
            bytes / self.rate_bytes_s
        }
    }

    /// Bytes transferable in `seconds` of contact.
    #[inline]
    pub fn capacity_bytes(&self, seconds: f64) -> f64 {
        self.rate_bytes_s * seconds.max(0.0)
    }
}

/// Per-orbit crosslink budget for a leader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosslinkBudget {
    /// Total schedule bytes sent per orbit.
    pub bytes_per_orbit: f64,
    /// Radio airtime consumed per orbit, seconds.
    pub airtime_s: f64,
}

impl CrosslinkBudget {
    /// Computes the budget for `schedules_per_orbit` schedules of
    /// `bytes_per_schedule` bytes each over `radio`.
    pub fn compute(
        radio: &RadioModel,
        schedules_per_orbit: f64,
        bytes_per_schedule: f64,
    ) -> CrosslinkBudget {
        let bytes = schedules_per_orbit.max(0.0) * bytes_per_schedule.max(0.0);
        CrosslinkBudget {
            bytes_per_orbit: bytes,
            airtime_s: radio.airtime_s(bytes),
        }
    }

    /// The paper's §5.3 operating point: ~400 schedules of ≤2 KB.
    pub fn paper_default() -> CrosslinkBudget {
        Self::compute(&RadioModel::s_band(), 400.0, 2_048.0)
    }

    /// True when the crosslink volume is negligible relative to an orbit
    /// (airtime under one minute — the paper calls <1 MB/orbit
    /// "easily accommodated").
    pub fn is_negligible(&self) -> bool {
        self.bytes_per_orbit < 1.0e6 && self.airtime_s < 60.0
    }
}

/// Per-orbit downlink budget for a follower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownlinkBudget {
    /// Bytes the contact window can carry.
    pub capacity_bytes: f64,
    /// Bytes produced by captured imagery.
    pub produced_bytes: f64,
}

impl DownlinkBudget {
    /// Computes the budget: `captures` high-resolution frames of
    /// `image_px × image_px` pixels at `bytes_per_px` (after onboard
    /// compression) against `contact_s` of ground contact.
    pub fn compute(
        radio: &RadioModel,
        contact_s: f64,
        captures: f64,
        image_px: f64,
        bytes_per_px: f64,
    ) -> DownlinkBudget {
        DownlinkBudget {
            capacity_bytes: radio.capacity_bytes(contact_s),
            produced_bytes: captures.max(0.0) * image_px * image_px * bytes_per_px.max(0.0),
        }
    }

    /// Fraction of produced imagery that fits in the contact (1 = all).
    pub fn deliverable_fraction(&self) -> f64 {
        if self.produced_bytes <= 0.0 {
            1.0
        } else {
            (self.capacity_bytes / self.produced_bytes).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crosslink_claim_holds() {
        // §5.3: <1 MB per orbit, trivially carried by S-band.
        let b = CrosslinkBudget::paper_default();
        assert!(b.bytes_per_orbit < 1.0e6, "volume {}", b.bytes_per_orbit);
        assert!(b.airtime_s < 3.0, "airtime {}", b.airtime_s);
        assert!(b.is_negligible());
    }

    #[test]
    fn airtime_is_linear_in_bytes() {
        let r = RadioModel::s_band();
        assert!((r.airtime_s(0.4e6) - 1.0).abs() < 1e-12);
        assert!((r.airtime_s(4.0e6) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_radio_never_finishes() {
        let r = RadioModel { rate_bytes_s: 0.0 };
        assert_eq!(r.airtime_s(1.0), f64::INFINITY);
    }

    #[test]
    fn six_minute_contact_bounds_image_downlink() {
        // A 10 km / 3 m GSD frame is ~3333 px square; with 10:1
        // compression at 1 byte/px raw, ~0.1 B/px.
        let r = RadioModel::s_band();
        let b = DownlinkBudget::compute(&r, 6.0 * 60.0, 400.0, 3_333.0, 0.1);
        // 400 captures/orbit exceed the link: prioritization is needed.
        assert!(b.deliverable_fraction() < 1.0);
        // A more selective 100 captures fit comfortably.
        let b2 = DownlinkBudget::compute(&r, 6.0 * 60.0, 100.0, 3_333.0, 0.1);
        assert!(
            b2.deliverable_fraction() > 0.9,
            "{}",
            b2.deliverable_fraction()
        );
    }

    #[test]
    fn no_production_is_fully_deliverable() {
        let r = RadioModel::s_band();
        let b = DownlinkBudget::compute(&r, 0.0, 0.0, 3_333.0, 0.1);
        assert_eq!(b.deliverable_fraction(), 1.0);
    }
}
