use crate::{ActivityProfile, PowerProfile};

/// A simple energy store with clamped charge/discharge.
///
/// # Example
///
/// ```
/// use eagleeye_sim::Battery;
///
/// let mut b = Battery::new(100.0);
/// b.withdraw(40.0);
/// assert_eq!(b.charge_j(), 60.0);
/// let unmet = b.withdraw(100.0);
/// assert_eq!(unmet, 40.0);       // demand exceeded the store
/// assert_eq!(b.charge_j(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    charge_j: f64,
}

impl Battery {
    /// Creates a battery at full charge.
    pub fn new(capacity_j: f64) -> Self {
        let c = capacity_j.max(0.0);
        Battery {
            capacity_j: c,
            charge_j: c,
        }
    }

    /// Capacity, joules.
    #[inline]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Current charge, joules.
    #[inline]
    pub fn charge_j(&self) -> f64 {
        self.charge_j
    }

    /// State of charge in `[0, 1]`.
    #[inline]
    pub fn state_of_charge(&self) -> f64 {
        if self.capacity_j <= 0.0 {
            0.0
        } else {
            self.charge_j / self.capacity_j
        }
    }

    /// Deposits energy; overflow beyond capacity is discarded (the panel
    /// is shunted). Returns the energy actually stored.
    pub fn deposit(&mut self, energy_j: f64) -> f64 {
        let e = energy_j.max(0.0);
        let stored = e.min(self.capacity_j - self.charge_j);
        self.charge_j += stored;
        stored
    }

    /// Withdraws energy; returns the unmet demand (zero when the battery
    /// covered everything).
    pub fn withdraw(&mut self, energy_j: f64) -> f64 {
        let e = energy_j.max(0.0);
        let met = e.min(self.charge_j);
        self.charge_j -= met;
        e - met
    }
}

/// Result of a time-stepped battery simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySeries {
    /// State of charge at each step.
    pub soc: Vec<f64>,
    /// First time (seconds) at which demand went unmet, if ever.
    pub depleted_at_s: Option<f64>,
    /// Minimum state of charge reached.
    pub min_soc: f64,
}

/// Steps a battery through `orbits` orbits of the given activity with
/// `step_s` resolution, charging during the sunlit fraction of each
/// orbit and drawing the activity's average power continuously.
///
/// This is the failure-injection view of the energy model: it shows not
/// just whether an activity is feasible on average (see
/// [`crate::simulate_orbit`]) but when an infeasible one actually browns
/// out.
pub fn simulate_battery(
    power: &PowerProfile,
    activity: &ActivityProfile,
    sunlit_fraction: f64,
    period_s: f64,
    orbits: usize,
    step_s: f64,
) -> BatterySeries {
    let mut battery = Battery::new(power.battery_capacity_j);
    let step = step_s.max(1.0);
    let total_s = period_s * orbits as f64;
    let steps = (total_s / step).ceil() as usize;

    // Average consumption power over the orbit.
    let consumption_j = {
        let camera = activity.frames_captured * power.camera_j_per_frame;
        let adacs = activity.slew_s * power.adacs_slew_w + period_s * power.adacs_idle_w;
        let compute = activity.compute_s() * power.compute_w;
        let tx = activity.tx_s * power.tx_w;
        let idle = period_s * power.idle_w;
        camera + adacs + compute + tx + idle
    };
    let draw_w = consumption_j / period_s.max(1.0);

    let mut soc = Vec::with_capacity(steps);
    let mut depleted_at_s = None;
    let mut min_soc = 1.0f64;
    for i in 0..steps {
        let t = i as f64 * step;
        // Sunlit portion modeled as the first `sunlit_fraction` of each
        // orbit (cylindrical shadow enters/exits once per orbit).
        let phase = (t % period_s) / period_s;
        if phase < sunlit_fraction {
            battery.deposit(power.solar_harvest_w * step);
        }
        let unmet = battery.withdraw(draw_w * step);
        if unmet > 0.0 && depleted_at_s.is_none() {
            depleted_at_s = Some(t);
        }
        min_soc = min_soc.min(battery.state_of_charge());
        soc.push(battery.state_of_charge());
    }
    BatterySeries {
        soc,
        depleted_at_s,
        min_soc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_clamps_deposit_and_withdraw() {
        let mut b = Battery::new(10.0);
        assert_eq!(b.deposit(5.0), 0.0); // already full
        assert_eq!(b.withdraw(4.0), 0.0);
        assert_eq!(b.charge_j(), 6.0);
        assert_eq!(b.deposit(100.0), 4.0);
        assert_eq!(b.charge_j(), 10.0);
        assert_eq!(b.withdraw(12.0), 2.0);
        assert_eq!(b.charge_j(), 0.0);
    }

    #[test]
    fn negative_amounts_are_ignored() {
        let mut b = Battery::new(10.0);
        assert_eq!(b.deposit(-5.0), 0.0);
        assert_eq!(b.withdraw(-5.0), 0.0);
        assert_eq!(b.charge_j(), 10.0);
    }

    #[test]
    fn feasible_leader_never_browns_out() {
        let s = simulate_battery(
            &PowerProfile::cubesat_3u(),
            &ActivityProfile::leader_default(1.0),
            0.62,
            5_640.0,
            15, // ~one day
            10.0,
        );
        assert!(
            s.depleted_at_s.is_none(),
            "depleted at {:?}",
            s.depleted_at_s
        );
        assert!(s.min_soc > 0.0);
    }

    #[test]
    fn four_x_tiling_browns_out_within_a_day() {
        let s = simulate_battery(
            &PowerProfile::cubesat_3u(),
            &ActivityProfile::leader_default(4.0),
            0.62,
            5_640.0,
            15,
            10.0,
        );
        assert!(s.depleted_at_s.is_some());
    }

    #[test]
    fn soc_is_always_in_unit_interval() {
        let s = simulate_battery(
            &PowerProfile::cubesat_3u(),
            &ActivityProfile::baseline_default(2.0),
            0.62,
            5_640.0,
            3,
            30.0,
        );
        for &x in &s.soc {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn eclipse_discharges_then_sun_recharges() {
        let s = simulate_battery(
            &PowerProfile::cubesat_3u(),
            &ActivityProfile::leader_default(1.0),
            0.62,
            5_640.0,
            2,
            10.0,
        );
        // SOC must not be constant: there is day/night structure.
        let min = s.soc.iter().cloned().fold(1.0f64, f64::min);
        let max = s.soc.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.005, "soc range {} .. {}", min, max);
    }
}
