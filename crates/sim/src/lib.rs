//! Orbital edge computing simulator: energy harvesting, per-subsystem
//! energy accounting, battery state, and compute-latency budgeting for a
//! 3U cubesat.
//!
//! This crate stands in for the energy/compute side of `cote` (the
//! orbital edge computing simulator the paper builds on), using the same
//! published 3U-cubesat parameters: a single body-mounted solar panel
//! harvesting in sunlight, a Jetson AGX Orin in its 15 W mode for
//! inference, a camera with per-frame capture energy, reaction-wheel
//! ADACS power while slewing, and an S-band radio with a six-minute
//! downlink window per orbit (paper §5.3).
//!
//! The top-level entry points:
//!
//! * [`PowerProfile`] — subsystem power/energy constants.
//! * [`ActivityProfile`] — what a satellite does in one orbit (frames
//!   imaged, tiles inferred, seconds slewing and transmitting).
//! * [`simulate_orbit`] — per-orbit energy report by subsystem, the data
//!   behind the paper's Fig. 16.
//! * [`Battery`] + [`simulate_battery`] — time-stepped battery state for
//!   failure analysis (e.g. 4× tiling exhausting the leader's budget).
//! * [`FaultPlan`] — seeded, reproducible fault injection (outages,
//!   detector dropout, link/ADACS derating, brownouts) consumed by the
//!   degraded-mode machinery in `eagleeye-core`.
//!
//! # Example
//!
//! ```
//! use eagleeye_sim::{ActivityProfile, PowerProfile, simulate_orbit};
//!
//! let power = PowerProfile::cubesat_3u();
//! let leader = ActivityProfile::leader_default(1.0); // 1x tiling
//! let report = simulate_orbit(&power, &leader, 0.62, 5_640.0);
//! assert!(report.is_energy_feasible());
//! let heavy = ActivityProfile::leader_default(4.0);  // 4x tiling
//! let report4 = simulate_orbit(&power, &heavy, 0.62, 5_640.0);
//! assert!(!report4.is_energy_feasible());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod activity;
mod battery;
mod energy;
mod fault;
mod power;
mod radio;

pub use activity::ActivityProfile;
pub use battery::{simulate_battery, Battery, BatterySeries};
pub use energy::{simulate_orbit, OrbitEnergyReport, SubsystemEnergy};
pub use fault::{Fault, FaultKind, FaultPlan, FaultScenario};
pub use power::PowerProfile;
pub use radio::{CrosslinkBudget, DownlinkBudget, RadioModel};
