//! Orbital mechanics substrate: TLEs, Keplerian propagation with J2
//! secular perturbations, ground tracks, and constellation layout.
//!
//! The EagleEye paper models its constellation with the `cote` orbital
//! edge computing simulator, initialized from Celestrak two-line element
//! sets, flying a sun-synchronous polar orbit (475 km altitude, 97.2°
//! inclination, ~94 minute period). This crate provides the equivalent
//! machinery from scratch:
//!
//! * [`Tle`] — two-line element parsing (with checksum validation) and
//!   formatting.
//! * [`KeplerianElements`] — classical orbital elements and conversion to
//!   Earth-centered inertial state vectors (solving Kepler's equation).
//! * [`J2Propagator`] — secular J2 propagation (nodal regression, apsidal
//!   precession, mean-anomaly drift). For a 475 km orbit over 24 hours
//!   the omitted drag/short-period terms displace the ground track by far
//!   less than one swath width, which is the tolerance that matters for
//!   coverage simulation (see DESIGN.md substitution notes).
//! * [`GroundTrack`] — ECI→ECEF rotation by Greenwich sidereal angle,
//!   subsatellite points, ground speed/heading, and a cylindrical-shadow
//!   sunlight model for the energy simulator.
//! * [`ConstellationLayout`] — leader-follower groups evenly phased in a
//!   single orbital plane, with followers trailing the leader by a fixed
//!   ground distance (100 km in the paper, §5.3).
//! * [`PropagationCache`] / [`EpochGrid`] — batch propagation over an
//!   evaluation horizon's frame epochs, memoizing the per-epoch sidereal
//!   trig that is shared by every satellite (bit-identical to direct
//!   [`GroundTrack::state_at`] calls).
//!
//! # Example
//!
//! ```
//! use eagleeye_orbit::{J2Propagator, GroundTrack};
//!
//! // The paper's orbit: 475 km, 97.2 degrees, polar sun-synchronous.
//! let prop = J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0)?;
//! assert!((prop.period_s() - 94.0 * 60.0).abs() < 60.0);
//!
//! let track = GroundTrack::new(prop);
//! let s = track.state_at(0.0)?;
//! assert!(s.ground_speed_m_s > 6_000.0 && s.ground_speed_m_s < 8_500.0);
//! # Ok::<(), eagleeye_orbit::OrbitError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
mod cache;
mod constellation;
mod error;
mod groundtrack;
mod kepler;
mod propagator;
mod sgp4;
mod tle;

pub use cache::{frame_epochs, EpochGrid, PropagationCache};
pub use constellation::{ConstellationLayout, GroupSpec, SatelliteRole, SatelliteSpec};
pub use error::OrbitError;
pub use groundtrack::{GroundTrack, TrackState};
pub use kepler::{EciState, KeplerianElements};
pub use propagator::J2Propagator;
pub use sgp4::Sgp4Propagator;
pub use tle::Tle;
