use crate::kepler::{EciState, KeplerianElements};
use crate::{OrbitError, Tle};
use eagleeye_geo::earth::{J2, MEAN_RADIUS_M, WGS84_A_M};

/// A Keplerian propagator with first-order secular J2 perturbations.
///
/// J2 (Earth oblateness) produces three secular effects that matter for a
/// multi-day LEO simulation: regression of the ascending node (the effect
/// that makes 97.2°-inclination orbits sun-synchronous), precession of
/// the argument of perigee, and a mean-anomaly drift. Short-period J2
/// oscillations and atmospheric drag are omitted; over the paper's 24 h
/// evaluation they displace a 475 km ground track by far less than one
/// swath width (see DESIGN.md).
///
/// # Example
///
/// ```
/// use eagleeye_orbit::J2Propagator;
///
/// let p = J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0)?;
/// let day = 86_400.0;
/// // Sun-synchronous: the node precesses ~ +0.9856 deg/day (eastward).
/// let drift_deg = p.raan_rate_rad_s().to_degrees() * day;
/// assert!(drift_deg > 0.5 && drift_deg < 1.5, "drift {drift_deg}");
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct J2Propagator {
    elements: KeplerianElements,
    raan_rate_rad_s: f64,
    argp_rate_rad_s: f64,
    mean_anomaly_rate_rad_s: f64,
}

impl J2Propagator {
    /// Creates a propagator from an element set at epoch `t = 0`.
    pub fn new(elements: KeplerianElements) -> Self {
        let n = elements.mean_motion_rad_s();
        let p = elements.semi_latus_rectum_m();
        let re_p = WGS84_A_M / p;
        let factor = 1.5 * J2 * re_p * re_p * n;
        let (s_i, c_i) = elements.inclination_rad().sin_cos();
        let e2 = elements.eccentricity() * elements.eccentricity();

        let raan_rate = -factor * c_i;
        let argp_rate = factor * (2.0 - 2.5 * s_i * s_i);
        let m_rate = n + factor * (1.0 - e2).sqrt() * (1.0 - 1.5 * s_i * s_i);

        J2Propagator {
            elements,
            raan_rate_rad_s: raan_rate,
            argp_rate_rad_s: argp_rate,
            mean_anomaly_rate_rad_s: m_rate,
        }
    }

    /// Convenience constructor for a circular orbit, the paper's
    /// configuration: `altitude_m` above the mean-radius sphere,
    /// inclination, RAAN, and an initial phase angle along the orbit
    /// (mean anomaly offset, used to space constellation groups).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] for out-of-domain values.
    pub fn circular(
        altitude_m: f64,
        inclination_rad: f64,
        raan_rad: f64,
        phase_rad: f64,
    ) -> Result<Self, OrbitError> {
        let elements = KeplerianElements::new(
            MEAN_RADIUS_M + altitude_m,
            0.0,
            inclination_rad,
            raan_rad,
            0.0,
            phase_rad,
        )?;
        Ok(J2Propagator::new(elements))
    }

    /// Creates a propagator from a parsed [`Tle`].
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] if the TLE encodes an
    /// unsupported orbit (e.g. hyperbolic).
    pub fn from_tle(tle: &Tle) -> Result<Self, OrbitError> {
        Ok(J2Propagator::new(tle.elements()?))
    }

    /// Element set at epoch.
    #[inline]
    pub fn epoch_elements(&self) -> &KeplerianElements {
        &self.elements
    }

    /// Orbital period in seconds (Keplerian).
    #[inline]
    pub fn period_s(&self) -> f64 {
        self.elements.period_s()
    }

    /// Secular nodal regression rate, rad/s.
    #[inline]
    pub fn raan_rate_rad_s(&self) -> f64 {
        self.raan_rate_rad_s
    }

    /// Secular apsidal precession rate, rad/s.
    #[inline]
    pub fn argp_rate_rad_s(&self) -> f64 {
        self.argp_rate_rad_s
    }

    /// Perturbed mean motion, rad/s.
    #[inline]
    pub fn mean_anomaly_rate_rad_s(&self) -> f64 {
        self.mean_anomaly_rate_rad_s
    }

    /// Element set propagated to `t_s` seconds past epoch.
    pub fn elements_at(&self, t_s: f64) -> KeplerianElements {
        self.elements.with_angles(
            self.elements.raan_rad() + self.raan_rate_rad_s * t_s,
            self.elements.arg_perigee_rad() + self.argp_rate_rad_s * t_s,
            self.elements.mean_anomaly_rad() + self.mean_anomaly_rate_rad_s * t_s,
        )
    }

    /// ECI state at `t_s` seconds past epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`OrbitError::KeplerDivergence`] (never occurs for the
    /// near-circular orbits this workspace uses).
    pub fn state_at(&self, t_s: f64) -> Result<EciState, OrbitError> {
        let e = self.elements_at(t_s);
        e.eci_state_at_mean_anomaly(e.mean_anomaly_rad())
    }

    /// Returns a copy phase-shifted by `delta_rad` along the orbit
    /// (positive = ahead). Used to lay out constellation groups and
    /// trailing followers.
    pub fn phase_shifted(&self, delta_rad: f64) -> J2Propagator {
        let e = self.elements.with_angles(
            self.elements.raan_rad(),
            self.elements.arg_perigee_rad(),
            self.elements.mean_anomaly_rad() + delta_rad,
        );
        J2Propagator::new(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_prop() -> J2Propagator {
        J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).unwrap()
    }

    #[test]
    fn sun_synchronous_node_rate() {
        // 97.2 deg at ~475 km is approximately sun-synchronous:
        // RAAN rate ≈ 360 deg / 365.25 days ≈ 0.9856 deg/day eastward.
        let p = paper_prop();
        let per_day = p.raan_rate_rad_s().to_degrees() * 86_400.0;
        assert!(per_day > 0.7 && per_day < 1.3, "rate {per_day} deg/day");
    }

    #[test]
    fn retrograde_orbit_regresses_eastward_prograde_westward() {
        let retro = J2Propagator::circular(500_000.0, 100_f64.to_radians(), 0.0, 0.0).unwrap();
        let pro = J2Propagator::circular(500_000.0, 50_f64.to_radians(), 0.0, 0.0).unwrap();
        assert!(retro.raan_rate_rad_s() > 0.0);
        assert!(pro.raan_rate_rad_s() < 0.0);
    }

    #[test]
    fn state_advances_one_revolution_per_period() {
        let p = paper_prop();
        let s0 = p.state_at(0.0).unwrap();
        // After a nodal period the position nearly repeats in the orbital
        // plane. Use the Keplerian period and allow J2 drift slack.
        let s1 = p.state_at(p.period_s()).unwrap();
        let sep = (s0.position - s1.position).norm();
        assert!(sep < 0.02 * s0.radius_m(), "separation {sep}");
    }

    #[test]
    fn phase_shift_moves_satellite_along_track() {
        let p = paper_prop();
        let q = p.phase_shifted(0.01);
        let sp = p.state_at(0.0).unwrap();
        let sq = q.state_at(0.0).unwrap();
        let expected = 0.01 * sp.radius_m();
        let sep = (sp.position - sq.position).norm();
        assert!(
            (sep - expected).abs() / expected < 0.05,
            "sep {sep} vs {expected}"
        );
        // The shifted satellite leads: it is roughly where p will be
        // shortly.
        let dt = 0.01 / p.mean_anomaly_rate_rad_s();
        let sp_later = p.state_at(dt).unwrap();
        assert!((sp_later.position - sq.position).norm() < 0.001 * sp.radius_m());
    }

    #[test]
    fn altitude_is_maintained_over_a_day() {
        let p = paper_prop();
        for i in 0..96 {
            let s = p.state_at(i as f64 * 900.0).unwrap();
            let alt = s.radius_m() - MEAN_RADIUS_M;
            assert!((alt - 475_000.0).abs() < 2_000.0, "alt {alt}");
        }
    }
}
