//! Ground-station access windows.
//!
//! The paper's operating model gives each satellite six minutes of
//! downlink per orbit (§5.3). This module computes the underlying
//! quantity from geometry: the contact windows during which a satellite
//! is above a ground station's minimum elevation mask.

use crate::{GroundTrack, OrbitError};
use eagleeye_geo::{GeodeticPoint, Vec3};

/// A ground station with an elevation mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundStation {
    location: GeodeticPoint,
    min_elevation_rad: f64,
}

impl GroundStation {
    /// Creates a station.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] for an elevation mask
    /// outside `[0, π/2)`.
    pub fn new(location: GeodeticPoint, min_elevation_rad: f64) -> Result<Self, OrbitError> {
        if !(0.0..std::f64::consts::FRAC_PI_2).contains(&min_elevation_rad) {
            return Err(OrbitError::InvalidElement {
                name: "min_elevation_rad",
                value: min_elevation_rad,
            });
        }
        Ok(GroundStation {
            location,
            min_elevation_rad,
        })
    }

    /// Station location.
    #[inline]
    pub fn location(&self) -> GeodeticPoint {
        self.location
    }

    /// Minimum usable elevation, radians.
    #[inline]
    pub fn min_elevation_rad(&self) -> f64 {
        self.min_elevation_rad
    }

    /// Elevation of a satellite (ECEF position) as seen from the
    /// station, radians; negative below the horizon.
    pub fn elevation_rad(&self, sat_ecef: Vec3) -> f64 {
        let stn = self.location.to_ecef_spherical().as_vec3();
        let up = match stn.normalized() {
            Some(u) => u,
            None => return -std::f64::consts::FRAC_PI_2,
        };
        let rel = sat_ecef - stn;
        match rel.normalized() {
            Some(r) => (r.dot(up)).clamp(-1.0, 1.0).asin(),
            None => std::f64::consts::FRAC_PI_2,
        }
    }
}

/// One contact opportunity between a satellite and a station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWindow {
    /// Contact start, seconds past epoch.
    pub start_s: f64,
    /// Contact end, seconds past epoch.
    pub end_s: f64,
    /// Peak elevation during the contact, radians.
    pub max_elevation_rad: f64,
}

impl ContactWindow {
    /// Contact duration, seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Computes all contact windows in `[t0_s, t1_s]`, sampling the orbit at
/// `step_s` (boundaries are located by bisection to sub-second
/// precision).
///
/// # Errors
///
/// Propagates propagation failures.
///
/// # Example
///
/// ```
/// use eagleeye_orbit::{access, GroundTrack, J2Propagator};
/// use eagleeye_geo::GeodeticPoint;
///
/// let track = GroundTrack::new(
///     J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0)?);
/// // A polar station sees a polar orbit nearly every revolution.
/// let svalbard = GeodeticPoint::from_degrees(78.2, 15.4, 0.0)
///     .map_err(eagleeye_orbit::OrbitError::Geo)?;
/// let station = access::GroundStation::new(svalbard, 5.0_f64.to_radians())?;
/// let contacts = access::contact_windows(&track, &station, 0.0, 6.0 * 3600.0, 10.0)?;
/// assert!(!contacts.is_empty());
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
pub fn contact_windows(
    track: &GroundTrack,
    station: &GroundStation,
    t0_s: f64,
    t1_s: f64,
    step_s: f64,
) -> Result<Vec<ContactWindow>, OrbitError> {
    let step = step_s.max(1.0);
    let visible = |t: f64| -> Result<(bool, f64), OrbitError> {
        let s = track.propagator().state_at(t)?;
        let ecef = track.eci_to_ecef(s.position, t);
        let elev = station.elevation_rad(ecef.as_vec3());
        Ok((elev >= station.min_elevation_rad(), elev))
    };
    let refine = |mut lo: f64, mut hi: f64, want_rising: bool| -> Result<f64, OrbitError> {
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            let (vis, _) = visible(mid)?;
            if vis == want_rising {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok((lo + hi) / 2.0)
    };

    let mut windows = Vec::new();
    let mut t = t0_s;
    let (mut was_visible, mut elev) = visible(t)?;
    let mut start = if was_visible { Some(t0_s) } else { None };
    let mut peak = elev;
    while t < t1_s {
        let t_next = (t + step).min(t1_s);
        let (vis, e) = visible(t_next)?;
        match (was_visible, vis) {
            (false, true) => {
                start = Some(refine(t, t_next, true)?);
                peak = e;
            }
            (true, false) => {
                let end = refine(t, t_next, false)?;
                if let Some(s) = start.take() {
                    windows.push(ContactWindow {
                        start_s: s,
                        end_s: end,
                        max_elevation_rad: peak,
                    });
                }
            }
            (true, true) => peak = peak.max(e),
            (false, false) => {}
        }
        was_visible = vis;
        elev = e;
        t = t_next;
    }
    let _ = elev;
    if let Some(s) = start {
        windows.push(ContactWindow {
            start_s: s,
            end_s: t1_s,
            max_elevation_rad: peak,
        });
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::J2Propagator;

    fn polar_track() -> GroundTrack {
        GroundTrack::new(
            J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).unwrap(),
        )
    }

    fn station(lat: f64, lon: f64, elev_deg: f64) -> GroundStation {
        GroundStation::new(
            GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap(),
            elev_deg.to_radians(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_elevation_mask() {
        let p = GeodeticPoint::from_degrees(0.0, 0.0, 0.0).unwrap();
        assert!(GroundStation::new(p, -0.1).is_err());
        assert!(GroundStation::new(p, 1.6).is_err());
    }

    #[test]
    fn overhead_satellite_has_ninety_degree_elevation() {
        let s = station(0.0, 0.0, 5.0);
        let sat = GeodeticPoint::from_degrees(0.0, 0.0, 475_000.0)
            .unwrap()
            .to_ecef_spherical()
            .as_vec3();
        let e = s.elevation_rad(sat);
        assert!((e - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn antipodal_satellite_is_below_horizon() {
        let s = station(0.0, 0.0, 5.0);
        let sat = GeodeticPoint::from_degrees(0.0, 180.0, 475_000.0)
            .unwrap()
            .to_ecef_spherical()
            .as_vec3();
        assert!(s.elevation_rad(sat) < 0.0);
    }

    #[test]
    fn polar_station_gets_contact_most_orbits() {
        let track = polar_track();
        let s = station(85.0, 0.0, 5.0);
        let windows = contact_windows(&track, &s, 0.0, 4.0 * 5_640.0, 15.0).unwrap();
        // A near-polar station sees a 97 deg orbit on essentially every
        // revolution.
        assert!(windows.len() >= 3, "only {} contacts", windows.len());
        for w in &windows {
            assert!(w.duration_s() > 60.0 && w.duration_s() < 16.0 * 60.0);
            assert!(w.max_elevation_rad > 0.0);
        }
    }

    #[test]
    fn equatorial_station_sees_fewer_contacts_than_polar() {
        let track = polar_track();
        let polar = station(85.0, 0.0, 5.0);
        let equatorial = station(0.0, 90.0, 5.0);
        let horizon = 8.0 * 5_640.0;
        let np = contact_windows(&track, &polar, 0.0, horizon, 20.0)
            .unwrap()
            .len();
        let ne = contact_windows(&track, &equatorial, 0.0, horizon, 20.0)
            .unwrap()
            .len();
        assert!(np > ne, "polar {np} vs equatorial {ne}");
    }

    #[test]
    fn higher_mask_shortens_contacts() {
        let track = polar_track();
        let lo = station(85.0, 0.0, 5.0);
        let hi = station(85.0, 0.0, 30.0);
        let horizon = 2.0 * 5_640.0;
        let d_lo: f64 = contact_windows(&track, &lo, 0.0, horizon, 10.0)
            .unwrap()
            .iter()
            .map(ContactWindow::duration_s)
            .sum();
        let d_hi: f64 = contact_windows(&track, &hi, 0.0, horizon, 10.0)
            .unwrap()
            .iter()
            .map(ContactWindow::duration_s)
            .sum();
        assert!(d_lo > d_hi, "lo {d_lo} vs hi {d_hi}");
    }
}
