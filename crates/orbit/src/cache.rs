//! Batched orbit propagation with per-epoch trig memoization.
//!
//! The coverage evaluator steps every satellite over the same frame
//! epochs (`t = 0, c, 2c, …`). Propagating lazily inside the frame loop
//! recomputes, per satellite per frame, the Greenwich-sidereal-angle
//! sine/cosine for the ECI→ECEF rotation — values that depend only on
//! the epoch, not the satellite. [`EpochGrid`] hoists that trig out of
//! the loop (one pair per epoch, shared by the whole constellation) and
//! [`PropagationCache`] batch-propagates each satellite over the grid
//! once, so the frame loop reads precomputed [`TrackState`]s instead of
//! re-deriving orbit state.
//!
//! Cached and direct propagation are **bit-identical**: the grid
//! evaluates [`GroundTrack::gmst_at`] — the same function `state_at`
//! uses — at the same epochs, and feeds the results through
//! [`GroundTrack::state_at_with_trig`].
//!
//! # Invalidation
//!
//! A cache is immutable and valid only for the exact `(tracks, grid)`
//! it was built from. Anything that changes the propagation inputs —
//! constellation layout, altitude, inclination, RAAN/phase, GMST epoch,
//! frame cadence, or horizon — requires building a new cache; there is
//! deliberately no partial-update API.

use crate::{GroundTrack, OrbitError, TrackState};
use eagleeye_obs::Metrics;

/// The frame epochs of an evaluation horizon, exactly as the coverage
/// evaluator's `while t < duration { t += cadence }` loop produces them
/// (accumulated, not multiplied, so cached runs match historical
/// float-for-float behaviour).
///
/// Returns an empty grid for non-positive cadence or duration.
pub fn frame_epochs(duration_s: f64, cadence_s: f64) -> Vec<f64> {
    let mut epochs = Vec::new();
    if !(cadence_s > 0.0) {
        return epochs;
    }
    let mut t = 0.0;
    while t < duration_s {
        epochs.push(t);
        t += cadence_s;
    }
    epochs
}

/// Epoch times plus the memoized sidereal-angle trig shared by every
/// satellite propagated over them.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochGrid {
    gmst_epoch_rad: f64,
    epochs: Vec<f64>,
    /// Per epoch: `(sin, cos)` of the sidereal angle at `t` and at
    /// `t + FD_DT_S` (the heading finite-difference point).
    trig: Vec<((f64, f64), (f64, f64))>,
}

impl EpochGrid {
    /// Builds a grid for tracks whose GMST epoch angle is
    /// `gmst_epoch_rad` (0 for every [`crate::ConstellationLayout`]
    /// track).
    pub fn new(gmst_epoch_rad: f64, epochs: Vec<f64>) -> Self {
        let trig = epochs
            .iter()
            .map(|&t| {
                (
                    GroundTrack::gmst_at(gmst_epoch_rad, t).sin_cos(),
                    GroundTrack::gmst_at(gmst_epoch_rad, t + GroundTrack::FD_DT_S).sin_cos(),
                )
            })
            .collect();
        EpochGrid {
            gmst_epoch_rad,
            epochs,
            trig,
        }
    }

    /// Grid over an evaluation horizon (see [`frame_epochs`]).
    pub fn for_horizon(gmst_epoch_rad: f64, duration_s: f64, cadence_s: f64) -> Self {
        Self::new(gmst_epoch_rad, frame_epochs(duration_s, cadence_s))
    }

    /// The epoch times, seconds past epoch.
    #[inline]
    pub fn epochs(&self) -> &[f64] {
        &self.epochs
    }

    /// Number of epochs.
    #[inline]
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True when the grid holds no epochs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The GMST epoch angle the trig was memoized for.
    #[inline]
    pub fn gmst_epoch_rad(&self) -> f64 {
        self.gmst_epoch_rad
    }

    /// Propagates one track over every epoch, reusing the memoized trig
    /// when the track shares the grid's GMST epoch and falling back to
    /// direct propagation (same results, no sharing) when it does not.
    ///
    /// # Errors
    ///
    /// Propagates propagation and geodetic conversion failures.
    pub fn propagate(&self, track: &GroundTrack) -> Result<Vec<TrackState>, OrbitError> {
        self.propagate_observed(track, &Metrics::disabled())
    }

    /// [`EpochGrid::propagate`] with observability: counts propagation
    /// calls and whether the memoized trig was shared (`orbit/trig_hits`)
    /// or the track fell back to direct propagation
    /// (`orbit/trig_misses`). Identical results either way.
    ///
    /// # Errors
    ///
    /// Same as [`EpochGrid::propagate`].
    pub fn propagate_observed(
        &self,
        track: &GroundTrack,
        metrics: &Metrics,
    ) -> Result<Vec<TrackState>, OrbitError> {
        if metrics.is_enabled() {
            metrics.incr("orbit/grid_propagations");
            metrics.add("orbit/propagation_calls", self.len() as u64);
        }
        if track.gmst_epoch_rad() == self.gmst_epoch_rad {
            metrics.incr("orbit/trig_hits");
            self.epochs
                .iter()
                .zip(&self.trig)
                .map(|(&t, &(sc, sc_fd))| track.state_at_with_trig(t, sc, sc_fd))
                .collect()
        } else {
            metrics.incr("orbit/trig_misses");
            self.epochs.iter().map(|&t| track.state_at(t)).collect()
        }
    }
}

/// Batch-propagated [`TrackState`]s for a set of satellites over one
/// epoch grid, indexed `[satellite][frame]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationCache {
    grid: EpochGrid,
    states: Vec<Vec<TrackState>>,
}

impl PropagationCache {
    /// Propagates every track over the grid.
    ///
    /// # Errors
    ///
    /// Propagates propagation and geodetic conversion failures.
    pub fn build(tracks: &[GroundTrack], grid: EpochGrid) -> Result<Self, OrbitError> {
        Self::build_observed(tracks, grid, &Metrics::disabled())
    }

    /// [`PropagationCache::build`] with observability: counts one cache
    /// build (`orbit/cache_builds`) plus the per-track propagation
    /// counters of [`EpochGrid::propagate_observed`].
    ///
    /// # Errors
    ///
    /// Same as [`PropagationCache::build`].
    pub fn build_observed(
        tracks: &[GroundTrack],
        grid: EpochGrid,
        metrics: &Metrics,
    ) -> Result<Self, OrbitError> {
        metrics.incr("orbit/cache_builds");
        let states = tracks
            .iter()
            .map(|tr| grid.propagate_observed(tr, metrics))
            .collect::<Result<_, _>>()?;
        Ok(PropagationCache { grid, states })
    }

    /// Assembles a cache from rows propagated elsewhere (e.g. in
    /// parallel, one worker per satellite via `EpochGrid::propagate`).
    /// Row `i` must be `grid.propagate(&tracks[i])` for the cache to be
    /// meaningful; each row's length must equal the grid's.
    ///
    /// # Panics
    ///
    /// Panics when a row length disagrees with the grid.
    pub fn from_rows(grid: EpochGrid, states: Vec<Vec<TrackState>>) -> Self {
        for (i, row) in states.iter().enumerate() {
            assert_eq!(
                row.len(),
                grid.len(),
                "row {i} has {} states for {} epochs",
                row.len(),
                grid.len()
            );
        }
        PropagationCache { grid, states }
    }

    /// The epoch grid the cache was built over.
    #[inline]
    pub fn grid(&self) -> &EpochGrid {
        &self.grid
    }

    /// Number of cached satellites.
    #[inline]
    pub fn satellite_count(&self) -> usize {
        self.states.len()
    }

    /// All cached states of one satellite, in epoch order.
    #[inline]
    pub fn row(&self, satellite: usize) -> &[TrackState] {
        &self.states[satellite]
    }

    /// Cached state of `satellite` at epoch index `frame`.
    #[inline]
    pub fn state(&self, satellite: usize, frame: usize) -> &TrackState {
        &self.states[satellite][frame]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstellationLayout, J2Propagator};

    fn paper_track(phase: f64) -> GroundTrack {
        GroundTrack::new(
            J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, phase).unwrap(),
        )
    }

    #[test]
    fn frame_epochs_match_accumulation_loop() {
        let epochs = frame_epochs(100.0, 15.0);
        // Replicate the evaluator's historical loop.
        let mut expected = Vec::new();
        let mut t = 0.0;
        while t < 100.0 {
            expected.push(t);
            t += 15.0;
        }
        assert_eq!(epochs, expected);
        assert!(frame_epochs(10.0, 0.0).is_empty());
        assert!(frame_epochs(10.0, -1.0).is_empty());
        assert!(frame_epochs(0.0, 15.0).is_empty());
    }

    #[test]
    fn cached_states_are_bit_identical_to_direct_propagation() {
        let tracks = vec![paper_track(0.0), paper_track(1.3)];
        let grid = EpochGrid::for_horizon(0.0, 3_600.0, 14.7);
        let cache = PropagationCache::build(&tracks, grid.clone()).unwrap();
        assert_eq!(cache.satellite_count(), 2);
        for (i, track) in tracks.iter().enumerate() {
            for (k, &t) in grid.epochs().iter().enumerate() {
                let direct = track.state_at(t).unwrap();
                assert_eq!(cache.state(i, k), &direct, "sat {i} frame {k}");
            }
        }
    }

    #[test]
    fn shifted_gmst_epoch_falls_back_and_still_matches() {
        let track = paper_track(0.0).with_gmst_epoch(0.7);
        let grid = EpochGrid::for_horizon(0.0, 600.0, 15.0);
        let row = grid.propagate(&track).unwrap();
        for (k, &t) in grid.epochs().iter().enumerate() {
            assert_eq!(row[k], track.state_at(t).unwrap());
        }
    }

    #[test]
    fn layout_tracks_share_the_zero_gmst_grid() {
        let layout = ConstellationLayout::uniform(2, 1, 475_000.0, 97.2_f64.to_radians()).unwrap();
        let grid = EpochGrid::for_horizon(0.0, 1_000.0, 15.0);
        for sat in layout.satellites() {
            let track = layout.ground_track(sat).unwrap();
            assert_eq!(track.gmst_epoch_rad(), 0.0);
            assert_eq!(grid.propagate(&track).unwrap().len(), grid.len());
        }
    }

    #[test]
    fn observed_propagation_counts_hits_and_misses() {
        let metrics = Metrics::enabled();
        let grid = EpochGrid::for_horizon(0.0, 600.0, 15.0);
        let shared = paper_track(0.0);
        let shifted = paper_track(0.0).with_gmst_epoch(0.7);
        let a = grid.propagate_observed(&shared, &metrics).unwrap();
        let b = grid.propagate_observed(&shifted, &metrics).unwrap();
        assert_eq!(a, grid.propagate(&shared).unwrap());
        assert_eq!(b, grid.propagate(&shifted).unwrap());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("orbit/trig_hits"), 1);
        assert_eq!(snap.counter("orbit/trig_misses"), 1);
        assert_eq!(snap.counter("orbit/grid_propagations"), 2);
        assert_eq!(
            snap.counter("orbit/propagation_calls"),
            2 * grid.len() as u64
        );

        let cache =
            PropagationCache::build_observed(&[paper_track(0.0)], grid.clone(), &metrics).unwrap();
        assert_eq!(cache.satellite_count(), 1);
        assert_eq!(metrics.snapshot().counter("orbit/cache_builds"), 1);
    }

    #[test]
    #[should_panic(expected = "row 0")]
    fn from_rows_rejects_length_mismatch() {
        let grid = EpochGrid::for_horizon(0.0, 100.0, 15.0);
        PropagationCache::from_rows(grid, vec![vec![]]);
    }
}
