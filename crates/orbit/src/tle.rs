use crate::{KeplerianElements, OrbitError};
use eagleeye_geo::earth::MU_M3_S2;
use std::fmt;

/// A parsed two-line element set.
///
/// Implements the Celestrak/NORAD fixed-column TLE format with modulo-10
/// checksum validation, the same source the paper uses to initialize its
/// orbit model (§5.3). Only the fields needed for Keplerian + J2
/// propagation are retained; drag terms are parsed but unused by
/// [`crate::J2Propagator`] (see the substitution notes in DESIGN.md).
///
/// # Example
///
/// ```
/// use eagleeye_orbit::Tle;
///
/// let tle = Tle::parse(
///     "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009",
///     "2 25544  51.6400 208.9163 0006317  69.9862  25.2906 15.49560532    19",
/// )?;
/// assert_eq!(tle.catalog_number(), 25544);
/// assert!((tle.inclination_deg() - 51.64).abs() < 1e-9);
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tle {
    catalog_number: u32,
    epoch_year: u32,
    epoch_day: f64,
    bstar: f64,
    inclination_deg: f64,
    raan_deg: f64,
    eccentricity: f64,
    arg_perigee_deg: f64,
    mean_anomaly_deg: f64,
    mean_motion_rev_day: f64,
}

impl Tle {
    /// Parses a TLE from its two 69-column lines.
    ///
    /// # Errors
    ///
    /// * [`OrbitError::TleLineLength`] for lines that are not 69 columns.
    /// * [`OrbitError::TleChecksum`] when a checksum digit is wrong.
    /// * [`OrbitError::TleField`] when a numeric field fails to parse.
    pub fn parse(line1: &str, line2: &str) -> Result<Self, OrbitError> {
        let l1 = line1.trim_end();
        let l2 = line2.trim_end();
        if l1.len() != 69 {
            return Err(OrbitError::TleLineLength {
                line: 1,
                len: l1.len(),
            });
        }
        if l2.len() != 69 {
            return Err(OrbitError::TleLineLength {
                line: 2,
                len: l2.len(),
            });
        }
        Self::verify_checksum(l1, 1)?;
        Self::verify_checksum(l2, 2)?;

        let catalog_number = l1[2..7]
            .trim()
            .parse::<u32>()
            .map_err(|_| OrbitError::TleField {
                line: 1,
                field: "catalog number",
            })?;
        let epoch_year = l1[18..20]
            .trim()
            .parse::<u32>()
            .map_err(|_| OrbitError::TleField {
                line: 1,
                field: "epoch year",
            })?;
        let epoch_day = l1[20..32]
            .trim()
            .parse::<f64>()
            .map_err(|_| OrbitError::TleField {
                line: 1,
                field: "epoch day",
            })?;
        let bstar = Self::parse_exponent_field(&l1[53..61]).ok_or(OrbitError::TleField {
            line: 1,
            field: "bstar",
        })?;

        let inclination_deg =
            l2[8..16]
                .trim()
                .parse::<f64>()
                .map_err(|_| OrbitError::TleField {
                    line: 2,
                    field: "inclination",
                })?;
        let raan_deg = l2[17..25]
            .trim()
            .parse::<f64>()
            .map_err(|_| OrbitError::TleField {
                line: 2,
                field: "raan",
            })?;
        let eccentricity = format!("0.{}", l2[26..33].trim())
            .parse::<f64>()
            .map_err(|_| OrbitError::TleField {
                line: 2,
                field: "eccentricity",
            })?;
        let arg_perigee_deg =
            l2[34..42]
                .trim()
                .parse::<f64>()
                .map_err(|_| OrbitError::TleField {
                    line: 2,
                    field: "argument of perigee",
                })?;
        let mean_anomaly_deg =
            l2[43..51]
                .trim()
                .parse::<f64>()
                .map_err(|_| OrbitError::TleField {
                    line: 2,
                    field: "mean anomaly",
                })?;
        let mean_motion_rev_day =
            l2[52..63]
                .trim()
                .parse::<f64>()
                .map_err(|_| OrbitError::TleField {
                    line: 2,
                    field: "mean motion",
                })?;

        Ok(Tle {
            catalog_number,
            epoch_year,
            epoch_day,
            bstar,
            inclination_deg,
            raan_deg,
            eccentricity,
            arg_perigee_deg,
            mean_anomaly_deg,
            mean_motion_rev_day,
        })
    }

    /// Parses the TLE "assumed leading decimal + exponent" field format,
    /// e.g. ` 10270-3` meaning `0.10270e-3`.
    fn parse_exponent_field(field: &str) -> Option<f64> {
        let s = field.trim();
        if s.is_empty() || s == "00000-0" || s == "00000+0" {
            return Some(0.0);
        }
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (-1.0, r),
            None => (1.0, s.strip_prefix('+').unwrap_or(s)),
        };
        let exp_pos = rest.rfind(['-', '+'])?;
        let mantissa: f64 = format!("0.{}", &rest[..exp_pos]).parse().ok()?;
        let exponent: i32 = rest[exp_pos..].parse().ok()?;
        Some(sign * mantissa * 10f64.powi(exponent))
    }

    /// Computes the NORAD modulo-10 checksum of the first 68 columns:
    /// digits count as themselves, `-` counts as 1, everything else 0.
    pub fn checksum(line_body: &str) -> u32 {
        line_body
            .chars()
            .take(68)
            .map(|c| match c {
                '0'..='9' => c as u32 - '0' as u32,
                '-' => 1,
                _ => 0,
            })
            .sum::<u32>()
            % 10
    }

    fn verify_checksum(line: &str, which: u8) -> Result<(), OrbitError> {
        let computed = Self::checksum(line);
        let found =
            line.chars()
                .nth(68)
                .and_then(|c| c.to_digit(10))
                .ok_or(OrbitError::TleField {
                    line: which,
                    field: "checksum digit",
                })?;
        if computed != found {
            return Err(OrbitError::TleChecksum {
                line: which,
                computed,
                found,
            });
        }
        Ok(())
    }

    /// NORAD catalog number.
    #[inline]
    pub fn catalog_number(&self) -> u32 {
        self.catalog_number
    }

    /// Two-digit epoch year as printed in the TLE.
    #[inline]
    pub fn epoch_year(&self) -> u32 {
        self.epoch_year
    }

    /// Fractional day-of-year of the epoch.
    #[inline]
    pub fn epoch_day(&self) -> f64 {
        self.epoch_day
    }

    /// B* drag term (per Earth radii).
    #[inline]
    pub fn bstar(&self) -> f64 {
        self.bstar
    }

    /// Inclination in degrees.
    #[inline]
    pub fn inclination_deg(&self) -> f64 {
        self.inclination_deg
    }

    /// Right ascension of the ascending node in degrees.
    #[inline]
    pub fn raan_deg(&self) -> f64 {
        self.raan_deg
    }

    /// Eccentricity.
    #[inline]
    pub fn eccentricity(&self) -> f64 {
        self.eccentricity
    }

    /// Argument of perigee in degrees.
    #[inline]
    pub fn arg_perigee_deg(&self) -> f64 {
        self.arg_perigee_deg
    }

    /// Mean anomaly in degrees.
    #[inline]
    pub fn mean_anomaly_deg(&self) -> f64 {
        self.mean_anomaly_deg
    }

    /// Mean motion in revolutions per day.
    #[inline]
    pub fn mean_motion_rev_day(&self) -> f64 {
        self.mean_motion_rev_day
    }

    /// Converts to classical orbital elements (semi-major axis recovered
    /// from the mean motion).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] if the encoded orbit is
    /// outside the supported domain.
    pub fn elements(&self) -> Result<KeplerianElements, OrbitError> {
        let n_rad_s = self.mean_motion_rev_day * std::f64::consts::TAU / 86_400.0;
        if n_rad_s <= 0.0 {
            return Err(OrbitError::InvalidElement {
                name: "mean_motion",
                value: self.mean_motion_rev_day,
            });
        }
        let a = (MU_M3_S2 / (n_rad_s * n_rad_s)).cbrt();
        KeplerianElements::new(
            a,
            self.eccentricity,
            self.inclination_deg.to_radians(),
            self.raan_deg.to_radians(),
            self.arg_perigee_deg.to_radians(),
            self.mean_anomaly_deg.to_radians(),
        )
    }

    /// Formats this TLE back to its two lines, recomputing checksums.
    pub fn to_lines(&self) -> (String, String) {
        let mut l1 = format!(
            "1 {:05}U 00000A   {:02}{:012.8}  .00000000  00000-0  00000-0 0  999",
            self.catalog_number, self.epoch_year, self.epoch_day,
        );
        l1.truncate(68);
        while l1.len() < 68 {
            l1.push(' ');
        }
        let c1 = Self::checksum(&l1);
        l1.push(char::from(b'0' + (c1 % 10) as u8));

        let ecc_digits = format!("{:07}", (self.eccentricity * 1e7).round() as u64);
        let mut l2 = format!(
            "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}    1",
            self.catalog_number,
            self.inclination_deg,
            self.raan_deg,
            ecc_digits,
            self.arg_perigee_deg,
            self.mean_anomaly_deg,
            self.mean_motion_rev_day,
        );
        l2.truncate(68);
        while l2.len() < 68 {
            l2.push(' ');
        }
        let c2 = Self::checksum(&l2);
        l2.push(char::from(b'0' + (c2 % 10) as u8));
        (l1, l2)
    }

    /// A synthetic TLE matching the paper's orbit: 475 km altitude,
    /// 97.2° inclination, near-circular.
    pub fn paper_orbit() -> Tle {
        Tle {
            catalog_number: 99001,
            epoch_year: 24,
            epoch_day: 1.0,
            bstar: 0.0,
            inclination_deg: 97.2,
            raan_deg: 0.0,
            eccentricity: 0.0001,
            arg_perigee_deg: 0.0,
            mean_anomaly_deg: 0.0,
            // 94-minute period => 86400 / (94*60) rev/day.
            mean_motion_rev_day: 86_400.0 / (94.0 * 60.0),
        }
    }
}

impl fmt::Display for Tle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (l1, l2) = self.to_lines();
        write!(f, "{l1}\n{l2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ISS_L1: &str = "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009";
    const ISS_L2: &str = "2 25544  51.6400 208.9163 0006317  69.9862  25.2906 15.49560532    19";

    #[test]
    fn parses_iss_style_tle() {
        let tle = Tle::parse(ISS_L1, ISS_L2).unwrap();
        assert_eq!(tle.catalog_number(), 25544);
        assert_eq!(tle.epoch_year(), 24);
        assert!((tle.epoch_day() - 1.5).abs() < 1e-9);
        assert!((tle.inclination_deg() - 51.64).abs() < 1e-9);
        assert!((tle.raan_deg() - 208.9163).abs() < 1e-9);
        assert!((tle.eccentricity() - 0.0006317).abs() < 1e-12);
        assert!((tle.mean_motion_rev_day() - 15.4956_0532).abs() < 1e-7);
        assert!((tle.bstar() - 0.10270e-3).abs() < 1e-9);
    }

    #[test]
    fn iss_semi_major_axis_is_leo() {
        let tle = Tle::parse(ISS_L1, ISS_L2).unwrap();
        let a = tle.elements().unwrap().semi_major_axis_m();
        // ISS: ~6,795 km.
        assert!((a - 6.795e6).abs() < 3e4, "a = {a}");
    }

    #[test]
    fn checksum_rejects_corruption() {
        let mut bad = ISS_L1.to_string();
        bad.replace_range(20..21, "9");
        let err = Tle::parse(&bad, ISS_L2).unwrap_err();
        assert!(matches!(err, OrbitError::TleChecksum { line: 1, .. }));
    }

    #[test]
    fn rejects_short_lines() {
        assert!(matches!(
            Tle::parse("1 25544U", ISS_L2),
            Err(OrbitError::TleLineLength { line: 1, .. })
        ));
        assert!(matches!(
            Tle::parse(ISS_L1, "2 25544"),
            Err(OrbitError::TleLineLength { line: 2, .. })
        ));
    }

    #[test]
    fn exponent_field_parsing() {
        assert_eq!(Tle::parse_exponent_field(" 00000-0"), Some(0.0));
        let v = Tle::parse_exponent_field(" 10270-3").unwrap();
        assert!((v - 0.10270e-3).abs() < 1e-12);
        let v = Tle::parse_exponent_field("-11606-4").unwrap();
        assert!((v + 0.11606e-4).abs() < 1e-12);
    }

    #[test]
    fn round_trip_through_formatting() {
        let tle = Tle::paper_orbit();
        let (l1, l2) = tle.to_lines();
        assert_eq!(l1.len(), 69);
        assert_eq!(l2.len(), 69);
        let re = Tle::parse(&l1, &l2).unwrap();
        assert!((re.inclination_deg() - 97.2).abs() < 1e-3);
        assert!((re.mean_motion_rev_day() - tle.mean_motion_rev_day()).abs() < 1e-6);
        assert!((re.eccentricity() - tle.eccentricity()).abs() < 1e-7);
    }

    #[test]
    fn paper_orbit_altitude() {
        let a = Tle::paper_orbit().elements().unwrap().semi_major_axis_m();
        let alt_km = (a - eagleeye_geo::earth::MEAN_RADIUS_M) / 1000.0;
        // 94-minute period corresponds to ~475 km (within tens of km).
        assert!((alt_km - 475.0).abs() < 40.0, "alt {alt_km}");
    }

    #[test]
    fn display_prints_two_lines() {
        let s = Tle::paper_orbit().to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
