use crate::{GroundTrack, J2Propagator, OrbitError};
use eagleeye_geo::earth::MEAN_RADIUS_M;

/// Role of a satellite within a leader-follower group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatelliteRole {
    /// Low-resolution, high-coverage imaging + onboard detection +
    /// scheduling.
    Leader,
    /// High-resolution, narrow-swath imaging on command from the leader.
    Follower,
}

/// One satellite in a laid-out constellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteSpec {
    /// Group this satellite belongs to.
    pub group: usize,
    /// Role within the group.
    pub role: SatelliteRole,
    /// Index among the group's followers (0 for the leader).
    pub follower_index: usize,
    /// Orbit phase angle relative to the constellation reference, radians.
    pub phase_rad: f64,
    /// Right ascension of the ascending node of this satellite's plane,
    /// radians (0 in the paper's single-plane evaluation).
    pub raan_rad: f64,
}

/// Specification of one leader-follower group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpec {
    /// Number of follower satellites trailing the leader.
    pub followers: usize,
}

/// Lays out leader-follower groups evenly spaced in a single orbital
/// plane, matching the paper's §5.3 configuration: all satellites share
/// one orbit; groups are evenly phased; each group's followers trail its
/// leader by `lead_distance_m` of ground track (100 km — the low-res
/// swath width) with `follower_spacing_m` between successive followers.
///
/// # Example
///
/// ```
/// use eagleeye_orbit::{ConstellationLayout, SatelliteRole};
///
/// // 2 groups of (1 leader + 1 follower): 4 satellites total.
/// let layout = ConstellationLayout::uniform(2, 1, 475_000.0, 97.2_f64.to_radians())?;
/// let sats = layout.satellites();
/// assert_eq!(sats.len(), 4);
/// assert_eq!(sats.iter().filter(|s| s.role == SatelliteRole::Leader).count(), 2);
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConstellationLayout {
    groups: Vec<GroupSpec>,
    altitude_m: f64,
    inclination_rad: f64,
    lead_distance_m: f64,
    follower_spacing_m: f64,
    planes: usize,
    satellites: Vec<SatelliteSpec>,
}

impl ConstellationLayout {
    /// Default leader-to-first-follower ground distance (paper §5.3:
    /// equal to the 100 km low-resolution swath width).
    pub const DEFAULT_LEAD_DISTANCE_M: f64 = 100_000.0;
    /// Default spacing between successive followers of one group.
    pub const DEFAULT_FOLLOWER_SPACING_M: f64 = 20_000.0;

    /// Creates a layout with identical groups.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] when `groups == 0` or the
    /// orbit parameters are out of range.
    pub fn uniform(
        groups: usize,
        followers_per_group: usize,
        altitude_m: f64,
        inclination_rad: f64,
    ) -> Result<Self, OrbitError> {
        Self::with_planes(groups, followers_per_group, altitude_m, inclination_rad, 1)
    }

    /// Like [`ConstellationLayout::uniform`] but distributing groups
    /// round-robin across `planes` orbital planes whose ascending nodes
    /// are spread evenly over half a revolution (ascending/descending
    /// tracks of opposite nodes overlap, so π of RAAN spread suffices).
    /// This is the paper's §4.7 "Orbit Design" extension; `planes = 1`
    /// reproduces the paper's evaluated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] for zero groups/planes or
    /// invalid orbit parameters.
    pub fn with_planes(
        groups: usize,
        followers_per_group: usize,
        altitude_m: f64,
        inclination_rad: f64,
        planes: usize,
    ) -> Result<Self, OrbitError> {
        Self::new_full(
            vec![
                GroupSpec {
                    followers: followers_per_group
                };
                groups
            ],
            altitude_m,
            inclination_rad,
            Self::DEFAULT_LEAD_DISTANCE_M,
            Self::DEFAULT_FOLLOWER_SPACING_M,
            planes,
        )
    }

    /// Creates a layout with per-group follower counts and explicit
    /// spacing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] when `groups` is empty, a
    /// spacing is negative, or the orbit parameters are out of range.
    pub fn new(
        groups: Vec<GroupSpec>,
        altitude_m: f64,
        inclination_rad: f64,
        lead_distance_m: f64,
        follower_spacing_m: f64,
    ) -> Result<Self, OrbitError> {
        Self::new_full(
            groups,
            altitude_m,
            inclination_rad,
            lead_distance_m,
            follower_spacing_m,
            1,
        )
    }

    /// Like [`ConstellationLayout::with_planes`] but phasing groups
    /// against a fixed capacity of `phase_slots` orbital positions
    /// instead of the actual group count: group `g` always occupies
    /// slot `g` of `phase_slots`, so adding or removing trailing groups
    /// leaves every surviving satellite's orbital elements bit-for-bit
    /// unchanged. With `phase_slots == groups` this reproduces
    /// [`ConstellationLayout::with_planes`] exactly. This is the
    /// geometry pin behind incremental what-if re-evaluation
    /// (DESIGN.md §14): a slot-pinned child scenario shares the parent's
    /// compiled tracks instead of recompiling a globally re-phased
    /// constellation.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] when `phase_slots <
    /// groups` (a slot per group is required) or for any input
    /// [`ConstellationLayout::with_planes`] rejects.
    pub fn with_planes_slotted(
        groups: usize,
        followers_per_group: usize,
        altitude_m: f64,
        inclination_rad: f64,
        planes: usize,
        phase_slots: usize,
    ) -> Result<Self, OrbitError> {
        if phase_slots < groups {
            return Err(OrbitError::InvalidElement {
                name: "phase_slots",
                value: phase_slots as f64,
            });
        }
        Self::assemble(
            vec![
                GroupSpec {
                    followers: followers_per_group
                };
                groups
            ],
            altitude_m,
            inclination_rad,
            Self::DEFAULT_LEAD_DISTANCE_M,
            Self::DEFAULT_FOLLOWER_SPACING_M,
            planes,
            Some(phase_slots),
        )
    }

    /// Fully-general constructor with an orbital-plane count.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] when `groups` is empty,
    /// `planes == 0`, a spacing is negative, or the orbit parameters are
    /// out of range.
    pub fn new_full(
        groups: Vec<GroupSpec>,
        altitude_m: f64,
        inclination_rad: f64,
        lead_distance_m: f64,
        follower_spacing_m: f64,
        planes: usize,
    ) -> Result<Self, OrbitError> {
        Self::assemble(
            groups,
            altitude_m,
            inclination_rad,
            lead_distance_m,
            follower_spacing_m,
            planes,
            None,
        )
    }

    /// Shared constructor body: `phase_slots` of `None` phases groups
    /// against the actual group count (the legacy layout); `Some(s)`
    /// phases them against a fixed capacity of `s` slots.
    fn assemble(
        groups: Vec<GroupSpec>,
        altitude_m: f64,
        inclination_rad: f64,
        lead_distance_m: f64,
        follower_spacing_m: f64,
        planes: usize,
        phase_slots: Option<usize>,
    ) -> Result<Self, OrbitError> {
        if planes == 0 {
            return Err(OrbitError::InvalidElement {
                name: "planes",
                value: 0.0,
            });
        }
        if groups.is_empty() {
            return Err(OrbitError::InvalidElement {
                name: "groups",
                value: 0.0,
            });
        }
        if !(lead_distance_m >= 0.0) {
            return Err(OrbitError::InvalidElement {
                name: "lead_distance_m",
                value: lead_distance_m,
            });
        }
        if !(follower_spacing_m >= 0.0) {
            return Err(OrbitError::InvalidElement {
                name: "follower_spacing_m",
                value: follower_spacing_m,
            });
        }
        // Validate the orbit itself early.
        let _ = J2Propagator::circular(altitude_m, inclination_rad, 0.0, 0.0)?;

        let n_groups = groups.len();
        // Phasing capacity: the actual group count for the legacy
        // layout, the pinned slot count for a slotted one (already
        // validated to be >= n_groups).
        let slots = phase_slots.unwrap_or(n_groups);
        let planes = planes.min(slots);
        let mut satellites = Vec::new();
        for (g, spec) in groups.iter().enumerate() {
            // Round-robin plane assignment; slots within a plane are
            // evenly phased among themselves. With slots == n_groups
            // both formulas reduce to the legacy even-phasing.
            let plane = g % planes;
            let raan_rad = std::f64::consts::PI * plane as f64 / planes as f64;
            let in_plane = g / planes;
            let plane_groups = slots / planes + usize::from(plane < slots % planes);
            let group_phase = std::f64::consts::TAU * in_plane as f64 / plane_groups.max(1) as f64;
            satellites.push(SatelliteSpec {
                group: g,
                role: SatelliteRole::Leader,
                follower_index: 0,
                phase_rad: group_phase,
                raan_rad,
            });
            for k in 0..spec.followers {
                // Followers trail the leader: smaller phase angle.
                let trail_m = lead_distance_m + k as f64 * follower_spacing_m;
                let trail_rad = trail_m / MEAN_RADIUS_M;
                satellites.push(SatelliteSpec {
                    group: g,
                    role: SatelliteRole::Follower,
                    follower_index: k,
                    phase_rad: group_phase - trail_rad,
                    raan_rad,
                });
            }
        }

        Ok(ConstellationLayout {
            groups,
            altitude_m,
            inclination_rad,
            lead_distance_m,
            follower_spacing_m,
            planes,
            satellites,
        })
    }

    /// Number of orbital planes in the layout.
    #[inline]
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// All satellites, leaders first within each group.
    #[inline]
    pub fn satellites(&self) -> &[SatelliteSpec] {
        &self.satellites
    }

    /// Group specifications.
    #[inline]
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// Total satellite count (leaders + followers).
    #[inline]
    pub fn total_satellites(&self) -> usize {
        self.satellites.len()
    }

    /// Orbit altitude in meters.
    #[inline]
    pub fn altitude_m(&self) -> f64 {
        self.altitude_m
    }

    /// Leader-to-first-follower ground distance in meters.
    #[inline]
    pub fn lead_distance_m(&self) -> f64 {
        self.lead_distance_m
    }

    /// Builds the ground track for one satellite.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] for invalid orbit
    /// parameters (cannot occur after successful layout construction).
    pub fn ground_track(&self, sat: &SatelliteSpec) -> Result<GroundTrack, OrbitError> {
        let prop = J2Propagator::circular(
            self.altitude_m,
            self.inclination_rad,
            sat.raan_rad,
            sat.phase_rad,
        )?;
        Ok(GroundTrack::new(prop))
    }

    /// Time by which a follower trails its group leader over the same
    /// ground point, seconds.
    pub fn follower_delay_s(&self, follower_index: usize) -> f64 {
        let trail_m = self.lead_distance_m + follower_index as f64 * self.follower_spacing_m;
        let prop = J2Propagator::circular(self.altitude_m, self.inclination_rad, 0.0, 0.0)
            // eagleeye-lint: allow(no-unwrap): altitude/inclination were validated when this layout was constructed
            .expect("validated at construction");
        (trail_m / MEAN_RADIUS_M) / prop.mean_anomaly_rate_rad_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(groups: usize, followers: usize) -> ConstellationLayout {
        ConstellationLayout::uniform(groups, followers, 475_000.0, 97.2_f64.to_radians()).unwrap()
    }

    #[test]
    fn rejects_empty_layouts() {
        assert!(ConstellationLayout::uniform(0, 1, 475_000.0, 1.7).is_err());
    }

    #[test]
    fn satellite_counts() {
        assert_eq!(layout(1, 1).total_satellites(), 2);
        assert_eq!(layout(2, 1).total_satellites(), 4);
        assert_eq!(layout(1, 3).total_satellites(), 4);
        assert_eq!(layout(5, 2).total_satellites(), 15);
    }

    #[test]
    fn groups_are_evenly_phased() {
        let l = layout(4, 0);
        let leaders: Vec<f64> = l
            .satellites()
            .iter()
            .filter(|s| s.role == SatelliteRole::Leader)
            .map(|s| s.phase_rad)
            .collect();
        for (g, &p) in leaders.iter().enumerate() {
            let expected = std::f64::consts::TAU * g as f64 / 4.0;
            assert!((p - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn slotted_layout_at_capacity_matches_legacy_bit_for_bit() {
        for (groups, followers, planes) in [(4, 0, 1), (5, 2, 1), (6, 1, 3), (7, 2, 4)] {
            let legacy = ConstellationLayout::with_planes(
                groups,
                followers,
                475_000.0,
                97.2_f64.to_radians(),
                planes,
            )
            .unwrap();
            let slotted = ConstellationLayout::with_planes_slotted(
                groups,
                followers,
                475_000.0,
                97.2_f64.to_radians(),
                planes,
                groups,
            )
            .unwrap();
            assert_eq!(
                legacy.satellites(),
                slotted.satellites(),
                "groups={groups} followers={followers} planes={planes}"
            );
        }
    }

    #[test]
    fn slotted_layout_pins_surviving_groups_under_removal() {
        // Removing the trailing group from a slot-pinned layout must
        // leave every surviving satellite's elements bit-identical —
        // the property that lets a what-if delta reuse parent tracks.
        for planes in [1, 3] {
            let parent = ConstellationLayout::with_planes_slotted(
                12,
                2,
                475_000.0,
                97.2_f64.to_radians(),
                planes,
                12,
            )
            .unwrap();
            let child = ConstellationLayout::with_planes_slotted(
                11,
                2,
                475_000.0,
                97.2_f64.to_radians(),
                planes,
                12,
            )
            .unwrap();
            assert_eq!(
                &parent.satellites()[..child.satellites().len()],
                child.satellites(),
                "planes={planes}"
            );
        }
    }

    #[test]
    fn slotted_layout_rejects_undersized_capacity() {
        assert!(ConstellationLayout::with_planes_slotted(
            4,
            1,
            475_000.0,
            97.2_f64.to_radians(),
            1,
            3
        )
        .is_err());
    }

    #[test]
    fn followers_trail_leaders() {
        let l = layout(1, 3);
        let leader_phase = l.satellites()[0].phase_rad;
        for s in &l.satellites()[1..] {
            assert!(s.phase_rad < leader_phase);
        }
        // Spacing is monotone.
        let phases: Vec<f64> = l.satellites()[1..].iter().map(|s| s.phase_rad).collect();
        for w in phases.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn follower_ground_separation_matches_spec() {
        let l = layout(1, 1);
        let leader = l.ground_track(&l.satellites()[0]).unwrap();
        let follower = l.ground_track(&l.satellites()[1]).unwrap();
        let delay = l.follower_delay_s(0);
        // After `delay`, the follower reaches (almost) the leader's old
        // subsatellite point.
        let a = leader.state_at(500.0).unwrap();
        let b = follower.state_at(500.0 + delay).unwrap();
        // Earth rotates under the orbit during the ~13 s delay, offsetting
        // the follower's track cross-track by up to ω⊕·delay·Re ≈ 6 km —
        // well inside the ±92 km off-nadir pointing range that the
        // scheduler compensates with.
        let gap = eagleeye_geo::greatcircle::distance_m(&a.subsatellite, &b.subsatellite);
        assert!(gap < 8_000.0, "gap {gap} m");
    }

    #[test]
    fn follower_delay_is_about_thirteen_seconds() {
        // 100 km at ~7.5 km/s ground speed => ~13 s.
        let l = layout(1, 1);
        let d = l.follower_delay_s(0);
        assert!(d > 11.0 && d < 16.0, "delay {d}");
    }
}
