//! An SGP4-class analytic propagator (near-Earth variant).
//!
//! Implements the Simplified General Perturbations 4 equations from
//! Spacetrack Report #3 (Hoots & Roehrich, 1980) as consolidated by
//! Vallado et al.: Brouwer mean-motion recovery, J2/J3 secular and
//! long-period terms, power-series atmospheric drag in B*, and
//! short-period periodics. Deep-space (period ≥ 225 min) orbits are not
//! supported — the paper's constellation flies a 94-minute LEO, far from
//! the deep-space regime.
//!
//! **Validation note.** The authoritative SGP4 verification vectors ship
//! with the official Vallado distribution and are not available offline;
//! this implementation is instead validated (a) against the independent
//! [`crate::J2Propagator`] — for a drag-free near-circular LEO the two
//! must agree to within tens of kilometers over several hours, since the
//! same J2 secular rates dominate — and (b) through internal invariants
//! (altitude stability at B* = 0, monotone decay with positive B*,
//! period consistency). For coverage simulation these bounds are far
//! below a swath width. See DESIGN.md.

use crate::{EciState, OrbitError, Tle};
use eagleeye_geo::Vec3;

// WGS-72 constants, the standard SGP4 gravity model (Spacetrack #3).
const XKE: f64 = 0.074_366_916_133; // sqrt(GM) in (earth radii)^1.5 / min
const EARTH_RADIUS_KM: f64 = 6_378.135;
const J2: f64 = 1.082_616e-3;
const J3: f64 = -2.538_81e-6;
const CK2: f64 = 0.5 * J2; // in earth-radii units
const A3OVK2: f64 = -J3 / CK2;
const QOMS2T: f64 = 1.880_279e-09; // ((120-78)/xkmper)^4
const S_PARAM: f64 = 1.012_229_844_36; // 1 + 78/xkmper
const MINUTES_PER_DAY: f64 = 1_440.0;

/// SGP4 propagator state, initialized from a [`Tle`].
///
/// # Example
///
/// ```
/// use eagleeye_orbit::{Sgp4Propagator, Tle};
///
/// let prop = Sgp4Propagator::new(&Tle::paper_orbit())?;
/// let state = prop.state_at_minutes(30.0)?;
/// let alt_km = state.radius_m() / 1000.0 - 6378.135;
/// assert!(alt_km > 400.0 && alt_km < 550.0);
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgp4Propagator {
    // Elements (radians / radians-per-minute / earth radii).
    e0: f64,
    i0: f64,
    node0: f64,
    omega0: f64,
    m0: f64,
    bstar: f64,
    // Recovered Brouwer elements.
    n0dp: f64,
    a0dp: f64,
    // Cached trigonometry of inclination.
    cosio: f64,
    sinio: f64,
    x3thm1: f64,
    x1mth2: f64,
    x7thm1: f64,
    // Secular coefficients.
    c1: f64,
    c4: f64,
    c5: f64,
    mdot: f64,
    omgdot: f64,
    nodedot: f64,
    nodecf: f64,
    t2cof: f64,
    omgcof: f64,
    xmcof: f64,
    delmo: f64,
    sinmo: f64,
    eta: f64,
    d2: f64,
    d3: f64,
    d4: f64,
    t3cof: f64,
    t4cof: f64,
    t5cof: f64,
    xlcof: f64,
    aycof: f64,
    use_simple: bool,
}

impl Sgp4Propagator {
    /// Initializes SGP4 from a TLE.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] for deep-space orbits
    /// (period ≥ 225 min), hyperbolic eccentricities, or non-physical
    /// mean motion.
    pub fn new(tle: &Tle) -> Result<Self, OrbitError> {
        let n0 = tle.mean_motion_rev_day() * std::f64::consts::TAU / MINUTES_PER_DAY;
        if n0 <= 0.0 {
            return Err(OrbitError::InvalidElement {
                name: "mean_motion",
                value: tle.mean_motion_rev_day(),
            });
        }
        let e0 = tle.eccentricity();
        if !(0.0..1.0).contains(&e0) {
            return Err(OrbitError::InvalidElement {
                name: "eccentricity",
                value: e0,
            });
        }
        let period_min = std::f64::consts::TAU / n0;
        if period_min >= 225.0 {
            return Err(OrbitError::InvalidElement {
                name: "period_min (deep space unsupported)",
                value: period_min,
            });
        }
        let i0 = tle.inclination_deg().to_radians();
        let node0 = tle.raan_deg().to_radians();
        let omega0 = tle.arg_perigee_deg().to_radians();
        let m0 = tle.mean_anomaly_deg().to_radians();
        let bstar = tle.bstar();

        let cosio = i0.cos();
        let sinio = i0.sin();
        let theta2 = cosio * cosio;
        let x3thm1 = 3.0 * theta2 - 1.0;
        let x1mth2 = 1.0 - theta2;
        let x7thm1 = 7.0 * theta2 - 1.0;
        let e0sq = e0 * e0;
        let betao2 = 1.0 - e0sq;
        let betao = betao2.sqrt();

        // Brouwer mean motion recovery (un-Kozai).
        let a1 = (XKE / n0).powf(2.0 / 3.0);
        let del1 = 1.5 * CK2 * x3thm1 / (a1 * a1 * betao * betao2);
        let a0 = a1 * (1.0 - del1 * (1.0 / 3.0 + del1 * (1.0 + 134.0 / 81.0 * del1)));
        let del0 = 1.5 * CK2 * x3thm1 / (a0 * a0 * betao * betao2);
        let n0dp = n0 / (1.0 + del0);
        let a0dp = a0 / (1.0 - del0);

        // Perigee-dependent atmospheric parameter s4.
        let perigee_km = (a0dp * (1.0 - e0) - 1.0) * EARTH_RADIUS_KM;
        let (s4, qoms24) = if perigee_km < 156.0 {
            let s4_km = if perigee_km < 98.0 {
                20.0
            } else {
                perigee_km - 78.0
            };
            let q = ((120.0 - s4_km) / EARTH_RADIUS_KM).powi(4);
            (s4_km / EARTH_RADIUS_KM + 1.0, q)
        } else {
            (S_PARAM, QOMS2T)
        };

        let pinvsq = 1.0 / (a0dp * a0dp * betao2 * betao2);
        let tsi = 1.0 / (a0dp - s4);
        let eta = a0dp * e0 * tsi;
        let etasq = eta * eta;
        let eeta = e0 * eta;
        let psisq = (1.0 - etasq).abs();
        let coef = qoms24 * tsi.powi(4);
        let coef1 = coef / psisq.powf(3.5);
        let c2 = coef1
            * n0dp
            * (a0dp * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
                + 0.75 * CK2 * tsi / psisq * x3thm1 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
        let c1 = bstar * c2;
        let c3 = if e0 > 1e-4 {
            coef * tsi * A3OVK2 * n0dp * sinio / e0
        } else {
            0.0
        };
        let c4 = 2.0
            * n0dp
            * coef1
            * a0dp
            * betao2
            * (eta * (2.0 + 0.5 * etasq) + e0 * (0.5 + 2.0 * etasq)
                - 2.0 * CK2 * tsi / (a0dp * psisq)
                    * (-3.0 * x3thm1 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                        + 0.75
                            * x1mth2
                            * (2.0 * etasq - eeta * (1.0 + etasq))
                            * (2.0 * omega0).cos()));
        let c5 = 2.0 * coef1 * a0dp * betao2 * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

        // Secular rates for M, omega, node.
        let theta4 = theta2 * theta2;
        let temp1 = 3.0 * CK2 * pinvsq * n0dp;
        let temp2 = temp1 * CK2 * pinvsq;
        let mdot = n0dp
            + 0.5 * temp1 * betao * x3thm1
            + 0.0625 * temp2 * betao * (13.0 - 78.0 * theta2 + 137.0 * theta4);
        let omgdot = -0.5 * temp1 * (1.0 - 5.0 * theta2)
            + 0.0625 * temp2 * (7.0 - 114.0 * theta2 + 395.0 * theta4);
        let nodedot = -temp1 * cosio + 0.5 * temp2 * (4.0 - 19.0 * theta2) * cosio;
        let nodecf = 3.5 * betao2 * (-temp1 * cosio) * c1;
        let t2cof = 1.5 * c1;

        let omgcof = bstar * c3 * omega0.cos();
        let xmcof = if e0 > 1e-4 {
            -(2.0 / 3.0) * coef * bstar / eeta
        } else {
            0.0
        };
        let delmo = (1.0 + eta * m0.cos()).powi(3);
        let sinmo = m0.sin();

        // Long-period coefficients.
        let xlcof = 0.125 * A3OVK2 * sinio * (3.0 + 5.0 * cosio)
            / if (1.0 + cosio).abs() > 1.5e-12 {
                1.0 + cosio
            } else {
                1.5e-12
            };
        let aycof = 0.25 * A3OVK2 * sinio;

        // High-altitude "simple" flag: skip the higher-order drag series
        // when perigee is above 220 km (standard SGP4 branch).
        let use_simple = (a0dp * (1.0 - e0)) < (220.0 / EARTH_RADIUS_KM + 1.0);
        let (mut d2, mut d3, mut d4, mut t3cof, mut t4cof, mut t5cof) =
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        if !use_simple {
            let c1sq = c1 * c1;
            d2 = 4.0 * a0dp * tsi * c1sq;
            let temp = d2 * tsi * c1 / 3.0;
            d3 = (17.0 * a0dp + s4) * temp;
            d4 = 0.5 * temp * a0dp * tsi * (221.0 * a0dp + 31.0 * s4) * c1;
            t3cof = d2 + 2.0 * c1sq;
            t4cof = 0.25 * (3.0 * d3 + c1 * (12.0 * d2 + 10.0 * c1sq));
            t5cof =
                0.2 * (3.0 * d4 + 12.0 * c1 * d3 + 6.0 * d2 * d2 + 15.0 * c1sq * (2.0 * d2 + c1sq));
        }

        Ok(Sgp4Propagator {
            e0,
            i0,
            node0,
            omega0,
            m0,
            bstar,
            n0dp,
            a0dp,
            cosio,
            sinio,
            x3thm1,
            x1mth2,
            x7thm1,
            c1,
            c4,
            c5,
            mdot,
            omgdot,
            nodedot,
            nodecf,
            t2cof,
            omgcof,
            xmcof,
            delmo,
            sinmo,
            eta,
            d2,
            d3,
            d4,
            t3cof,
            t4cof,
            t5cof,
            xlcof,
            aycof,
            use_simple,
        })
    }

    /// Orbital period at epoch, seconds.
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.n0dp * 60.0
    }

    /// Propagates to `t_min` minutes past the TLE epoch (TEME frame,
    /// treated as ECI by the rest of the workspace — the frames differ
    /// by well under the tolerances that matter here).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::KeplerDivergence`] if the long-period Kepler
    /// iteration fails, and [`OrbitError::InvalidElement`] when drag has
    /// decayed the orbit below the surface.
    pub fn state_at_minutes(&self, t_min: f64) -> Result<EciState, OrbitError> {
        let t = t_min;

        // Secular gravity and drag.
        let xmdf = self.m0 + self.mdot * t;
        let omgadf = self.omega0 + self.omgdot * t;
        let node = self.node0 + self.nodedot * t + self.nodecf * t * t;

        let mut omega = omgadf;
        let mut xmp = xmdf;
        let mut tempa = 1.0 - self.c1 * t;
        let mut tempe = self.bstar * self.c4 * t;
        let mut templ = self.t2cof * t * t;
        if !self.use_simple {
            let delomg = self.omgcof * t;
            let delm = self.xmcof * ((1.0 + self.eta * xmdf.cos()).powi(3) - self.delmo);
            let temp = delomg + delm;
            xmp = xmdf + temp;
            omega = omgadf - temp;
            let t2 = t * t;
            let t3 = t2 * t;
            let t4 = t3 * t;
            tempa -= self.d2 * t2 + self.d3 * t3 + self.d4 * t4;
            tempe += self.bstar * self.c5 * (xmp.sin() - self.sinmo);
            templ += self.t3cof * t3 + t4 * (self.t4cof + t * self.t5cof);
        }

        let a = self.a0dp * tempa * tempa;
        let e = (self.e0 - tempe).clamp(1e-6, 0.999_999);
        let xl = xmp + omega + node + self.n0dp * templ;

        if a * (1.0 - e) < 1.0 {
            return Err(OrbitError::InvalidElement {
                name: "perigee (orbit decayed)",
                value: (a * (1.0 - e) - 1.0) * EARTH_RADIUS_KM,
            });
        }

        // Long-period periodics.
        let beta = (1.0 - e * e).sqrt();
        let n = XKE / a.powf(1.5);
        let axn = e * omega.cos();
        let temp = 1.0 / (a * beta * beta);
        let xll = temp * self.xlcof * axn;
        let aynl = temp * self.aycof;
        let xlt = xl + xll;
        let ayn = e * omega.sin() + aynl;

        // Kepler's equation for (E + omega).
        let capu = eagleeye_geo::wrap_two_pi(xlt - node);
        let mut epw = capu;
        let (mut sinepw, mut cosepw) = (0.0, 0.0);
        let mut converged = false;
        for _ in 0..12 {
            sinepw = epw.sin();
            cosepw = epw.cos();
            let f = capu - epw + axn * sinepw - ayn * cosepw;
            let df = 1.0 - cosepw * axn - sinepw * ayn;
            let delta = f / df;
            epw += delta.clamp(-0.95, 0.95);
            if delta.abs() < 1e-12 {
                converged = true;
                break;
            }
        }
        if !converged {
            // One more evaluation; SGP4 traditionally accepts the result
            // after a fixed iteration count, but guard pathologies.
            let f = capu - epw + axn * epw.sin() - ayn * epw.cos();
            if f.abs() > 1e-6 {
                return Err(OrbitError::KeplerDivergence {
                    mean_anomaly_rad: capu,
                    eccentricity: e,
                });
            }
        }

        // Short-period periodics.
        let ecose = axn * cosepw + ayn * sinepw;
        let esine = axn * sinepw - ayn * cosepw;
        let elsq = axn * axn + ayn * ayn;
        let pl = a * (1.0 - elsq);
        let r = a * (1.0 - ecose);
        let rdot = XKE * a.sqrt() * esine / r;
        let rfdot = XKE * pl.sqrt() / r;
        let betal = (1.0 - elsq).sqrt();
        let temp3 = esine / (1.0 + betal);
        let cosu = a / r * (cosepw - axn + ayn * temp3);
        let sinu = a / r * (sinepw - ayn - axn * temp3);
        let u = sinu.atan2(cosu);
        let sin2u = 2.0 * sinu * cosu;
        let cos2u = 2.0 * cosu * cosu - 1.0;
        let temp1 = CK2 / pl;
        let temp2 = temp1 / pl;

        let rk = r * (1.0 - 1.5 * temp2 * betal * self.x3thm1) + 0.5 * temp1 * self.x1mth2 * cos2u;
        let uk = u - 0.25 * temp2 * self.x7thm1 * sin2u;
        let nodek = node + 1.5 * temp2 * self.cosio * sin2u;
        let ik = self.i0 + 1.5 * temp2 * self.cosio * self.sinio * cos2u;
        let rdotk = rdot - n * temp1 * self.x1mth2 * sin2u;
        let rfdotk = rfdot + n * temp1 * (self.x1mth2 * cos2u + 1.5 * self.x3thm1);

        // Orientation vectors.
        let (sinuk, cosuk) = uk.sin_cos();
        let (sinik, cosik) = ik.sin_cos();
        let (sinnok, cosnok) = nodek.sin_cos();
        let mx = -sinnok * cosik;
        let my = cosnok * cosik;
        let ux = mx * sinuk + cosnok * cosuk;
        let uy = my * sinuk + sinnok * cosuk;
        let uz = sinik * sinuk;
        let vx = mx * cosuk - cosnok * sinuk;
        let vy = my * cosuk - sinnok * sinuk;
        let vz = sinik * cosuk;

        // Position (earth radii) and velocity (earth radii / min) → SI.
        let pos_scale = EARTH_RADIUS_KM * 1000.0;
        let vel_scale = EARTH_RADIUS_KM * 1000.0 / 60.0;
        let position = Vec3::new(rk * ux, rk * uy, rk * uz) * pos_scale;
        let velocity = Vec3::new(
            rdotk * ux + rfdotk * vx,
            rdotk * uy + rfdotk * vy,
            rdotk * uz + rfdotk * vz,
        ) * vel_scale;
        Ok(EciState { position, velocity })
    }

    /// Propagates to `t_s` seconds past epoch.
    ///
    /// # Errors
    ///
    /// See [`Sgp4Propagator::state_at_minutes`].
    pub fn state_at(&self, t_s: f64) -> Result<EciState, OrbitError> {
        self.state_at_minutes(t_s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroundTrack, J2Propagator};

    fn paper_tle() -> Tle {
        Tle::paper_orbit()
    }

    #[test]
    fn rejects_deep_space() {
        // 6 rev/day is a 4-hour period: deep-space regime, unsupported.
        let err = Sgp4Propagator::new(&slow_tle());
        assert!(matches!(err, Err(OrbitError::InvalidElement { .. })));
    }

    fn slow_tle() -> Tle {
        // Rebuild the paper TLE with a 6 rev/day mean motion via its
        // formatted lines.
        let t = paper_tle();
        let (l1, l2) = t.to_lines();
        let l2 = format!("{} {:11.8}    1", &l2[..52], 6.0);
        let mut l2 = l2[..68].to_string();
        let c = Tle::checksum(&l2);
        l2.push(char::from_digit(c, 10).unwrap());
        Tle::parse(&l1, &l2).expect("valid slow TLE")
    }

    #[test]
    fn altitude_is_leo_and_stable_without_drag() {
        let p = Sgp4Propagator::new(&paper_tle()).unwrap();
        for i in 0..24 {
            let s = p.state_at_minutes(i as f64 * 10.0).unwrap();
            let alt_km = s.radius_m() / 1000.0 - EARTH_RADIUS_KM;
            assert!(alt_km > 430.0 && alt_km < 530.0, "alt {alt_km} at step {i}");
        }
    }

    #[test]
    fn period_matches_tle_mean_motion() {
        let p = Sgp4Propagator::new(&paper_tle()).unwrap();
        let period = p.period_s();
        assert!((period / 60.0 - 94.0).abs() < 1.0, "period {period}");
    }

    #[test]
    fn speed_is_orbital() {
        let p = Sgp4Propagator::new(&paper_tle()).unwrap();
        let s = p.state_at_minutes(17.0).unwrap();
        let v = s.speed_m_s();
        assert!(v > 7_200.0 && v < 7_900.0, "speed {v}");
    }

    #[test]
    fn agrees_with_j2_propagator_over_two_hours() {
        // Independent implementations sharing the dominant J2 secular
        // physics: positions must stay within tens of km over 2 h for a
        // drag-free LEO (well under a swath width).
        let tle = paper_tle();
        let sgp4 = Sgp4Propagator::new(&tle).unwrap();
        let j2 = J2Propagator::from_tle(&tle).unwrap();
        for i in 0..8 {
            let t = i as f64 * 900.0;
            let a = sgp4.state_at(t).unwrap().position;
            let b = j2.state_at(t).unwrap().position;
            let sep_km = (a - b).norm() / 1000.0;
            assert!(sep_km < 60.0, "separation {sep_km} km at t={t}");
        }
    }

    #[test]
    fn positive_bstar_decays_the_orbit() {
        // Craft a TLE with a large B* and compare mean altitude over a
        // day against the drag-free twin.
        let t = paper_tle();
        let (l1, l2) = t.to_lines();
        let mut l1_drag = format!("{} 10270-1 0  999", &l1[..53 - 1]);
        l1_drag.truncate(68);
        while l1_drag.len() < 68 {
            l1_drag.push(' ');
        }
        let c = Tle::checksum(&l1_drag);
        l1_drag.push(char::from_digit(c, 10).unwrap());
        let dragged = Tle::parse(&l1_drag, &l2).expect("valid dragged TLE");
        assert!(dragged.bstar() > 1e-3, "bstar {}", dragged.bstar());

        let p_free = Sgp4Propagator::new(&t).unwrap();
        let p_drag = Sgp4Propagator::new(&dragged).unwrap();
        let day_min = 1_440.0;
        let mean_alt = |p: &Sgp4Propagator| -> f64 {
            (0..16)
                .map(|i| {
                    p.state_at_minutes(day_min + i as f64 * 6.0)
                        .unwrap()
                        .radius_m()
                })
                .sum::<f64>()
                / 16.0
        };
        assert!(
            mean_alt(&p_drag) < mean_alt(&p_free) - 100.0,
            "drag {} vs free {}",
            mean_alt(&p_drag),
            mean_alt(&p_free)
        );
    }

    #[test]
    fn ground_track_from_sgp4_is_consistent() {
        // Subsatellite points from SGP4 positions behave like the J2
        // ground track: polar orbit reaches high latitude.
        let tle = paper_tle();
        let sgp4 = Sgp4Propagator::new(&tle).unwrap();
        let track = GroundTrack::new(J2Propagator::from_tle(&tle).unwrap());
        let mut max_lat: f64 = 0.0;
        for i in 0..100 {
            let t = i as f64 * 60.0;
            let pos = sgp4.state_at(t).unwrap().position;
            let geo = track.eci_to_ecef(pos, t).to_geodetic_spherical().unwrap();
            max_lat = max_lat.max(geo.lat_deg().abs());
        }
        assert!(max_lat > 78.0, "max lat {max_lat}");
    }
}
