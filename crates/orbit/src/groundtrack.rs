use crate::{EciState, J2Propagator, OrbitError};
use eagleeye_geo::earth::{MEAN_RADIUS_M, OMEGA_EARTH_RAD_S};
use eagleeye_geo::{greatcircle, Ecef, GeodeticPoint, Vec3};

/// The ground-relative state of a satellite at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackState {
    /// Seconds past epoch.
    pub t_s: f64,
    /// Subsatellite point (altitude field holds the satellite altitude).
    pub subsatellite: GeodeticPoint,
    /// Ground-track heading at the subsatellite point, radians clockwise
    /// from north.
    pub heading_rad: f64,
    /// Speed of the subsatellite point over the ground, m/s (includes
    /// Earth-rotation effects).
    pub ground_speed_m_s: f64,
    /// Satellite altitude above the mean-radius sphere, meters.
    pub altitude_m: f64,
    /// True when the satellite is in sunlight (cylindrical shadow model).
    pub in_sunlight: bool,
    /// Raw inertial state.
    pub eci: EciState,
}

/// Computes subsatellite points, headings, and sunlight state along an
/// orbit.
///
/// The ECI→ECEF rotation uses the Greenwich sidereal angle
/// `θ(t) = θ₀ + ω⊕·t`; the epoch angle `θ₀` defaults to zero and can be
/// set to shift the ground track in longitude. Sunlight uses a fixed
/// inertial sun direction and a cylindrical Earth shadow — the standard
/// cote-style model for LEO energy budgeting (~60 % of a 475 km orbit is
/// sunlit).
///
/// # Example
///
/// ```
/// use eagleeye_orbit::{GroundTrack, J2Propagator};
///
/// let prop = J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0)?;
/// let track = GroundTrack::new(prop);
/// let state = track.state_at(600.0)?;
/// assert!(state.altitude_m > 400_000.0);
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTrack {
    propagator: J2Propagator,
    gmst_epoch_rad: f64,
    sun_direction_eci: Vec3,
}

impl GroundTrack {
    /// Step used for the finite-difference heading/ground-speed
    /// derivative in [`GroundTrack::state_at`], seconds.
    pub const FD_DT_S: f64 = 1.0;

    /// Creates a ground track with GMST₀ = 0 and the sun along +X (ECI).
    pub fn new(propagator: J2Propagator) -> Self {
        GroundTrack {
            propagator,
            gmst_epoch_rad: 0.0,
            sun_direction_eci: Vec3::new(1.0, 0.0, 0.0),
        }
    }

    /// Sets the Greenwich sidereal angle at epoch.
    pub fn with_gmst_epoch(mut self, gmst_rad: f64) -> Self {
        self.gmst_epoch_rad = eagleeye_geo::wrap_two_pi(gmst_rad);
        self
    }

    /// Sets the inertial sun direction (normalized internally; a zero
    /// vector is replaced by +X).
    pub fn with_sun_direction(mut self, dir: Vec3) -> Self {
        self.sun_direction_eci = dir.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
        self
    }

    /// The underlying propagator.
    #[inline]
    pub fn propagator(&self) -> &J2Propagator {
        &self.propagator
    }

    /// Greenwich sidereal angle at epoch (the `θ₀` set by
    /// [`GroundTrack::with_gmst_epoch`]).
    #[inline]
    pub fn gmst_epoch_rad(&self) -> f64 {
        self.gmst_epoch_rad
    }

    /// Greenwich sidereal angle at `t_s` seconds past an epoch angle of
    /// `gmst_epoch_rad`. [`crate::EpochGrid`] memoizes the sine/cosine
    /// of exactly this angle, so cached and direct propagation agree
    /// bit-for-bit.
    #[inline]
    pub fn gmst_at(gmst_epoch_rad: f64, t_s: f64) -> f64 {
        eagleeye_geo::wrap_two_pi(gmst_epoch_rad + OMEGA_EARTH_RAD_S * t_s)
    }

    /// Greenwich sidereal angle at `t_s` seconds past epoch.
    #[inline]
    pub fn gmst_rad(&self, t_s: f64) -> f64 {
        Self::gmst_at(self.gmst_epoch_rad, t_s)
    }

    /// Rotates an ECI position into ECEF given the precomputed
    /// `(sin θ, cos θ)` of the Greenwich sidereal angle.
    #[inline]
    pub fn eci_to_ecef_with_trig(position: Vec3, (s, c): (f64, f64)) -> Ecef {
        Ecef(Vec3::new(
            c * position.x + s * position.y,
            -s * position.x + c * position.y,
            position.z,
        ))
    }

    /// Rotates an ECI position into ECEF at time `t_s`.
    pub fn eci_to_ecef(&self, position: Vec3, t_s: f64) -> Ecef {
        Self::eci_to_ecef_with_trig(position, self.gmst_rad(t_s).sin_cos())
    }

    /// Full ground-relative state at `t_s` seconds past epoch.
    ///
    /// # Errors
    ///
    /// Propagates propagation and geodetic conversion failures.
    pub fn state_at(&self, t_s: f64) -> Result<TrackState, OrbitError> {
        self.state_at_with_trig(
            t_s,
            self.gmst_rad(t_s).sin_cos(),
            self.gmst_rad(t_s + Self::FD_DT_S).sin_cos(),
        )
    }

    /// Like [`GroundTrack::state_at`], with the sidereal-angle
    /// sine/cosine at `t_s` and `t_s + FD_DT_S` supplied by the caller.
    ///
    /// This is the memoization seam used by
    /// [`crate::PropagationCache`]: the sidereal angle depends only on
    /// the epoch time, not the satellite, so one `(sin, cos)` pair per
    /// epoch serves an entire constellation instead of being recomputed
    /// per satellite per frame. Passing trig values computed from
    /// [`GroundTrack::gmst_rad`] at the same times makes this identical
    /// to `state_at`.
    ///
    /// # Errors
    ///
    /// Propagates propagation and geodetic conversion failures.
    pub fn state_at_with_trig(
        &self,
        t_s: f64,
        gmst_sc: (f64, f64),
        gmst_fd_sc: (f64, f64),
    ) -> Result<TrackState, OrbitError> {
        let eci = self.propagator.state_at(t_s)?;
        let sub = Self::subsatellite_with_trig(eci.position, gmst_sc)?;

        // Heading and ground speed from a small finite difference of the
        // subsatellite point (captures Earth-rotation coupling exactly).
        let dt = Self::FD_DT_S;
        let eci2 = self.propagator.state_at(t_s + dt)?;
        let sub2 = Self::subsatellite_with_trig(eci2.position, gmst_fd_sc)?;
        let heading_rad = greatcircle::initial_bearing_rad(&sub, &sub2);
        let ground_speed_m_s = greatcircle::distance_m(&sub, &sub2) / dt;

        let altitude_m = eci.radius_m() - MEAN_RADIUS_M;
        let in_sunlight = self.is_sunlit(eci.position);

        Ok(TrackState {
            t_s,
            subsatellite: sub.with_altitude(altitude_m)?,
            heading_rad,
            ground_speed_m_s,
            altitude_m,
            in_sunlight,
            eci,
        })
    }

    fn subsatellite_with_trig(
        eci_pos: Vec3,
        gmst_sc: (f64, f64),
    ) -> Result<GeodeticPoint, OrbitError> {
        let ecef = Self::eci_to_ecef_with_trig(eci_pos, gmst_sc);
        let geo = ecef.to_geodetic_spherical()?;
        Ok(geo.with_altitude(0.0)?)
    }

    /// Cylindrical-shadow sunlight test: the satellite is eclipsed when
    /// it is on the anti-sun side and within one Earth radius of the
    /// shadow axis.
    pub fn is_sunlit(&self, eci_pos: Vec3) -> bool {
        let along_sun = eci_pos.dot(self.sun_direction_eci);
        if along_sun >= 0.0 {
            return true;
        }
        let radial = eci_pos - self.sun_direction_eci * along_sun;
        radial.norm() > MEAN_RADIUS_M
    }

    /// Fraction of one orbit spent in sunlight, sampled at `samples`
    /// points (used by the energy model).
    ///
    /// # Errors
    ///
    /// Propagates propagation failures.
    pub fn sunlit_fraction(&self, samples: usize) -> Result<f64, OrbitError> {
        let n = samples.max(1);
        let period = self.propagator.period_s();
        let mut lit = 0usize;
        for i in 0..n {
            let t = period * i as f64 / n as f64;
            let s = self.propagator.state_at(t)?;
            if self.is_sunlit(s.position) {
                lit += 1;
            }
        }
        Ok(lit as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_track() -> GroundTrack {
        GroundTrack::new(
            J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).unwrap(),
        )
    }

    #[test]
    fn ground_speed_is_near_first_principles() {
        // v_ground ≈ v_orbit * Re / (Re + h) ≈ 7.61 km/s * 0.93 ≈ 7.1 km/s,
        // modulated by Earth rotation.
        let t = paper_track();
        let s = t.state_at(100.0).unwrap();
        assert!(
            s.ground_speed_m_s > 6_500.0 && s.ground_speed_m_s < 8_000.0,
            "speed {}",
            s.ground_speed_m_s
        );
    }

    #[test]
    fn polar_orbit_reaches_high_latitudes() {
        let t = paper_track();
        let mut max_lat: f64 = 0.0;
        for i in 0..400 {
            let s = t.state_at(i as f64 * 15.0).unwrap();
            max_lat = max_lat.max(s.subsatellite.lat_deg().abs());
        }
        // Inclination 97.2 deg => max latitude ~82.8 deg.
        assert!(max_lat > 80.0, "max lat {max_lat}");
        assert!(max_lat < 84.0, "max lat {max_lat}");
    }

    #[test]
    fn ground_track_shifts_west_each_orbit() {
        // Earth rotates under the orbit: successive equator crossings move
        // westward by ~ period * 360/86164 ≈ 23.6 degrees.
        let t = paper_track();
        let period = t.propagator().period_s();
        let s0 = t.state_at(0.0).unwrap();
        let s1 = t.state_at(period).unwrap();
        let dlon = eagleeye_geo::wrap_pi(s1.subsatellite.lon_rad() - s0.subsatellite.lon_rad());
        let expected = -(OMEGA_EARTH_RAD_S * period);
        assert!(
            (dlon - expected).abs() < 0.05,
            "dlon {} expected {}",
            dlon.to_degrees(),
            expected.to_degrees()
        );
    }

    #[test]
    fn sunlit_fraction_is_about_sixty_percent() {
        let t = paper_track();
        let f = t.sunlit_fraction(500).unwrap();
        assert!(f > 0.55 && f < 0.75, "sunlit fraction {f}");
    }

    #[test]
    fn subsolar_satellite_is_always_lit() {
        let t = paper_track();
        assert!(t.is_sunlit(Vec3::new(7e6, 0.0, 0.0)));
        assert!(t.is_sunlit(Vec3::new(0.0, 7e6, 0.0))); // terminator, above shadow
        assert!(!t.is_sunlit(Vec3::new(-7e6, 0.0, 0.0))); // deep shadow
        assert!(t.is_sunlit(Vec3::new(-7e6, 6.9e6, 0.0))); // behind but off-axis
    }

    #[test]
    fn gmst_epoch_shifts_longitude() {
        let base = paper_track();
        let shifted = paper_track().with_gmst_epoch(0.5);
        let a = base.state_at(0.0).unwrap();
        let b = shifted.state_at(0.0).unwrap();
        let dlon = eagleeye_geo::wrap_pi(a.subsatellite.lon_rad() - b.subsatellite.lon_rad());
        assert!((dlon - 0.5).abs() < 1e-6, "dlon {dlon}");
    }

    #[test]
    fn heading_is_southish_or_northish_for_polar_orbit() {
        let t = paper_track();
        let s = t.state_at(30.0).unwrap();
        // Near-polar: heading close to north (0) or south (pi) within ~25 deg.
        let h = s.heading_rad;
        let to_north = h.min(std::f64::consts::TAU - h);
        let to_south = (h - std::f64::consts::PI).abs();
        assert!(
            to_north < 0.45 || to_south < 0.45,
            "heading {}",
            h.to_degrees()
        );
    }
}
