use std::error::Error;
use std::fmt;

/// Errors produced by orbital-element construction, TLE parsing, and
/// propagation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OrbitError {
    /// An orbital element was outside its valid domain.
    InvalidElement {
        /// Name of the offending element.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A TLE line had the wrong length.
    TleLineLength {
        /// Which line (1 or 2).
        line: u8,
        /// Actual length found.
        len: usize,
    },
    /// A TLE line failed its modulo-10 checksum.
    TleChecksum {
        /// Which line (1 or 2).
        line: u8,
        /// Checksum computed from the line body.
        computed: u32,
        /// Checksum digit present in the line.
        found: u32,
    },
    /// A TLE field could not be parsed as a number.
    TleField {
        /// Which line (1 or 2).
        line: u8,
        /// Human-readable field name.
        field: &'static str,
    },
    /// Kepler's equation failed to converge (pathological eccentricity).
    KeplerDivergence {
        /// Mean anomaly requested, radians.
        mean_anomaly_rad: f64,
        /// Eccentricity of the orbit.
        eccentricity: f64,
    },
    /// A geodetic conversion failed downstream.
    Geo(eagleeye_geo::GeoError),
}

impl fmt::Display for OrbitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbitError::InvalidElement { name, value } => {
                write!(f, "orbital element {name} = {value} is out of range")
            }
            OrbitError::TleLineLength { line, len } => {
                write!(f, "TLE line {line} has length {len}, expected 69")
            }
            OrbitError::TleChecksum {
                line,
                computed,
                found,
            } => {
                write!(
                    f,
                    "TLE line {line} checksum mismatch: computed {computed}, found {found}"
                )
            }
            OrbitError::TleField { line, field } => {
                write!(f, "TLE line {line}: could not parse field {field}")
            }
            OrbitError::KeplerDivergence {
                mean_anomaly_rad,
                eccentricity,
            } => {
                write!(
                    f,
                    "Kepler iteration diverged (M = {mean_anomaly_rad} rad, e = {eccentricity})"
                )
            }
            OrbitError::Geo(e) => write!(f, "geodetic conversion failed: {e}"),
        }
    }
}

impl Error for OrbitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OrbitError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eagleeye_geo::GeoError> for OrbitError {
    fn from(e: eagleeye_geo::GeoError) -> Self {
        OrbitError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            OrbitError::InvalidElement {
                name: "ecc",
                value: 2.0,
            },
            OrbitError::TleLineLength { line: 1, len: 10 },
            OrbitError::TleChecksum {
                line: 2,
                computed: 3,
                found: 4,
            },
            OrbitError::TleField {
                line: 1,
                field: "epoch",
            },
            OrbitError::KeplerDivergence {
                mean_anomaly_rad: 1.0,
                eccentricity: 0.99,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
