use crate::OrbitError;
use eagleeye_geo::earth::MU_M3_S2;
use eagleeye_geo::Vec3;

/// An Earth-centered inertial (ECI) state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EciState {
    /// Position in meters.
    pub position: Vec3,
    /// Velocity in meters per second.
    pub velocity: Vec3,
}

impl EciState {
    /// Geocentric radius in meters.
    #[inline]
    pub fn radius_m(&self) -> f64 {
        self.position.norm()
    }

    /// Orbital speed in meters per second.
    #[inline]
    pub fn speed_m_s(&self) -> f64 {
        self.velocity.norm()
    }

    /// Specific orbital energy, J/kg: `v²/2 − μ/r`. Conserved under pure
    /// two-body motion; a useful invariant for propagation tests.
    #[inline]
    pub fn specific_energy(&self) -> f64 {
        self.velocity.norm_squared() / 2.0 - MU_M3_S2 / self.radius_m()
    }

    /// Specific angular momentum vector, m²/s. Also conserved under pure
    /// two-body motion.
    #[inline]
    pub fn specific_angular_momentum(&self) -> Vec3 {
        self.position.cross(self.velocity)
    }
}

/// Classical (Keplerian) orbital elements.
///
/// Angles are radians; the semi-major axis is meters. The struct is a
/// plain value type — construct it with [`KeplerianElements::new`], which
/// validates the element domains.
///
/// # Example
///
/// ```
/// use eagleeye_orbit::KeplerianElements;
///
/// let elements = KeplerianElements::new(
///     6_846_000.0,             // a: 475 km altitude
///     0.0001,                  // e: nearly circular
///     97.2_f64.to_radians(),   // i: sun-synchronous polar
///     0.0, 0.0, 0.0,           // raan, argp, M0
/// )?;
/// assert!((elements.period_s() - 5_640.0).abs() < 30.0);
/// # Ok::<(), eagleeye_orbit::OrbitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeplerianElements {
    semi_major_axis_m: f64,
    eccentricity: f64,
    inclination_rad: f64,
    raan_rad: f64,
    arg_perigee_rad: f64,
    mean_anomaly_rad: f64,
}

impl KeplerianElements {
    /// Creates a validated element set.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::InvalidElement`] when the semi-major axis is
    /// not positive, eccentricity is outside `[0, 1)` (only closed orbits
    /// are supported), or the inclination is outside `[0, π]`.
    pub fn new(
        semi_major_axis_m: f64,
        eccentricity: f64,
        inclination_rad: f64,
        raan_rad: f64,
        arg_perigee_rad: f64,
        mean_anomaly_rad: f64,
    ) -> Result<Self, OrbitError> {
        if !(semi_major_axis_m > 0.0) || !semi_major_axis_m.is_finite() {
            return Err(OrbitError::InvalidElement {
                name: "semi_major_axis_m",
                value: semi_major_axis_m,
            });
        }
        if !(0.0..1.0).contains(&eccentricity) {
            return Err(OrbitError::InvalidElement {
                name: "eccentricity",
                value: eccentricity,
            });
        }
        if !(0.0..=std::f64::consts::PI).contains(&inclination_rad) {
            return Err(OrbitError::InvalidElement {
                name: "inclination_rad",
                value: inclination_rad,
            });
        }
        for (name, v) in [
            ("raan_rad", raan_rad),
            ("arg_perigee_rad", arg_perigee_rad),
            ("mean_anomaly_rad", mean_anomaly_rad),
        ] {
            if !v.is_finite() {
                return Err(OrbitError::InvalidElement { name, value: v });
            }
        }
        Ok(KeplerianElements {
            semi_major_axis_m,
            eccentricity,
            inclination_rad,
            raan_rad: eagleeye_geo::wrap_two_pi(raan_rad),
            arg_perigee_rad: eagleeye_geo::wrap_two_pi(arg_perigee_rad),
            mean_anomaly_rad: eagleeye_geo::wrap_two_pi(mean_anomaly_rad),
        })
    }

    /// Semi-major axis in meters.
    #[inline]
    pub fn semi_major_axis_m(&self) -> f64 {
        self.semi_major_axis_m
    }

    /// Eccentricity, in `[0, 1)`.
    #[inline]
    pub fn eccentricity(&self) -> f64 {
        self.eccentricity
    }

    /// Inclination in radians.
    #[inline]
    pub fn inclination_rad(&self) -> f64 {
        self.inclination_rad
    }

    /// Right ascension of the ascending node in radians.
    #[inline]
    pub fn raan_rad(&self) -> f64 {
        self.raan_rad
    }

    /// Argument of perigee in radians.
    #[inline]
    pub fn arg_perigee_rad(&self) -> f64 {
        self.arg_perigee_rad
    }

    /// Mean anomaly at epoch in radians.
    #[inline]
    pub fn mean_anomaly_rad(&self) -> f64 {
        self.mean_anomaly_rad
    }

    /// Mean motion in radians per second.
    #[inline]
    pub fn mean_motion_rad_s(&self) -> f64 {
        (MU_M3_S2 / self.semi_major_axis_m.powi(3)).sqrt()
    }

    /// Orbital period in seconds.
    #[inline]
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion_rad_s()
    }

    /// Semi-latus rectum `p = a(1 − e²)` in meters.
    #[inline]
    pub fn semi_latus_rectum_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 - self.eccentricity * self.eccentricity)
    }

    /// Returns a copy with the given RAAN, argument of perigee, and mean
    /// anomaly (used by the J2 propagator to apply secular drift).
    pub(crate) fn with_angles(
        &self,
        raan_rad: f64,
        arg_perigee_rad: f64,
        mean_anomaly_rad: f64,
    ) -> KeplerianElements {
        KeplerianElements {
            raan_rad: eagleeye_geo::wrap_two_pi(raan_rad),
            arg_perigee_rad: eagleeye_geo::wrap_two_pi(arg_perigee_rad),
            mean_anomaly_rad: eagleeye_geo::wrap_two_pi(mean_anomaly_rad),
            ..*self
        }
    }

    /// Solves Kepler's equation `M = E − e sin E` for the eccentric
    /// anomaly via Newton iteration.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitError::KeplerDivergence`] if Newton fails to reach
    /// `1e-12` residual in 64 iterations (cannot happen for e < 1 in
    /// practice; guarded for robustness).
    pub fn eccentric_anomaly_rad(&self, mean_anomaly_rad: f64) -> Result<f64, OrbitError> {
        let m = eagleeye_geo::wrap_two_pi(mean_anomaly_rad);
        let e = self.eccentricity;
        let mut big_e = if e < 0.8 { m } else { std::f64::consts::PI };
        for _ in 0..64 {
            let f = big_e - e * big_e.sin() - m;
            let fp = 1.0 - e * big_e.cos();
            let step = f / fp;
            big_e -= step;
            if step.abs() < 1e-13 {
                return Ok(big_e);
            }
        }
        Err(OrbitError::KeplerDivergence {
            mean_anomaly_rad: m,
            eccentricity: e,
        })
    }

    /// Computes the ECI state at a given mean anomaly (other elements
    /// fixed).
    ///
    /// # Errors
    ///
    /// Propagates [`OrbitError::KeplerDivergence`].
    pub fn eci_state_at_mean_anomaly(&self, mean_anomaly_rad: f64) -> Result<EciState, OrbitError> {
        let e = self.eccentricity;
        let big_e = self.eccentric_anomaly_rad(mean_anomaly_rad)?;
        let (sin_e, cos_e) = big_e.sin_cos();

        // Perifocal coordinates.
        let a = self.semi_major_axis_m;
        let b = a * (1.0 - e * e).sqrt();
        let x_pf = a * (cos_e - e);
        let y_pf = b * sin_e;
        let r = a * (1.0 - e * cos_e);
        let n = self.mean_motion_rad_s();
        let vx_pf = -a * a * n * sin_e / r;
        let vy_pf = a * b * n * cos_e / r;

        // Rotate perifocal -> ECI: Rz(raan) * Rx(i) * Rz(argp).
        let (s_o, c_o) = self.raan_rad.sin_cos();
        let (s_i, c_i) = self.inclination_rad.sin_cos();
        let (s_w, c_w) = self.arg_perigee_rad.sin_cos();

        let r11 = c_o * c_w - s_o * s_w * c_i;
        let r12 = -c_o * s_w - s_o * c_w * c_i;
        let r21 = s_o * c_w + c_o * s_w * c_i;
        let r22 = -s_o * s_w + c_o * c_w * c_i;
        let r31 = s_w * s_i;
        let r32 = c_w * s_i;

        let position = Vec3::new(
            r11 * x_pf + r12 * y_pf,
            r21 * x_pf + r22 * y_pf,
            r31 * x_pf + r32 * y_pf,
        );
        let velocity = Vec3::new(
            r11 * vx_pf + r12 * vy_pf,
            r21 * vx_pf + r22 * vy_pf,
            r31 * vx_pf + r32 * vy_pf,
        );
        Ok(EciState { position, velocity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_orbit() -> KeplerianElements {
        KeplerianElements::new(
            eagleeye_geo::earth::MEAN_RADIUS_M + 475_000.0,
            0.001,
            97.2_f64.to_radians(),
            0.3,
            0.1,
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn rejects_invalid_elements() {
        assert!(KeplerianElements::new(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(KeplerianElements::new(7e6, 1.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(KeplerianElements::new(7e6, 0.0, -0.1, 0.0, 0.0, 0.0).is_err());
        assert!(KeplerianElements::new(7e6, 0.0, 4.0, 0.0, 0.0, 0.0).is_err());
        assert!(KeplerianElements::new(7e6, 0.0, 0.0, f64::NAN, 0.0, 0.0).is_err());
    }

    #[test]
    fn period_matches_paper_orbit() {
        // 475 km altitude => ~94 minutes.
        let k = paper_orbit();
        assert!(
            (k.period_s() / 60.0 - 94.0).abs() < 1.0,
            "period {}",
            k.period_s() / 60.0
        );
    }

    #[test]
    fn kepler_equation_solution_satisfies_identity() {
        let k = KeplerianElements::new(7e6, 0.3, 1.0, 0.0, 0.0, 0.0).unwrap();
        for i in 0..32 {
            let m = i as f64 * 0.2;
            let e_anom = k.eccentric_anomaly_rad(m).unwrap();
            let recon = e_anom - 0.3 * e_anom.sin();
            assert!(
                (eagleeye_geo::wrap_two_pi(recon) - eagleeye_geo::wrap_two_pi(m)).abs() < 1e-10
            );
        }
    }

    #[test]
    fn circular_orbit_radius_is_constant() {
        let k = paper_orbit();
        for i in 0..20 {
            let s = k.eci_state_at_mean_anomaly(i as f64 * 0.3).unwrap();
            let expected = k.semi_major_axis_m();
            assert!((s.radius_m() - expected).abs() / expected < 0.002);
        }
    }

    #[test]
    fn speed_matches_vis_viva() {
        let k = KeplerianElements::new(7e6, 0.1, 0.5, 0.2, 0.3, 0.0).unwrap();
        for i in 0..16 {
            let s = k.eci_state_at_mean_anomaly(i as f64 * 0.4).unwrap();
            let vis_viva = (MU_M3_S2 * (2.0 / s.radius_m() - 1.0 / k.semi_major_axis_m())).sqrt();
            assert!((s.speed_m_s() - vis_viva).abs() / vis_viva < 1e-9);
        }
    }

    #[test]
    fn energy_and_momentum_are_conserved_along_orbit() {
        let k = KeplerianElements::new(6.9e6, 0.2, 1.2, 0.5, 1.0, 0.0).unwrap();
        let s0 = k.eci_state_at_mean_anomaly(0.0).unwrap();
        let e0 = s0.specific_energy();
        let h0 = s0.specific_angular_momentum();
        for i in 1..24 {
            let s = k.eci_state_at_mean_anomaly(i as f64 * 0.26).unwrap();
            assert!((s.specific_energy() - e0).abs() / e0.abs() < 1e-9);
            let h = s.specific_angular_momentum();
            assert!((h - h0).norm() / h0.norm() < 1e-9);
        }
    }

    #[test]
    fn inclination_bounds_z_extent() {
        let k = paper_orbit();
        let max_z_frac = k.inclination_rad().sin();
        for i in 0..64 {
            let s = k.eci_state_at_mean_anomaly(i as f64 * 0.1).unwrap();
            let z_frac = s.position.z.abs() / s.radius_m();
            assert!(z_frac <= max_z_frac + 1e-9);
        }
    }

    #[test]
    fn equatorial_orbit_stays_in_plane() {
        let k = KeplerianElements::new(7e6, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap();
        for i in 0..16 {
            let s = k.eci_state_at_mean_anomaly(i as f64 * 0.4).unwrap();
            assert!(s.position.z.abs() < 1e-6);
        }
    }
}
