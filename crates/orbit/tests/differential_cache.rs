//! Differential oracle: `PropagationCache` / `EpochGrid` batched
//! propagation must be **bit-identical** to direct per-epoch
//! `GroundTrack::state_at` calls, across random constellations, frame
//! cadences, horizons, and GMST epochs — including the grid's
//! trig-memoization fast path and its mismatched-epoch fallback.
//! On the `eagleeye-check` harness (replay with `EAGLEEYE_CHECK_SEED`,
//! scale with `EAGLEEYE_CHECK_CASES`).

use eagleeye_check::{check_cases, f64_range, prop_assert, prop_assert_eq, vec_of, Gen};
use eagleeye_orbit::{EpochGrid, GroundTrack, J2Propagator, PropagationCache};

const CASES: u32 = 64;

fn tracks_gen() -> impl Gen<Value = Vec<GroundTrack>> {
    (
        f64_range(350_000.0, 1_200_000.0),
        f64_range(20.0, 160.0),
        vec_of(f64_range(0.0, std::f64::consts::TAU), 1, 5),
    )
        .map(|(alt_m, incl_deg, phases)| {
            phases
                .into_iter()
                .map(|phase| {
                    GroundTrack::new(
                        J2Propagator::circular(alt_m, incl_deg.to_radians(), 0.0, phase)
                            .expect("valid orbit"),
                    )
                })
                .collect()
        })
}

/// Cached states equal direct `state_at` results exactly (`==`, not
/// within-epsilon) on the shared-trig fast path.
#[test]
fn cache_matches_direct_propagation_bitwise() {
    check_cases(
        CASES,
        "cache_matches_direct_propagation_bitwise",
        (tracks_gen(), f64_range(1.0, 60.0), f64_range(30.0, 4_000.0)),
        |(tracks, cadence_s, duration_s)| {
            let grid = EpochGrid::for_horizon(0.0, *duration_s, *cadence_s);
            prop_assert!(!grid.is_empty(), "horizon {duration_s} produced no epochs");
            let cache = PropagationCache::build(tracks, grid.clone()).expect("cache builds");
            prop_assert_eq!(cache.satellite_count(), tracks.len());
            for (i, track) in tracks.iter().enumerate() {
                let row = cache.row(i);
                prop_assert_eq!(row.len(), grid.len());
                for (k, &t) in grid.epochs().iter().enumerate() {
                    let direct = track.state_at(t).expect("direct propagation");
                    prop_assert!(
                        cache.state(i, k) == &direct,
                        "sat {} frame {} (t={}) diverges from direct propagation",
                        i,
                        k,
                        t
                    );
                }
            }
            Ok(())
        },
    );
}

/// A track whose GMST epoch differs from the grid's takes the
/// fallback (non-memoized) path — and must still match `state_at`
/// exactly.
#[test]
fn gmst_mismatch_fallback_matches_direct_propagation() {
    check_cases(
        CASES,
        "gmst_mismatch_fallback_matches_direct_propagation",
        (
            f64_range(400_000.0, 900_000.0),
            f64_range(30.0, 150.0),
            f64_range(1e-6, std::f64::consts::TAU),
            f64_range(5.0, 60.0),
            f64_range(60.0, 2_000.0),
        ),
        |&(alt_m, incl_deg, gmst_rad, cadence_s, duration_s)| {
            let track = GroundTrack::new(
                J2Propagator::circular(alt_m, incl_deg.to_radians(), 0.0, 0.0)
                    .expect("valid orbit"),
            )
            .with_gmst_epoch(gmst_rad);
            let grid = EpochGrid::for_horizon(0.0, duration_s, cadence_s);
            prop_assert!(track.gmst_epoch_rad() != grid.gmst_epoch_rad());
            let row = grid.propagate(&track).expect("fallback propagation");
            for (k, &t) in grid.epochs().iter().enumerate() {
                let direct = track.state_at(t).expect("direct propagation");
                prop_assert!(
                    row[k] == direct,
                    "fallback frame {} (t={}) diverges from direct propagation",
                    k,
                    t
                );
            }
            Ok(())
        },
    );
}

/// Checkpoint/resume re-warm: a run killed after frame `k` rebuilds a
/// *fresh* `PropagationCache` in a new process for the remaining
/// frames (trig memoization and all warm state are gone). Splitting
/// the epoch grid at any boundary and rebuilding each half from cold
/// must concatenate to the single-process cache bit-for-bit —
/// otherwise a resumed run could diverge from an uninterrupted one.
#[test]
fn cache_rewarm_across_resume_boundary_is_bitwise_identical() {
    check_cases(
        CASES,
        "cache_rewarm_across_resume_boundary_is_bitwise_identical",
        (
            tracks_gen(),
            f64_range(1.0, 60.0),
            f64_range(120.0, 4_000.0),
            f64_range(0.0, 1.0),
        ),
        |(tracks, cadence_s, duration_s, split_frac)| {
            let grid = EpochGrid::for_horizon(0.0, *duration_s, *cadence_s);
            let full = PropagationCache::build(tracks, grid.clone()).expect("full cache");
            // The resumed process re-derives the same epoch list from
            // the scenario, then processes only the remaining frames.
            let k = ((grid.len() as f64) * split_frac) as usize;
            let before = EpochGrid::new(0.0, grid.epochs()[..k].to_vec());
            let after = EpochGrid::new(0.0, grid.epochs()[k..].to_vec());
            let cache_before = PropagationCache::build(tracks, before).expect("pre-crash cache");
            let cache_after = PropagationCache::build(tracks, after).expect("resumed cache");
            for i in 0..tracks.len() {
                let rejoined: Vec<_> = cache_before
                    .row(i)
                    .iter()
                    .chain(cache_after.row(i).iter())
                    .collect();
                prop_assert_eq!(rejoined.len(), grid.len());
                for (frame, (&got, want)) in rejoined.iter().zip(full.row(i).iter()).enumerate() {
                    prop_assert!(
                        got == want,
                        "sat {} frame {} (split at {}) diverges after a cold re-warm",
                        i,
                        frame,
                        k
                    );
                }
            }
            Ok(())
        },
    );
}

/// `frame_epochs` reproduces the evaluator's historical accumulation
/// loop float-for-float, for arbitrary cadences and horizons.
#[test]
fn frame_epochs_match_the_accumulation_loop() {
    check_cases(
        CASES,
        "frame_epochs_match_the_accumulation_loop",
        (f64_range(0.1, 90.0), f64_range(0.0, 5_000.0)),
        |&(cadence_s, duration_s)| {
            let epochs = eagleeye_orbit::frame_epochs(duration_s, cadence_s);
            let mut expected = Vec::new();
            let mut t = 0.0;
            while t < duration_s {
                expected.push(t);
                t += cadence_s;
            }
            prop_assert_eq!(&epochs, &expected);
            Ok(())
        },
    );
}
