//! Property-based tests for the orbital mechanics substrate, on the
//! `eagleeye-check` harness (replay with `EAGLEEYE_CHECK_SEED`, scale
//! with `EAGLEEYE_CHECK_CASES`).

use eagleeye_check::{check_cases, f64_range, prop_assert, prop_assume, PropResult};
use eagleeye_geo::earth::{MEAN_RADIUS_M, MU_M3_S2};
use eagleeye_orbit::{GroundTrack, J2Propagator, KeplerianElements, Sgp4Propagator, Tle};

const CASES: u32 = 64;

/// Builds a checksum-valid TLE for a near-circular LEO with the given
/// inclination (deg) and mean motion (rev/day), drag-free.
fn leo_tle(incl_deg: f64, mean_motion: f64, raan_deg: f64, mean_anom_deg: f64) -> Tle {
    let base = Tle::paper_orbit();
    let (l1, _) = base.to_lines();
    let mut l2 = format!(
        "2 99001 {:8.4} {:8.4} 0001000 {:8.4} {:8.4} {:11.8}    1",
        incl_deg, raan_deg, 0.0, mean_anom_deg, mean_motion,
    );
    l2.truncate(68);
    while l2.len() < 68 {
        l2.push(' ');
    }
    let c = Tle::checksum(&l2);
    l2.push(char::from_digit(c, 10).expect("mod 10"));
    Tle::parse(&l1, &l2).expect("synthesized TLE is valid")
}

/// Two-body states from the element set conserve energy and angular
/// momentum along the whole orbit.
#[test]
fn two_body_invariants() {
    check_cases(
        CASES,
        "two_body_invariants",
        (
            f64_range(300.0, 2_000.0),
            f64_range(0.0, 0.3),
            f64_range(0.0, std::f64::consts::PI),
            f64_range(0.0, std::f64::consts::TAU),
        ),
        |&(alt_km, ecc, incl, m0)| {
            let a = MEAN_RADIUS_M + alt_km * 1000.0;
            // Keep perigee above the surface.
            prop_assume!(a * (1.0 - ecc) > MEAN_RADIUS_M + 100_000.0);
            let k = KeplerianElements::new(a, ecc, incl, 1.0, 0.5, m0).expect("valid");
            let s0 = k.eci_state_at_mean_anomaly(m0).expect("propagates");
            let e0 = s0.specific_energy();
            let h0 = s0.specific_angular_momentum();
            for i in 1..8 {
                let s = k
                    .eci_state_at_mean_anomaly(m0 + i as f64 * 0.7)
                    .expect("propagates");
                prop_assert!((s.specific_energy() - e0).abs() / e0.abs() < 1e-8);
                prop_assert!((s.specific_angular_momentum() - h0).norm() / h0.norm() < 1e-8);
            }
            // Vis-viva at epoch.
            let vis_viva = (MU_M3_S2 * (2.0 / s0.radius_m() - 1.0 / a)).sqrt();
            prop_assert!((s0.speed_m_s() - vis_viva).abs() / vis_viva < 1e-9);
            Ok(())
        },
    );
}

/// Kepler's equation solutions satisfy the defining identity.
#[test]
fn kepler_identity() {
    check_cases(
        CASES,
        "kepler_identity",
        (f64_range(0.0, 0.95), f64_range(0.0, std::f64::consts::TAU)),
        |&(ecc, m)| {
            let k = KeplerianElements::new(7e6, ecc, 1.0, 0.0, 0.0, 0.0).expect("valid");
            let e_anom = k.eccentric_anomaly_rad(m).expect("converges");
            let recon = eagleeye_geo::wrap_two_pi(e_anom - ecc * e_anom.sin());
            let want = eagleeye_geo::wrap_two_pi(m);
            let diff = (recon - want)
                .abs()
                .min(std::f64::consts::TAU - (recon - want).abs());
            prop_assert!(diff < 1e-9, "identity residual {diff}");
            Ok(())
        },
    );
}

/// The subsatellite latitude never exceeds the inclination (or its
/// supplement for retrograde orbits).
#[test]
fn ground_track_latitude_is_bounded() {
    check_cases(
        CASES,
        "ground_track_latitude_is_bounded",
        (f64_range(10.0, 170.0), f64_range(0.0, 86_400.0)),
        |&(incl_deg, t)| {
            let incl = incl_deg.to_radians();
            let max_lat = incl.min(std::f64::consts::PI - incl).to_degrees();
            let track =
                GroundTrack::new(J2Propagator::circular(500_000.0, incl, 0.3, 0.7).expect("valid"));
            let s = track.state_at(t).expect("propagates");
            prop_assert!(
                s.subsatellite.lat_deg().abs() <= max_lat + 0.5,
                "lat {} exceeds bound {}",
                s.subsatellite.lat_deg(),
                max_lat
            );
            Ok(())
        },
    );
}

/// Circular-orbit altitude stays fixed under J2 propagation (secular
/// J2 perturbs angles, not energy).
#[test]
fn circular_altitude_is_stable() {
    check_cases(
        CASES,
        "circular_altitude_is_stable",
        (
            f64_range(350.0, 1_500.0),
            f64_range(20.0, 160.0),
            f64_range(0.0, 86_400.0),
        ),
        |&(alt_km, incl_deg, t)| {
            let p = J2Propagator::circular(alt_km * 1000.0, incl_deg.to_radians(), 0.0, 0.0)
                .expect("valid");
            let s = p.state_at(t).expect("propagates");
            let alt = s.radius_m() - MEAN_RADIUS_M;
            prop_assert!(
                (alt - alt_km * 1000.0).abs() < 5_000.0,
                "altitude drifted to {alt}"
            );
            Ok(())
        },
    );
}

fn check_sgp4_agrees_with_j2(
    incl_deg: f64,
    mean_motion: f64,
    raan_deg: f64,
    mean_anom_deg: f64,
    t: f64,
) -> PropResult {
    let tle = leo_tle(incl_deg, mean_motion, raan_deg, mean_anom_deg);
    let sgp4 = Sgp4Propagator::new(&tle).expect("LEO is supported");
    let j2 = J2Propagator::from_tle(&tle).expect("valid elements");
    let a = sgp4.state_at(t).expect("propagates").position;
    let b = j2.state_at(t).expect("propagates").position;
    let sep_km = (a - b).norm() / 1000.0;
    prop_assert!(sep_km < 80.0, "separation {sep_km} km at t={t}");
    // Both stay at LEO altitude.
    let alt_km = a.norm() / 1000.0 - 6378.135;
    prop_assert!(alt_km > 250.0 && alt_km < 1_400.0, "altitude {alt_km}");
    Ok(())
}

/// SGP4 and the J2 propagator agree to within tens of kilometers on
/// drag-free near-circular LEOs over an hour — the cross-validation
/// bound documented in `orbit::sgp4`.
#[test]
fn sgp4_agrees_with_j2_on_leo() {
    check_cases(
        CASES,
        "sgp4_agrees_with_j2_on_leo",
        (
            f64_range(30.0, 110.0),
            f64_range(13.0, 16.0), // rev/day: ~450-900 km LEO
            f64_range(0.0, 359.0),
            f64_range(0.0, 359.0),
            f64_range(0.0, 3_600.0),
        ),
        |&(incl_deg, mean_motion, raan_deg, mean_anom_deg, t)| {
            check_sgp4_agrees_with_j2(incl_deg, mean_motion, raan_deg, mean_anom_deg, t)
        },
    );
}

/// Phase-shifting satellites preserves their angular separation over
/// time (rigid constellation rotation).
#[test]
fn phase_separation_is_preserved() {
    check_cases(
        CASES,
        "phase_separation_is_preserved",
        (f64_range(0.01, 1.0), f64_range(0.0, 40_000.0)),
        |&(delta, t)| {
            let a =
                J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0).expect("valid");
            let b = a.phase_shifted(delta);
            let sa = a.state_at(t).expect("propagates");
            let sb = b.state_at(t).expect("propagates");
            let angle = sa.position.angle_to(sb.position);
            prop_assert!(
                (angle - delta).abs() < 2e-3,
                "separation {angle} vs {delta}"
            );
            Ok(())
        },
    );
}

/// Pinned regression cases from the retired `.proptest-regressions`
/// file: SGP4-vs-J2 agreement at the low corner of the inclination and
/// mean-motion ranges, where the epoch-state discrepancy peaked.
#[test]
fn regression_sgp4_vs_j2_low_inclination_epoch() {
    check_sgp4_agrees_with_j2(30.0, 13.0, 0.0, 0.0, 0.0).expect("regression case must pass");
}

/// Second pinned seed: near the fast-orbit boundary (15.94 rev/day).
#[test]
fn regression_sgp4_vs_j2_fast_orbit_epoch() {
    check_sgp4_agrees_with_j2(30.0, 15.939_504_969_680_362, 0.0, 0.0, 0.0)
        .expect("regression case must pass");
}
