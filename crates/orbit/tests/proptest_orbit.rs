//! Property-based tests for the orbital mechanics substrate.

use eagleeye_geo::earth::{MEAN_RADIUS_M, MU_M3_S2};
use eagleeye_orbit::{GroundTrack, J2Propagator, KeplerianElements, Sgp4Propagator, Tle};
use proptest::prelude::*;

/// Builds a checksum-valid TLE for a near-circular LEO with the given
/// inclination (deg) and mean motion (rev/day), drag-free.
fn leo_tle(incl_deg: f64, mean_motion: f64, raan_deg: f64, mean_anom_deg: f64) -> Tle {
    let base = Tle::paper_orbit();
    let (l1, _) = base.to_lines();
    let mut l2 = format!(
        "2 99001 {:8.4} {:8.4} 0001000 {:8.4} {:8.4} {:11.8}    1",
        incl_deg, raan_deg, 0.0, mean_anom_deg, mean_motion,
    );
    l2.truncate(68);
    while l2.len() < 68 {
        l2.push(' ');
    }
    let c = Tle::checksum(&l2);
    l2.push(char::from_digit(c, 10).expect("mod 10"));
    Tle::parse(&l1, &l2).expect("synthesized TLE is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two-body states from the element set conserve energy and angular
    /// momentum along the whole orbit.
    #[test]
    fn two_body_invariants(
        alt_km in 300.0f64..2_000.0,
        ecc in 0.0f64..0.3,
        incl in 0.0f64..std::f64::consts::PI,
        m0 in 0.0f64..std::f64::consts::TAU,
    ) {
        let a = MEAN_RADIUS_M + alt_km * 1000.0;
        // Keep perigee above the surface.
        prop_assume!(a * (1.0 - ecc) > MEAN_RADIUS_M + 100_000.0);
        let k = KeplerianElements::new(a, ecc, incl, 1.0, 0.5, m0).expect("valid");
        let s0 = k.eci_state_at_mean_anomaly(m0).expect("propagates");
        let e0 = s0.specific_energy();
        let h0 = s0.specific_angular_momentum();
        for i in 1..8 {
            let s = k.eci_state_at_mean_anomaly(m0 + i as f64 * 0.7).expect("propagates");
            prop_assert!((s.specific_energy() - e0).abs() / e0.abs() < 1e-8);
            prop_assert!((s.specific_angular_momentum() - h0).norm() / h0.norm() < 1e-8);
        }
        // Vis-viva at epoch.
        let vis_viva = (MU_M3_S2 * (2.0 / s0.radius_m() - 1.0 / a)).sqrt();
        prop_assert!((s0.speed_m_s() - vis_viva).abs() / vis_viva < 1e-9);
    }

    /// Kepler's equation solutions satisfy the defining identity.
    #[test]
    fn kepler_identity(ecc in 0.0f64..0.95, m in 0.0f64..std::f64::consts::TAU) {
        let k = KeplerianElements::new(7e6, ecc, 1.0, 0.0, 0.0, 0.0).expect("valid");
        let e_anom = k.eccentric_anomaly_rad(m).expect("converges");
        let recon = eagleeye_geo::wrap_two_pi(e_anom - ecc * e_anom.sin());
        let want = eagleeye_geo::wrap_two_pi(m);
        let diff = (recon - want).abs().min(std::f64::consts::TAU - (recon - want).abs());
        prop_assert!(diff < 1e-9, "identity residual {diff}");
    }

    /// The subsatellite latitude never exceeds the inclination (or its
    /// supplement for retrograde orbits).
    #[test]
    fn ground_track_latitude_is_bounded(
        incl_deg in 10.0f64..170.0,
        t in 0.0f64..86_400.0,
    ) {
        let incl = incl_deg.to_radians();
        let max_lat = incl.min(std::f64::consts::PI - incl).to_degrees();
        let track = GroundTrack::new(
            J2Propagator::circular(500_000.0, incl, 0.3, 0.7).expect("valid"));
        let s = track.state_at(t).expect("propagates");
        prop_assert!(s.subsatellite.lat_deg().abs() <= max_lat + 0.5,
            "lat {} exceeds bound {}", s.subsatellite.lat_deg(), max_lat);
    }

    /// Circular-orbit altitude stays fixed under J2 propagation (secular
    /// J2 perturbs angles, not energy).
    #[test]
    fn circular_altitude_is_stable(
        alt_km in 350.0f64..1_500.0,
        incl_deg in 20.0f64..160.0,
        t in 0.0f64..86_400.0,
    ) {
        let p = J2Propagator::circular(alt_km * 1000.0, incl_deg.to_radians(), 0.0, 0.0)
            .expect("valid");
        let s = p.state_at(t).expect("propagates");
        let alt = s.radius_m() - MEAN_RADIUS_M;
        prop_assert!((alt - alt_km * 1000.0).abs() < 5_000.0,
            "altitude drifted to {alt}");
    }

    /// SGP4 and the J2 propagator agree to within tens of kilometers on
    /// drag-free near-circular LEOs over an hour — the cross-validation
    /// bound documented in `orbit::sgp4`.
    #[test]
    fn sgp4_agrees_with_j2_on_leo(
        incl_deg in 30.0f64..110.0,
        mean_motion in 13.0f64..16.0, // rev/day: ~450-900 km LEO
        raan_deg in 0.0f64..359.0,
        mean_anom_deg in 0.0f64..359.0,
        t in 0.0f64..3_600.0,
    ) {
        let tle = leo_tle(incl_deg, mean_motion, raan_deg, mean_anom_deg);
        let sgp4 = Sgp4Propagator::new(&tle).expect("LEO is supported");
        let j2 = J2Propagator::from_tle(&tle).expect("valid elements");
        let a = sgp4.state_at(t).expect("propagates").position;
        let b = j2.state_at(t).expect("propagates").position;
        let sep_km = (a - b).norm() / 1000.0;
        prop_assert!(sep_km < 80.0, "separation {sep_km} km at t={t}");
        // Both stay at LEO altitude.
        let alt_km = a.norm() / 1000.0 - 6378.135;
        prop_assert!(alt_km > 250.0 && alt_km < 1_400.0, "altitude {alt_km}");
    }

    /// Phase-shifting satellites preserves their angular separation over
    /// time (rigid constellation rotation).
    #[test]
    fn phase_separation_is_preserved(
        delta in 0.01f64..1.0,
        t in 0.0f64..40_000.0,
    ) {
        let a = J2Propagator::circular(475_000.0, 97.2_f64.to_radians(), 0.0, 0.0)
            .expect("valid");
        let b = a.phase_shifted(delta);
        let sa = a.state_at(t).expect("propagates");
        let sb = b.state_at(t).expect("propagates");
        let angle = sa.position.angle_to(sb.position);
        prop_assert!((angle - delta).abs() < 2e-3,
            "separation {angle} vs {delta}");
    }
}
