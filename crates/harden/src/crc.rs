//! CRC-32 (IEEE 802.3 polynomial, reflected) for snapshot integrity.
//!
//! The checkpoint file is the only artifact that survives a crash, so
//! it carries its own integrity check: a torn or bit-rotted snapshot
//! must be *detected* and rejected (forcing a cold start) rather than
//! silently resumed into a corrupt run.

/// CRC-32/ISO-HDLC of `data` (the common `crc32` used by zip/png):
/// reflected polynomial `0xEDB88320`, init and final XOR `0xFFFFFFFF`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let mut data = b"eagleeye checkpoint payload".to_vec();
        let clean = crc32(&data);
        data[5] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
