//! Minimal little-endian byte codec for checkpoint payloads.
//!
//! Checkpoint payloads must round-trip **bit-identically** — the whole
//! point of resume is that a resumed run is indistinguishable from an
//! uninterrupted one — so floats are stored as raw IEEE-754 bits
//! (`f64::to_bits`), never formatted text, and every integer is a
//! fixed-width little-endian field. The writer is infallible; the
//! reader checks bounds on every read so a truncated payload surfaces
//! as a [`CodecError`] instead of a panic.

use std::fmt;

/// Decoding failure: the payload was shorter than the reader expected,
/// or a length/UTF-8 field was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the reader was trying to decode.
    pub context: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint payload decode failed at {}", self.context)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk format is
    /// platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits (exact round-trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed bit-packed bool slice (8 flags per
    /// byte — capture bitmaps are large).
    pub fn bitmap(&mut self, v: &[bool]) {
        self.usize(v.len());
        let mut byte = 0u8;
        for (i, &b) in v.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !v.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
}

/// Bounds-checked little-endian byte reader over an encoded payload.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8, "u64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let s = self.take(16, "u128")?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_le_bytes(b))
    }

    /// Reads a `u64` and converts to `usize`, rejecting values that do
    /// not fit the platform.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError { context: "usize" })
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (any nonzero value is `true`).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.usize()?;
        self.take(n, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError {
            context: "utf-8 str",
        })
    }

    /// Reads a length-prefixed bit-packed bool slice written by
    /// [`ByteWriter::bitmap`].
    pub fn bitmap(&mut self) -> Result<Vec<bool>, CodecError> {
        let n = self.usize()?;
        let packed = self.take(n.div_ceil(8), "bitmap body")?;
        Ok((0..n)
            .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX / 3);
        w.usize(42);
        w.f64(-0.1);
        w.f64(f64::NAN);
        w.bool(true);
        w.bytes(&[1, 2, 3]);
        w.str("φρ/harden");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "φρ/harden");
        assert!(r.is_exhausted());
    }

    #[test]
    fn bitmap_round_trips_at_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0 || i % 7 == 2).collect();
            let mut w = ByteWriter::new();
            w.bitmap(&flags);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.bitmap().unwrap(), flags, "n={n}");
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncated_payload_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.u64(5);
        let mut bytes = w.into_bytes();
        bytes.truncate(3);
        let mut r = ByteReader::new(&bytes);
        assert!(r.u64().is_err());
        // A bytes header larger than the remaining buffer is rejected.
        let mut w = ByteWriter::new();
        w.usize(1_000_000);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn reader_tracks_position() {
        let mut w = ByteWriter::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.remaining(), 8);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 4);
    }
}
