//! Versioned, CRC-guarded, atomically written checkpoint snapshots.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! magic    8 bytes   b"EEHCKPT\x01"
//! body     N bytes   scenario_hash u64
//!                    section count u64
//!                    per section: name (len-prefixed str),
//!                                 payload (len-prefixed bytes)
//! crc32    4 bytes   CRC-32/ISO-HDLC of magic+body, little-endian
//! ```
//!
//! All integers are little-endian (see [`crate::codec`]); payload
//! semantics belong to the caller (the runner stores one section per
//! completed work item, `item/<index>`).
//!
//! # Atomicity
//!
//! [`Snapshot::write_atomic`] writes `<path>.tmp`, fsyncs the file,
//! renames it over `<path>`, then fsyncs the parent directory, so a
//! crash at any point leaves either the previous snapshot or the new
//! one — never a torn file. A crash injected *during* the write (site
//! `checkpoint_write`) is part of the crash-replay CI sweep.
//!
//! # Scenario binding
//!
//! Every snapshot stores the scenario hash it was taken under;
//! [`Snapshot::load_expecting`] rejects a resume against a different
//! scenario (different seed, workload, horizon, …) instead of silently
//! merging incompatible partial results.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Magic prefix: file type tag plus format version byte.
const MAGIC: &[u8; 8] = b"EEHCKPT\x01";

/// Why a snapshot failed to load or write.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (open, write, fsync, rename).
    Io(io::Error),
    /// The file is not a snapshot or uses an unknown format version.
    BadMagic,
    /// The CRC trailer does not match the body — torn write or
    /// corruption.
    ChecksumMismatch {
        /// CRC stored in the file trailer.
        stored: u32,
        /// CRC recomputed over the file body.
        computed: u32,
    },
    /// The body failed to decode (truncated or malformed).
    Malformed(&'static str),
    /// The snapshot was taken under a different scenario.
    ScenarioMismatch {
        /// Hash stored in the snapshot.
        stored: u64,
        /// Hash of the scenario being resumed.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            SnapshotError::BadMagic => {
                write!(f, "not an EagleEye checkpoint (bad magic or version)")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) \
                 — torn write or corruption; delete the file to start cold"
            ),
            SnapshotError::Malformed(context) => {
                write!(f, "checkpoint body malformed at {context}")
            }
            SnapshotError::ScenarioMismatch { stored, expected } => write!(
                f,
                "checkpoint was taken under scenario {stored:#018x} but this run is scenario \
                 {expected:#018x} — refusing to resume a different scenario"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// An in-memory checkpoint: a scenario hash plus named byte sections.
///
/// Sections are ordered (`BTreeMap`) so [`Snapshot::to_bytes`] is
/// deterministic: equal snapshots encode byte-identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Hash of the scenario this snapshot belongs to.
    pub scenario_hash: u64,
    sections: BTreeMap<String, Vec<u8>>,
}

impl Snapshot {
    /// An empty snapshot bound to a scenario.
    pub fn new(scenario_hash: u64) -> Self {
        Snapshot {
            scenario_hash,
            sections: BTreeMap::new(),
        }
    }

    /// Stores (or replaces) a named section.
    pub fn put(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.insert(name.to_string(), payload);
    }

    /// The payload of a named section, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections.get(name).map(Vec::as_slice)
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections are stored.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Iterates sections in name order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Encodes the snapshot (magic + body + CRC trailer).
    /// Deterministic: equal snapshots encode byte-identically.
    // eagleeye-lint: codec-write(Snapshot)
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for &b in MAGIC {
            w.u8(b);
        }
        w.u64(self.scenario_hash);
        w.usize(self.sections.len());
        for (name, payload) in &self.sections {
            w.str(name);
            w.bytes(payload);
        }
        let crc = crc32(&w.clone().into_bytes());
        w.u32(crc);
        w.into_bytes()
    }

    /// Decodes a snapshot, verifying magic and CRC.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::ChecksumMismatch`],
    /// or [`SnapshotError::Malformed`].
    // eagleeye-lint: codec-read(Snapshot)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = ByteReader::new(&body[MAGIC.len()..]);
        let mut snap = Snapshot {
            scenario_hash: r.u64().map_err(|e| SnapshotError::Malformed(e.context))?,
            sections: BTreeMap::new(),
        };
        let count = r.usize().map_err(|e| SnapshotError::Malformed(e.context))?;
        for _ in 0..count {
            let name = r
                .str()
                .map_err(|e| SnapshotError::Malformed(e.context))?
                .to_string();
            let payload = r
                .bytes()
                .map_err(|e| SnapshotError::Malformed(e.context))?
                .to_vec();
            snap.sections.insert(name, payload);
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed("trailing bytes after sections"));
        }
        Ok(snap)
    }

    /// Writes the snapshot atomically: `<path>.tmp` + fsync + rename +
    /// parent-directory fsync. A crash at any point leaves either the
    /// old snapshot or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`SnapshotError::Io`].
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes();
        let tmp = tmp_path(path);
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()?;
        }
        // Crash-injection site: a process killed between writing the
        // tmp file and publishing it must leave the previous snapshot
        // intact — the crash-replay sweep asserts exactly that.
        crate::crash::crash_point("checkpoint_write");
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Directory fsync persists the rename itself; best-effort
            // on filesystems that reject directory handles.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and verifies a snapshot from disk.
    ///
    /// # Errors
    ///
    /// I/O, magic, checksum, and decode failures; see [`SnapshotError`].
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Snapshot::from_bytes(&fs::read(path)?)
    }

    /// [`Snapshot::load`] plus scenario binding: rejects a snapshot
    /// taken under a different scenario hash.
    ///
    /// # Errors
    ///
    /// Everything [`Snapshot::load`] returns, plus
    /// [`SnapshotError::ScenarioMismatch`].
    pub fn load_expecting(path: &Path, scenario_hash: u64) -> Result<Self, SnapshotError> {
        let snap = Snapshot::load(path)?;
        if snap.scenario_hash != scenario_hash {
            return Err(SnapshotError::ScenarioMismatch {
                stored: snap.scenario_hash,
                expected: scenario_hash,
            });
        }
        Ok(snap)
    }
}

/// `<path>.tmp` sibling used for the atomic write.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// FNV-1a over a byte stream — the workspace's scenario-hash
/// primitive. Stable across platforms and processes (unlike
/// `DefaultHasher`, whose keys are randomized per process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioHasher {
    state: u64,
}

impl Default for ScenarioHasher {
    fn default() -> Self {
        ScenarioHasher::new()
    }
}

impl ScenarioHasher {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        ScenarioHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes into the hash.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64`'s raw bits into the hash.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a string (length-delimited) into the hash.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The final hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eagleeye_harden_{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(0xABCD_EF01_2345_6789);
        s.put("item/0", vec![1, 2, 3]);
        s.put("item/1", vec![]);
        s.put("meta", b"hello".to_vec());
        s
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        // Deterministic encoding.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn sections_are_readable_and_ordered() {
        let s = sample();
        assert_eq!(s.get("item/0"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.get("missing"), None);
        let names: Vec<&str> = s.sections().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["item/0", "item/1", "meta"]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed(_))
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"NOTACKPT"),
            Err(SnapshotError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[7] = 0x02;
        assert!(matches!(
            Snapshot::from_bytes(&wrong_version),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn write_load_round_trip() {
        let path = temp_file("roundtrip.ckpt");
        let s = sample();
        s.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), s);
        assert!(!tmp_path(&path).exists(), "tmp file must be renamed away");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn scenario_mismatch_is_rejected() {
        let path = temp_file("scenario.ckpt");
        sample().write_atomic(&path).unwrap();
        assert!(Snapshot::load_expecting(&path, 0xABCD_EF01_2345_6789).is_ok());
        assert!(matches!(
            Snapshot::load_expecting(&path, 42),
            Err(SnapshotError::ScenarioMismatch { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let path = temp_file("rewrite.ckpt");
        sample().write_atomic(&path).unwrap();
        let mut s2 = Snapshot::new(7);
        s2.put("only", vec![9]);
        s2.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), s2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn scenario_hasher_is_stable_and_sensitive() {
        let h = |f: &dyn Fn(&mut ScenarioHasher)| {
            let mut s = ScenarioHasher::new();
            f(&mut s);
            s.finish()
        };
        let a = h(&|s| {
            s.u64(1).f64(2.5).str("ships");
        });
        let b = h(&|s| {
            s.u64(1).f64(2.5).str("ships");
        });
        assert_eq!(a, b);
        assert_ne!(
            a,
            h(&|s| {
                s.u64(2).f64(2.5).str("ships");
            })
        );
        assert_ne!(
            a,
            h(&|s| {
                s.u64(1).f64(2.5).str("planes");
            })
        );
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(ScenarioHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
