//! Deadline budget and cooperative shutdown for long runs.
//!
//! Both `abb` and `simplex` already stride-poll a wall-clock deadline
//! (check `Instant::now()` every N iterations so the syscall never
//! dominates an inner loop); this module generalizes that discipline
//! into a reusable [`Deadline`] + [`DeadlinePoll`] pair, and adds a
//! [`ShutdownFlag`] — a cooperative SIGTERM-style request that asks the
//! run to checkpoint and stop at the next safe point instead of dying
//! mid-write.
//!
//! A [`Deadline`] is *anytime* by contract: blowing it never aborts a
//! run. The runner stops dispatching new work, merges the partials that
//! finished, and marks the result degraded (see [`crate::runner`] and
//! DESIGN.md §12). A run with no deadline performs no clock reads at
//! all and is bit-deterministic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic wall-clock budget for a run.
///
/// `Deadline::none()` is the deterministic default: it never expires
/// and [`Deadline::expired`] never touches the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    /// No deadline: never expires, never reads the clock.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// A deadline at an absolute instant (compose with an outer budget).
    pub fn at(at: Instant) -> Self {
        Deadline { at: Some(at) }
    }

    /// True when a budget was set (expired or not).
    pub fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// The absolute expiry instant, if a budget was set.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// True when the budget is exhausted. Reads the clock only when a
    /// budget was set.
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Time left in the budget (`None` when no budget was set, zero
    /// when already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// Strided deadline polling for hot loops: queries the clock once per
/// `stride` calls, bounding both syscall overhead and deadline
/// overshoot — the same discipline `abb` (stride 256) and `simplex`
/// (stride 128) use inline.
#[derive(Debug, Clone)]
pub struct DeadlinePoll {
    deadline: Deadline,
    stride: usize,
    calls: usize,
    expired: bool,
}

impl DeadlinePoll {
    /// A poller over `deadline`, checking the clock every `stride`
    /// calls (a zero stride is treated as 1).
    pub fn new(deadline: Deadline, stride: usize) -> Self {
        DeadlinePoll {
            deadline,
            stride: stride.max(1),
            calls: 0,
            expired: false,
        }
    }

    /// True once the deadline has been observed expired. Latches: after
    /// the first `true`, the clock is never read again.
    pub fn expired(&mut self) -> bool {
        if self.expired || !self.deadline.is_set() {
            return self.expired;
        }
        self.calls += 1;
        if self.calls.is_multiple_of(self.stride) && self.deadline.expired() {
            self.expired = true;
        }
        self.expired
    }

    /// Checks the deadline immediately, ignoring the stride (for loop
    /// boundaries where overshoot matters).
    pub fn expired_now(&mut self) -> bool {
        if !self.expired && self.deadline.expired() {
            self.expired = true;
        }
        self.expired
    }

    /// The underlying deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }
}

/// A cooperative SIGTERM-style shutdown request, shared between a
/// signal handler (or test) and the run it supervises.
///
/// The flag only *requests*: the runner finishes in-flight items,
/// writes a final checkpoint, and returns a degraded result, so a
/// Ctrl-C'd 24 h sweep resumes instead of restarting.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    flag: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A new, un-requested flag.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Requests shutdown. Safe to call from any thread, repeatedly.
    pub fn request(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn requested(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        let mut p = DeadlinePoll::new(d, 8);
        for _ in 0..10_000 {
            assert!(!p.expired());
        }
        assert!(!p.expired_now());
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_set());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_reports_remaining() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn poll_latches_after_expiry() {
        let mut p = DeadlinePoll::new(Deadline::after(Duration::ZERO), 4);
        // Strided: the first three calls skip the clock.
        assert!(!p.expired());
        assert!(!p.expired());
        assert!(!p.expired());
        assert!(p.expired());
        // Latched from here on.
        assert!(p.expired());
        assert!(p.expired_now());
    }

    #[test]
    fn expired_now_bypasses_stride() {
        let mut p = DeadlinePoll::new(Deadline::after(Duration::ZERO), 1_000_000);
        assert!(p.expired_now());
        assert!(p.expired());
    }

    #[test]
    fn zero_stride_is_clamped() {
        let mut p = DeadlinePoll::new(Deadline::after(Duration::ZERO), 0);
        assert!(p.expired());
    }

    #[test]
    fn shutdown_flag_is_shared() {
        let f = ShutdownFlag::new();
        let clone = f.clone();
        assert!(!f.requested());
        std::thread::spawn(move || clone.request()).join().unwrap();
        assert!(f.requested());
    }

    #[test]
    fn absolute_deadline_constructor() {
        let d = Deadline::at(Instant::now() + Duration::from_secs(60));
        assert!(d.is_set());
        assert!(!d.expired());
        assert!(d.instant().is_some());
    }
}
