//! `EAGLEEYE_CRASH` fault-injection hook for crash testing.
//!
//! Recovery code that is never executed is recovery code that does not
//! work. This module plants named *crash sites* in production paths
//! (`worker_item` in the supervised pool, `checkpoint_write` between
//! the tmp-file write and the rename, `bnb_node` in the B&B loop) and
//! lets a test arm them from the environment:
//!
//! ```text
//! EAGLEEYE_CRASH=<site>:<mode>:<nth>[,<site>:<mode>:<nth>...]
//! ```
//!
//! * `site` — the name passed to [`crash_point`];
//! * `mode` — `panic` (unwind, exercising supervision/retry) or `exit`
//!   (immediate `process::exit(42)`, simulating a kill — no
//!   destructors, no checkpoint flush);
//! * `nth` — fire on the Nth hit of the site (1-based), so a test can
//!   let two checkpoints land and kill the third.
//!
//! Example: `EAGLEEYE_CRASH=checkpoint_write:exit:3` kills the process
//! the third time a checkpoint is about to be published.
//!
//! The plan is parsed once (on first [`crash_point`] hit) and cached in
//! a `OnceLock`; with the variable unset the per-site cost is one
//! initialized-`OnceLock` load and a `is_empty()` check. Sites count
//! hits with per-entry atomics, so concurrent workers agree on which
//! hit is the Nth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an armed crash site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// `panic!` — unwinds, so supervision (`catch_unwind`, retry,
    /// quarantine) sees it.
    Panic,
    /// `process::exit(42)` — no unwinding, no destructors; the closest
    /// portable stand-in for SIGKILL.
    Exit,
}

/// One armed site: fire with `mode` on the `nth` (1-based) hit.
#[derive(Debug)]
struct Armed {
    site: String,
    mode: CrashMode,
    nth: u64,
    hits: AtomicU64,
}

/// A parsed `EAGLEEYE_CRASH` specification.
#[derive(Debug, Default)]
pub struct CrashPlan {
    armed: Vec<Armed>,
}

impl CrashPlan {
    /// An empty plan (no armed sites).
    pub fn empty() -> Self {
        CrashPlan::default()
    }

    /// Parses a spec string (see module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed entry; the callers
    /// treat a malformed spec as fatal (a crash test with a typo'd spec
    /// must not silently test nothing).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut armed = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "EAGLEEYE_CRASH entry {entry:?} is not <site>:<mode>:<nth>"
                ));
            }
            let mode = match parts[1] {
                "panic" => CrashMode::Panic,
                "exit" => CrashMode::Exit,
                other => {
                    return Err(format!(
                        "EAGLEEYE_CRASH mode {other:?} in {entry:?} is not panic|exit"
                    ));
                }
            };
            let nth: u64 = parts[2].parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                format!(
                    "EAGLEEYE_CRASH nth {:?} in {entry:?} is not a positive integer",
                    parts[2]
                )
            })?;
            armed.push(Armed {
                site: parts[0].to_string(),
                mode,
                nth,
                hits: AtomicU64::new(0),
            });
        }
        Ok(CrashPlan { armed })
    }

    /// True when no sites are armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Records a hit at `site`; returns the mode to fire with if an
    /// armed entry just reached its Nth hit.
    fn hit(&self, site: &str) -> Option<CrashMode> {
        let mut fire = None;
        for entry in self.armed.iter().filter(|e| e.site == site) {
            let count = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if count == entry.nth {
                fire = Some(entry.mode);
            }
        }
        fire
    }
}

/// The process-wide plan, parsed from `EAGLEEYE_CRASH` on first use.
fn global_plan() -> &'static CrashPlan {
    static PLAN: OnceLock<CrashPlan> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("EAGLEEYE_CRASH") {
        Ok(spec) if !spec.trim().is_empty() => match CrashPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        },
        _ => CrashPlan::empty(),
    })
}

/// A named crash site. No-op unless `EAGLEEYE_CRASH` arms `site`, in
/// which case the Nth hit panics or exits per the spec.
///
/// Call this from production paths guarded by recovery logic; the cost
/// with injection disabled is one atomic-free branch.
///
/// # Panics
///
/// When armed with mode `panic` and this hit is the Nth.
pub fn crash_point(site: &str) {
    let plan = global_plan();
    if plan.is_empty() {
        return;
    }
    match plan.hit(site) {
        None => {}
        Some(CrashMode::Panic) => {
            panic!("injected crash at site {site:?} (EAGLEEYE_CRASH)");
        }
        Some(CrashMode::Exit) => {
            eprintln!("eagleeye-harden: injected exit at site {site:?} (EAGLEEYE_CRASH)");
            // eagleeye-lint: allow(no-exit): the exit *is* the fault being injected — a portable stand-in for SIGKILL, deliberately skipping destructors and checkpoint flushes
            std::process::exit(42);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_specs() {
        let plan = CrashPlan::parse("worker_item:panic:1").unwrap();
        assert!(!plan.is_empty());
        let plan =
            CrashPlan::parse("worker_item:panic:2, checkpoint_write:exit:3,bnb_node:panic:10")
                .unwrap();
        assert_eq!(plan.armed.len(), 3);
        assert!(CrashPlan::parse("").unwrap().is_empty());
        assert!(CrashPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(CrashPlan::parse("worker_item:panic").is_err());
        assert!(CrashPlan::parse("worker_item:segv:1").is_err());
        assert!(CrashPlan::parse("worker_item:panic:0").is_err());
        assert!(CrashPlan::parse("worker_item:panic:x").is_err());
        assert!(CrashPlan::parse("a:b:c:d").is_err());
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let plan = CrashPlan::parse("site:panic:3").unwrap();
        assert_eq!(plan.hit("site"), None);
        assert_eq!(plan.hit("other"), None);
        assert_eq!(plan.hit("site"), None);
        assert_eq!(plan.hit("site"), Some(CrashMode::Panic));
        assert_eq!(plan.hit("site"), None);
    }

    #[test]
    fn multiple_entries_for_one_site_count_independently() {
        let plan = CrashPlan::parse("s:panic:1,s:exit:2").unwrap();
        assert_eq!(plan.hit("s"), Some(CrashMode::Panic));
        assert_eq!(plan.hit("s"), Some(CrashMode::Exit));
        assert_eq!(plan.hit("s"), None);
    }

    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        // The test binary runs without EAGLEEYE_CRASH; the global plan
        // must be empty and the call must return normally.
        crash_point("never_armed_site");
    }

    #[test]
    fn concurrent_hits_fire_exactly_once() {
        let plan = std::sync::Arc::new(CrashPlan::parse("s:panic:64").unwrap());
        let fired: Vec<Option<CrashMode>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let plan = std::sync::Arc::clone(&plan);
                    scope.spawn(move || (0..16).map(|_| plan.hit("s")).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        });
        assert_eq!(
            fired.iter().filter(|f| f.is_some()).count(),
            1,
            "exactly one of 128 hits must be the 64th"
        );
    }
}
