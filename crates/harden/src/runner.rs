//! Streaming checkpointed execution with retry, quarantine, and
//! anytime degradation.
//!
//! `exec::ExecPool::par_map` only returns once *every* item finished,
//! so a crash loses the whole batch. This runner streams completed
//! items back to a supervising driver over a channel as they finish,
//! which is what makes mid-flight recovery possible:
//!
//! * the driver checkpoints accumulated payloads every
//!   [`CheckpointSpec::cadence`] completions (atomically, see
//!   [`crate::snapshot`]), so a killed process resumes from the last
//!   published snapshot instead of from zero;
//! * a per-item panic is caught (`catch_unwind`), retried with capped
//!   exponential backoff, and — if it keeps failing — quarantined and
//!   reported instead of aborting the run;
//! * a blown [`Deadline`] or a [`ShutdownFlag`] request stops
//!   *dispatch* (in-flight items finish, nothing new starts), the
//!   partials are kept, a final checkpoint is written, and the outcome
//!   is marked degraded.
//!
//! Payloads are returned in item order, so a fault-free run is
//! bit-identical at any thread count and any checkpoint cadence — the
//! same position-indexed discipline `exec` uses.

use crate::snapshot::{Snapshot, SnapshotError};
use crate::watchdog::{Deadline, ShutdownFlag};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// How often the driver polls the deadline/shutdown flag while waiting
/// for worker messages.
const DRIVER_POLL: Duration = Duration::from_millis(25);

/// Retry discipline for items whose closure panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = quarantine immediately).
    pub max_retries: usize,
    /// Backoff before retry `k` is `base * 2^(k-1)`, capped at `cap`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// No retries: the first panic quarantines the item.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// The backoff before the `attempt`-th retry (1-based).
    pub fn backoff(&self, attempt: usize) -> Duration {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Where, whether, and how often to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Snapshot file path (written atomically; `<path>.tmp` sibling).
    pub path: PathBuf,
    /// Load `path` before running and skip items it already holds.
    /// A missing file is a cold start, not an error; a corrupt or
    /// scenario-mismatched file is an error.
    pub resume: bool,
    /// Write a checkpoint after every `cadence` newly completed items
    /// (0 = only the final checkpoint). A final checkpoint is always
    /// written, including on degraded runs.
    pub cadence: usize,
}

impl CheckpointSpec {
    /// A spec with resume enabled and the given cadence.
    pub fn new(path: impl Into<PathBuf>, cadence: usize) -> Self {
        CheckpointSpec {
            path: path.into(),
            resume: true,
            cadence,
        }
    }
}

/// An item that kept panicking after all retries: reported, not fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Item index.
    pub item: usize,
    /// Total attempts made (1 + retries).
    pub attempts: usize,
    /// The final panic message.
    pub message: String,
}

/// Why a run was degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock budget expired.
    Deadline,
    /// A cooperative shutdown was requested.
    Shutdown,
}

/// Configuration for a supervised run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Scenario hash binding checkpoints to this exact workload.
    pub scenario_hash: u64,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Optional checkpoint/resume behavior.
    pub checkpoint: Option<CheckpointSpec>,
    /// Wall-clock budget; [`Deadline::none`] for deterministic runs.
    pub deadline: Deadline,
    /// Cooperative shutdown request.
    pub shutdown: ShutdownFlag,
    /// Retry discipline for panicking items.
    pub retry: RetryPolicy,
}

impl RunConfig {
    /// A config with no checkpointing, no deadline, default retries.
    pub fn new(scenario_hash: u64, threads: usize) -> Self {
        RunConfig {
            scenario_hash,
            threads,
            checkpoint: None,
            deadline: Deadline::none(),
            shutdown: ShutdownFlag::new(),
            retry: RetryPolicy::default(),
        }
    }
}

/// The result of a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Per-item payloads in item order. `None` for items that were
    /// quarantined or never dispatched (degraded run).
    pub payloads: Vec<Option<Vec<u8>>>,
    /// True when the run stopped early (deadline or shutdown) with
    /// some items never dispatched.
    pub degraded: bool,
    /// Why the run degraded, when it did.
    pub degrade_reason: Option<DegradeReason>,
    /// Items with a payload (freshly computed or resumed).
    pub completed: usize,
    /// Total items requested.
    pub total: usize,
    /// Items that kept panicking after all retries.
    pub quarantined: Vec<Quarantine>,
    /// Items whose payloads came from the resumed checkpoint.
    pub resumed_items: usize,
}

impl RunOutcome {
    /// Fraction of items with a payload, in `[0, 1]` (1.0 for an empty
    /// run).
    pub fn completion_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed as f64 / self.total as f64
        }
    }
}

/// Messages from workers to the supervising driver.
enum Msg {
    Done(usize, Vec<u8>),
    Failed(Quarantine),
}

/// Renders a panic payload (the `&str` or `String` message, when there
/// is one) for quarantine reports and enriched panic rethrows.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(0..total)` under supervision: streaming checkpoints, retry
/// plus quarantine on panics, anytime degradation on deadline or
/// shutdown. Payloads are the caller's own encoded partial results
/// (see [`crate::codec`]).
///
/// Fault-free runs are bit-identical to a plain indexed map at any
/// thread count.
///
/// # Errors
///
/// Checkpoint I/O and resume validation failures ([`SnapshotError`]);
/// worker panics are *handled* (retried/quarantined), never returned.
pub fn run_items<F>(config: &RunConfig, total: usize, f: F) -> Result<RunOutcome, SnapshotError>
where
    F: Fn(usize) -> Vec<u8> + Sync,
{
    let mut payloads: Vec<Option<Vec<u8>>> = vec![None; total];
    let mut resumed_items = 0;

    // Resume: prefill payloads from the snapshot, if one exists.
    let mut snapshot = Snapshot::new(config.scenario_hash);
    if let Some(spec) = &config.checkpoint {
        if spec.resume && spec.path.exists() {
            let prior = Snapshot::load_expecting(&spec.path, config.scenario_hash)?;
            for (name, payload) in prior.sections() {
                if let Some(i) = name
                    .strip_prefix("item/")
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&i| i < total)
                {
                    payloads[i] = Some(payload.to_vec());
                    snapshot.put(name, payload.to_vec());
                    resumed_items += 1;
                }
            }
        }
    }

    let done: Vec<bool> = payloads.iter().map(Option::is_some).collect();
    let threads = config.threads.max(1);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Msg>();

    let mut quarantined: Vec<Quarantine> = Vec::new();
    let mut completed_since_ckpt = 0usize;
    let mut stopped: Option<DegradeReason> = None;
    let mut ckpt_error: Option<SnapshotError> = None;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let stop = &stop;
            let done = &done;
            let f = &f;
            let retry = config.retry;
            let deadline = config.deadline;
            let shutdown = config.shutdown.clone();
            scope.spawn(move || {
                loop {
                    // Claim-time degradation check: the driver's strided
                    // poll alone would let fast items race past an
                    // expired deadline, so each worker re-checks before
                    // claiming new work.
                    if stop.load(Ordering::Acquire) || shutdown.requested() || deadline.expired() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    if done[i] {
                        continue;
                    }
                    let mut attempt = 0usize;
                    loop {
                        attempt += 1;
                        // Crash-injection site inside the supervised
                        // closure: a `panic` injection unwinds like a
                        // fault in the item itself and exercises the
                        // retry path; an `exit` simulates a kill.
                        match catch_unwind(AssertUnwindSafe(|| {
                            crate::crash::crash_point("worker_item");
                            f(i)
                        })) {
                            Ok(payload) => {
                                let _ = tx.send(Msg::Done(i, payload));
                                break;
                            }
                            Err(panic) => {
                                if attempt > retry.max_retries {
                                    let _ = tx.send(Msg::Failed(Quarantine {
                                        item: i,
                                        attempts: attempt,
                                        message: panic_message(panic.as_ref()),
                                    }));
                                    break;
                                }
                                let backoff = retry.backoff(attempt);
                                if !backoff.is_zero() {
                                    std::thread::sleep(backoff);
                                }
                            }
                        }
                    }
                }
            });
        }
        drop(tx);

        // Driver: collect results, checkpoint on cadence, watch the
        // deadline and the shutdown flag. Exits when every worker has
        // hung up (all items resolved, or dispatch was stopped).
        loop {
            match rx.recv_timeout(DRIVER_POLL) {
                Ok(Msg::Done(i, payload)) => {
                    snapshot.put(&format!("item/{i}"), payload.clone());
                    payloads[i] = Some(payload);
                    completed_since_ckpt += 1;
                    if let Some(spec) = &config.checkpoint {
                        if spec.cadence > 0
                            && completed_since_ckpt >= spec.cadence
                            && ckpt_error.is_none()
                        {
                            if let Err(e) = snapshot.write_atomic(&spec.path) {
                                ckpt_error = Some(e);
                                stop.store(true, Ordering::Release);
                            }
                            completed_since_ckpt = 0;
                        }
                    }
                }
                Ok(Msg::Failed(q)) => quarantined.push(q),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            if stopped.is_none() {
                if config.shutdown.requested() {
                    stopped = Some(DegradeReason::Shutdown);
                } else if config.deadline.expired() {
                    stopped = Some(DegradeReason::Deadline);
                }
                if stopped.is_some() {
                    stop.store(true, Ordering::Release);
                }
            }
        }
    });

    // Workers self-stop at claim time; if they all hung up before the
    // driver's next poll observed the cause, latch it now so the
    // outcome still reports why the run degraded.
    if stopped.is_none() {
        if config.shutdown.requested() {
            stopped = Some(DegradeReason::Shutdown);
        } else if config.deadline.expired() {
            stopped = Some(DegradeReason::Deadline);
        }
    }

    if let Some(e) = ckpt_error {
        return Err(e);
    }

    // Final checkpoint: always published, so a completed (or degraded)
    // run resumes trivially.
    if let Some(spec) = &config.checkpoint {
        snapshot.write_atomic(&spec.path)?;
    }

    let completed = payloads.iter().filter(|p| p.is_some()).count();
    quarantined.sort_by_key(|q| q.item);
    // "Degraded" means work was left undispatched, not merely that the
    // stop flag raced with the last item finishing.
    let degraded = stopped.is_some() && completed + quarantined.len() < total;
    Ok(RunOutcome {
        payloads,
        degraded,
        degrade_reason: if degraded { stopped } else { None },
        completed,
        total,
        quarantined,
        resumed_items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn temp_ckpt(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eagleeye_runner_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn payload_for(i: usize) -> Vec<u8> {
        // A payload that depends on the index in a recognizable way.
        (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .to_le_bytes()
            .to_vec()
    }

    #[test]
    fn fault_free_run_is_bit_identical_across_thread_counts() {
        let baseline: Vec<Option<Vec<u8>>> = (0..37).map(|i| Some(payload_for(i))).collect();
        for threads in [1, 2, 4, 8] {
            let config = RunConfig::new(0xFEED, threads);
            let out = run_items(&config, 37, payload_for).unwrap();
            assert_eq!(out.payloads, baseline, "threads={threads}");
            assert!(!out.degraded);
            assert_eq!(out.completed, 37);
            assert_eq!(out.resumed_items, 0);
            assert!(out.quarantined.is_empty());
            assert_eq!(out.completion_fraction(), 1.0);
        }
    }

    #[test]
    fn checkpoint_resume_skips_completed_items() {
        let path = temp_ckpt("resume.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut config = RunConfig::new(0xBEEF, 3);
        config.checkpoint = Some(CheckpointSpec::new(&path, 4));

        let first = run_items(&config, 20, payload_for).unwrap();
        assert_eq!(first.completed, 20);
        assert!(path.exists());

        // Second run resumes everything: the closure must never fire.
        let calls = AtomicU64::new(0);
        let second = run_items(&config, 20, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            payload_for(i)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(second.resumed_items, 20);
        assert_eq!(second.payloads, first.payloads);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_checkpoint_resumes_only_missing_items() {
        let path = temp_ckpt("partial.ckpt");
        let _ = std::fs::remove_file(&path);
        // Hand-build a checkpoint holding items 0, 3, 7.
        let mut snap = Snapshot::new(0xC0FFEE);
        for i in [0usize, 3, 7] {
            snap.put(&format!("item/{i}"), payload_for(i));
        }
        snap.write_atomic(&path).unwrap();

        let mut config = RunConfig::new(0xC0FFEE, 2);
        config.checkpoint = Some(CheckpointSpec::new(&path, 0));
        let fresh = std::sync::Mutex::new(Vec::new());
        let out = run_items(&config, 10, |i| {
            fresh.lock().unwrap().push(i);
            payload_for(i)
        })
        .unwrap();
        assert_eq!(out.resumed_items, 3);
        assert_eq!(out.completed, 10);
        let mut computed = fresh.into_inner().unwrap();
        computed.sort_unstable();
        assert_eq!(computed, vec![1, 2, 4, 5, 6, 8, 9]);
        // Result identical to a cold run.
        let expected: Vec<Option<Vec<u8>>> = (0..10).map(|i| Some(payload_for(i))).collect();
        assert_eq!(out.payloads, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_scenario_checkpoint_is_rejected() {
        let path = temp_ckpt("scenario.ckpt");
        let _ = std::fs::remove_file(&path);
        Snapshot::new(111).write_atomic(&path).unwrap();
        let mut config = RunConfig::new(222, 1);
        config.checkpoint = Some(CheckpointSpec::new(&path, 0));
        assert!(matches!(
            run_items(&config, 3, payload_for),
            Err(SnapshotError::ScenarioMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_item_is_retried_then_succeeds() {
        let fails = AtomicU64::new(0);
        let mut config = RunConfig::new(1, 2);
        config.retry = RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        };
        let out = run_items(&config, 8, |i| {
            if i == 5 && fails.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient failure on item 5");
            }
            payload_for(i)
        })
        .unwrap();
        assert_eq!(out.completed, 8);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.payloads[5], Some(payload_for(5)));
    }

    #[test]
    fn deterministic_failure_is_quarantined_not_fatal() {
        let mut config = RunConfig::new(1, 3);
        config.retry = RetryPolicy {
            max_retries: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        };
        let out = run_items(&config, 10, |i| {
            if i == 4 {
                panic!("deterministic failure on item 4");
            }
            payload_for(i)
        })
        .unwrap();
        assert_eq!(out.completed, 9);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].item, 4);
        assert_eq!(out.quarantined[0].attempts, 2);
        assert!(out.quarantined[0].message.contains("item 4"));
        assert!(out.payloads[4].is_none());
        assert!(!out.degraded, "quarantine is not degradation");
    }

    #[test]
    fn expired_deadline_degrades_instead_of_aborting() {
        let mut config = RunConfig::new(1, 2);
        config.deadline = Deadline::after(Duration::ZERO);
        // Slow items so the driver observes the deadline before the
        // workers drain the queue.
        let out = run_items(&config, 64, |i| {
            std::thread::sleep(Duration::from_millis(20));
            payload_for(i)
        })
        .unwrap();
        assert!(out.degraded);
        assert_eq!(out.degrade_reason, Some(DegradeReason::Deadline));
        assert!(out.completed < 64);
        assert!(out.completion_fraction() < 1.0);
        // Whatever did complete is correct.
        for (i, p) in out.payloads.iter().enumerate() {
            if let Some(p) = p {
                assert_eq!(*p, payload_for(i));
            }
        }
    }

    #[test]
    fn shutdown_request_stops_dispatch_and_checkpoints() {
        let path = temp_ckpt("shutdown.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut config = RunConfig::new(0xD00D, 2);
        config.checkpoint = Some(CheckpointSpec::new(&path, 1));
        let shutdown = config.shutdown.clone();
        let out = run_items(&config, 64, |i| {
            if i == 3 {
                shutdown.request();
            }
            std::thread::sleep(Duration::from_millis(10));
            payload_for(i)
        })
        .unwrap();
        assert!(out.degraded);
        assert_eq!(out.degrade_reason, Some(DegradeReason::Shutdown));
        assert!(out.completed < 64);
        // The final checkpoint holds exactly the completed items, so a
        // resumed run finishes the rest and matches a cold run.
        let snap = Snapshot::load_expecting(&path, 0xD00D).unwrap();
        assert_eq!(snap.len(), out.completed);
        let mut resume_cfg = RunConfig::new(0xD00D, 4);
        resume_cfg.checkpoint = Some(CheckpointSpec::new(&path, 8));
        let resumed = run_items(&resume_cfg, 64, payload_for).unwrap();
        assert_eq!(resumed.resumed_items, out.completed);
        assert_eq!(resumed.completed, 64);
        let cold: Vec<Option<Vec<u8>>> = (0..64).map(|i| Some(payload_for(i))).collect();
        assert_eq!(resumed.payloads, cold);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_items_complete_immediately() {
        let out = run_items(&RunConfig::new(1, 4), 0, payload_for).unwrap();
        assert_eq!(out.total, 0);
        assert_eq!(out.completed, 0);
        assert!(!out.degraded);
        assert_eq!(out.completion_fraction(), 1.0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let retry = RetryPolicy {
            max_retries: 10,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
        };
        assert_eq!(retry.backoff(1), Duration::from_millis(10));
        assert_eq!(retry.backoff(2), Duration::from_millis(20));
        assert_eq!(retry.backoff(3), Duration::from_millis(40));
        assert_eq!(retry.backoff(5), Duration::from_millis(100));
        assert_eq!(retry.backoff(60), Duration::from_millis(100));
    }
}
