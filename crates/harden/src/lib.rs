//! Crash-safe long-run execution for the EagleEye pipeline.
//!
//! The paper's full-scale 24 h sweeps are exactly the workloads the
//! rest of this workspace cannot afford to lose: a single worker panic
//! aborts an evaluation with all partial work discarded, and an
//! interrupted run leaves nothing behind but a log to reconstruct CSVs
//! from (see EXPERIMENTS.md, FIG11A note). This crate is the run layer
//! that makes the *computation* fault-tolerant, the way `sim::fault` +
//! `core::schedule::resilient` made the *constellation* fault-tolerant:
//!
//! * [`snapshot`] — a versioned, CRC-guarded, atomically written
//!   (`tmp` + `fsync` + `rename`) snapshot of pipeline progress, keyed
//!   by a scenario hash so resuming a *different* scenario is rejected;
//! * [`watchdog`] — a monotonic deadline budget plus a cooperative
//!   SIGTERM-style [`ShutdownFlag`], with the strided polling
//!   discipline already used by `abb`/`simplex` generalized into
//!   [`DeadlinePoll`];
//! * [`crash`] — the `EAGLEEYE_CRASH=<spec>` test-only fault-injection
//!   hook that panics or exits at named sites, so the kill-and-resume
//!   path is exercised by real process deaths in CI;
//! * [`runner`] — a streaming checkpointed executor: work items flow
//!   back to a supervising driver as they finish, checkpoints are
//!   written on a completion cadence, per-item panics are retried with
//!   capped backoff and quarantined when deterministic, and a blown
//!   deadline degrades the run (completed partials are kept and the
//!   result is marked degraded) instead of aborting it.
//!
//! Everything here is `std`-only and dependency-free, like `exec` and
//! `obs`, so any crate in the workspace can depend on it without
//! cycles. See DESIGN.md §12 for the snapshot format, watchdog states,
//! and retry policy.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod crash;
pub mod runner;
pub mod snapshot;
pub mod watchdog;

mod crc;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use crash::{crash_point, CrashMode, CrashPlan};
pub use crc::crc32;
pub use runner::{
    panic_message, run_items, CheckpointSpec, DegradeReason, Quarantine, RetryPolicy, RunConfig,
    RunOutcome,
};
pub use snapshot::{ScenarioHasher, Snapshot, SnapshotError};
pub use watchdog::{Deadline, DeadlinePoll, ShutdownFlag};
