//! Dependency-free parallel execution layer for the EagleEye pipeline.
//!
//! The paper's evaluation is embarrassingly parallel at two levels: every
//! sweep point of a figure is an independent
//! `CoverageEvaluator::evaluate` call, and within one evaluation every
//! leader group schedules its followers independently. This crate is the
//! scaling substrate for both, built purely on [`std::thread::scope`] and
//! atomics — the workspace is deliberately offline, so no `rayon`.
//!
//! # Determinism
//!
//! Work items are self-scheduled (workers race on an atomic cursor — the
//! cheap cousin of work stealing), but **results are indexed by input
//! position**, so the output `Vec` is bit-identical at any thread count,
//! including `threads = 1` which runs inline without spawning. Callers
//! must only supply closures that are themselves pure functions of
//! `(index, item)`; every closure in this workspace derives its
//! randomness from seeded counter-based generators, so that holds.
//!
//! # Example
//!
//! ```
//! use eagleeye_exec::ExecPool;
//!
//! let pool = ExecPool::new(4);
//! let squares = pool.par_map(&[1, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use eagleeye_harden::{crash_point, panic_message, Quarantine, RetryPolicy};
use eagleeye_obs::Metrics;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process (at least 1).
///
/// Falls back to 1 when the platform cannot report parallelism (e.g.
/// restricted sandboxes).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `chunks` contiguous, near-equal,
/// non-empty ranges covering `0..len` exactly, in order.
///
/// The partition is a pure function of `(len, chunks)` — callers that
/// fan work items out over the ranges and merge results back in range
/// order get output independent of how many workers actually ran (the
/// deterministic frame-range decomposition of DESIGN.md §13). Returns
/// an empty vector when `len == 0`; `chunks` is clamped to at least 1.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs one work item, rethrowing any panic with the worker and item
/// index prepended. A bare `resume_unwind` loses all context about
/// *which* item of *which* worker died — useless in a 24 h sweep log.
fn run_enriched<R>(worker: usize, item: usize, f: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => resume_unwind(Box::new(format!(
            "worker {worker} item {item} panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

/// Runs one work item under supervision: panics are caught, retried
/// per `retry` with capped backoff, and converted into a [`Quarantine`]
/// when they persist.
fn run_supervised<R>(retry: &RetryPolicy, item: usize, f: impl Fn() -> R) -> Result<R, Quarantine> {
    let mut attempt = 0usize;
    loop {
        attempt += 1;
        // Crash-injection site shared with the harden runner: the
        // supervised unit of work (see `eagleeye_harden::crash`).
        crash_point("worker_item");
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                if attempt > retry.max_retries {
                    return Err(Quarantine {
                        item,
                        attempts: attempt,
                        message: panic_message(payload.as_ref()),
                    });
                }
                let backoff = retry.backoff(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Result of [`ExecPool::par_map_supervised`]: per-item results in
/// input order, with quarantined items reported instead of computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervised<R> {
    /// `Some(result)` per item in input order; `None` for quarantined
    /// items.
    pub results: Vec<Option<R>>,
    /// Items whose closure kept panicking after all retries, sorted by
    /// item index.
    pub quarantined: Vec<Quarantine>,
}

impl<R> Supervised<R> {
    /// True when every item produced a result.
    pub fn all_ok(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// A scoped worker pool with deterministic result ordering.
///
/// The pool holds no threads between calls: each `par_*` invocation
/// spawns scoped workers that self-schedule items off a shared atomic
/// cursor and exit when the input is drained. For the coarse work items
/// this workspace parallelizes (whole coverage evaluations, per-group
/// frame loops), spawn cost is noise; what matters is that results come
/// back ordered by input index regardless of completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

impl Default for ExecPool {
    /// A pool sized to [`available_parallelism`].
    fn default() -> Self {
        ExecPool::new(0)
    }
}

impl ExecPool {
    /// Creates a pool with `threads` workers; `0` means
    /// [`available_parallelism`].
    pub fn new(threads: usize) -> Self {
        ExecPool {
            threads: if threads == 0 {
                available_parallelism()
            } else {
                threads
            },
        }
    }

    /// Configured worker count (never 0).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, item)` to every item, returning results in
    /// input order. Runs inline when one worker suffices.
    ///
    /// # Panics
    ///
    /// A panic in `f` is propagated to the caller after all workers
    /// stop.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, x)| run_enriched(0, i, || f(i, x)))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, run_enriched(w, i, || f(i, &items[i]))));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });

        // Reassemble in input order: position-indexed, not
        // completion-ordered.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in buckets.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| match s {
                Some(r) => r,
                // The strided scheduler assigns every index to exactly
                // one worker, so every slot is filled.
                None => unreachable!("every index scheduled exactly once"),
            })
            .collect()
    }

    /// Supervised [`ExecPool::par_map`]: a panic in `f` no longer
    /// aborts the whole batch. Each item's panics are caught
    /// (`catch_unwind`), retried per `retry` with capped exponential
    /// backoff, and — when they persist — the item is quarantined
    /// (reported in the result, not fatal) while every other item
    /// completes normally.
    ///
    /// When nothing fails the results are **bit-identical** to
    /// [`ExecPool::par_map`] (same position-indexed ordering, same
    /// values) at any thread count; supervision only adds a
    /// never-taken branch per item.
    pub fn par_map_supervised<T, R, F>(
        &self,
        items: &[T],
        retry: &RetryPolicy,
        f: F,
    ) -> Supervised<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        let attempts: Vec<(usize, Result<R, Quarantine>)> = if workers <= 1 {
            items
                .iter()
                .enumerate()
                .map(|(i, x)| (i, run_supervised(retry, i, || f(i, x))))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let f = &f;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= items.len() {
                                    break;
                                }
                                out.push((i, run_supervised(retry, i, || f(i, &items[i]))));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            })
        };

        let mut slots: Vec<Option<Result<R, Quarantine>>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in attempts {
            slots[i] = Some(r);
        }
        let mut results = Vec::with_capacity(items.len());
        let mut quarantined = Vec::new();
        // Slot order doubles as the sort by item index.
        for slot in slots {
            // eagleeye-lint: allow(no-unwrap): the claim loop above assigns every index in 0..len exactly once, so no slot can be None
            match slot.expect("every index scheduled exactly once") {
                Ok(r) => results.push(Some(r)),
                Err(q) => {
                    results.push(None);
                    quarantined.push(q);
                }
            }
        }
        Supervised {
            results,
            quarantined,
        }
    }

    /// Fallible [`ExecPool::par_map`]: applies `f` to every item and
    /// returns all results, or the error of the **lowest-indexed**
    /// failing item.
    ///
    /// All items are evaluated even after a failure so the returned
    /// error does not depend on scheduling order (determinism over
    /// early-exit; errors are exceptional in this workspace).
    ///
    /// # Errors
    ///
    /// Returns the first error by input index.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let mut ok = Vec::with_capacity(items.len());
        for r in self.par_map(items, f) {
            ok.push(r?);
        }
        Ok(ok)
    }

    /// [`ExecPool::par_map`] with deterministic metrics collection:
    /// every work item gets a private [`Metrics::fork`] (so workers
    /// never contend on the shared registry), and the forks are
    /// absorbed back into `metrics` **in input order** after the pool
    /// drains. Because registry merge is exactly associative and
    /// commutative, the absorbed totals are bit-identical at any
    /// thread count. When `metrics` is disabled the forks are free and
    /// this is [`ExecPool::par_map`] plus a few never-taken branches.
    ///
    /// Also records the pool shape under `exec/*`: `exec/par_maps`,
    /// `exec/items`, and the `exec/threads` max-gauge.
    ///
    /// # Panics
    ///
    /// A panic in `f` is propagated to the caller after all workers
    /// stop.
    pub fn par_map_observed<T, R, F>(&self, metrics: &Metrics, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &Metrics) -> R + Sync,
    {
        if metrics.is_enabled() {
            metrics.incr("exec/par_maps");
            metrics.add("exec/items", items.len() as u64);
            metrics.gauge_max("exec/threads", self.threads as f64);
        }
        let pairs = self.par_map(items, |i, x| {
            let fork = metrics.fork();
            let r = f(i, x, &fork);
            (r, fork)
        });
        let mut out = Vec::with_capacity(pairs.len());
        for (r, fork) in pairs {
            metrics.absorb(&fork);
            out.push(r);
        }
        out
    }

    /// Fallible [`ExecPool::par_map_observed`]: like
    /// [`ExecPool::try_par_map`], all items are evaluated and the
    /// lowest-indexed error is returned; every fork is absorbed in
    /// input order (even on failure, so the metrics of an errored run
    /// are deterministic too).
    ///
    /// # Errors
    ///
    /// Returns the first error by input index.
    pub fn try_par_map_observed<T, R, E, F>(
        &self,
        metrics: &Metrics,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T, &Metrics) -> Result<R, E> + Sync,
    {
        let mut err: Option<E> = None;
        let mut ok = Vec::with_capacity(items.len());
        for r in self.par_map_observed(metrics, items, f) {
            match r {
                Ok(v) => ok.push(v),
                Err(e) => {
                    if err.is_none() {
                        err = Some(e);
                    }
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(ok),
        }
    }

    /// Applies `f(chunk_index, chunk)` to consecutive chunks of at most
    /// `chunk_size` items, returning per-chunk results in chunk order.
    /// Use instead of [`ExecPool::par_map`] when items are so cheap that
    /// per-item cursor traffic would dominate.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; a panic in `f` is propagated.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.par_map(&chunks, |i, c| f(i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(ExecPool::new(0).threads(), available_parallelism());
        assert!(ExecPool::default().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ExecPool::new(threads).par_map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items = vec![10usize; 100];
        let got = ExecPool::new(4).par_map(&items, |i, &x| i + x);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i + 10);
        }
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let got: Vec<i32> = ExecPool::new(8).par_map(&[] as &[i32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 1000];
        ExecPool::new(7).par_map(&items, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            let r: Result<Vec<usize>, usize> = ExecPool::new(threads)
                .try_par_map(&items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 3, "threads={threads}");
        }
        let ok: Result<Vec<usize>, ()> = ExecPool::new(4).try_par_map(&items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[50], 100);
    }

    #[test]
    fn par_chunks_sees_every_chunk_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let sums =
            ExecPool::new(4).par_chunks(&items, 10, |ci, c| (ci, c.iter().sum::<usize>(), c.len()));
        assert_eq!(sums.len(), 11);
        assert_eq!(sums[0], (0, 45, 10));
        assert_eq!(sums[10].2, 3); // tail chunk
        let total: usize = sums.iter().map(|&(_, s, _)| s).sum();
        assert_eq!(total, 103 * 102 / 2);
    }

    #[test]
    fn observed_map_merges_deterministically_across_thread_counts() {
        let items: Vec<u64> = (0..97).collect();
        let run = |threads: usize| {
            let metrics = Metrics::enabled();
            let got = ExecPool::new(threads).par_map_observed(&metrics, &items, |_, &x, m| {
                m.add("work/value_sum", x);
                m.incr("work/calls");
                m.observe("work/values", x, &[16, 48, 96]);
                x * 2
            });
            (got, metrics.snapshot())
        };
        let (base_out, base_snap) = run(1);
        assert_eq!(base_snap.counter("work/calls"), 97);
        assert_eq!(base_snap.counter("work/value_sum"), 96 * 97 / 2);
        for threads in [2, 4, 8] {
            let (out, snap) = run(threads);
            assert_eq!(out, base_out, "threads={threads}");
            // Counters and histograms are bit-identical at any thread
            // count; only the pool-shape gauge (`exec/threads`)
            // legitimately differs between runs.
            let counters: Vec<_> = snap.counters().collect();
            assert_eq!(
                counters,
                base_snap.counters().collect::<Vec<_>>(),
                "threads={threads}"
            );
            let hists: Vec<_> = snap.histograms().collect();
            assert_eq!(
                hists,
                base_snap.histograms().collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(snap.gauge("exec/threads"), Some(threads as f64));
        }
    }

    #[test]
    fn observed_map_records_pool_shape() {
        let metrics = Metrics::enabled();
        ExecPool::new(3).par_map_observed(&metrics, &[1, 2, 3, 4], |_, &x: &i32, _| x);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("exec/par_maps"), 1);
        assert_eq!(snap.counter("exec/items"), 4);
        assert_eq!(snap.gauge("exec/threads"), Some(3.0));
    }

    #[test]
    fn observed_map_with_disabled_metrics_is_plain_par_map() {
        let metrics = Metrics::disabled();
        let got = ExecPool::new(4).par_map_observed(&metrics, &[1u64, 2, 3], |_, &x, m| {
            m.incr("ignored");
            x + 1
        });
        assert_eq!(got, vec![2, 3, 4]);
        assert!(metrics.snapshot().is_empty());
    }

    #[test]
    fn try_observed_map_keeps_metrics_on_error() {
        let metrics = Metrics::enabled();
        let items: Vec<usize> = (0..50).collect();
        let r: Result<Vec<usize>, usize> =
            ExecPool::new(4).try_par_map_observed(&metrics, &items, |_, &x, m| {
                m.incr("attempts");
                if x % 9 == 5 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
        assert_eq!(r.unwrap_err(), 5);
        // All items were evaluated and all forks absorbed.
        assert_eq!(metrics.snapshot().counter("attempts"), 50);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        ExecPool::new(4).par_map(&items, |_, &x| {
            if x == 11 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "item 11 panicked: boom")]
    fn propagated_panics_carry_item_context() {
        let items: Vec<usize> = (0..16).collect();
        ExecPool::new(4).par_map(&items, |_, &x| {
            if x == 11 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "worker 0 item 3 panicked: inline boom")]
    fn inline_panics_carry_item_context_too() {
        let items: Vec<usize> = (0..8).collect();
        ExecPool::new(1).par_map(&items, |_, &x| {
            if x == 3 {
                panic!("inline boom");
            }
            x
        });
    }

    #[test]
    fn supervised_map_with_zero_faults_matches_par_map() {
        let items: Vec<usize> = (0..113).collect();
        let f = |i: usize, x: &usize| i * 31 + x * 7;
        let plain = ExecPool::new(1).par_map(&items, f);
        for threads in [1, 2, 4, 8] {
            let sup = ExecPool::new(threads).par_map_supervised(&items, &RetryPolicy::default(), f);
            assert!(sup.all_ok(), "threads={threads}");
            let unwrapped: Vec<usize> = sup.results.into_iter().map(Option::unwrap).collect();
            assert_eq!(unwrapped, plain, "threads={threads}");
        }
    }

    #[test]
    fn supervised_map_retries_transient_failures() {
        let failures = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        let retry = RetryPolicy {
            max_retries: 3,
            backoff_base: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        };
        let sup = ExecPool::new(4).par_map_supervised(&items, &retry, |_, &x| {
            if x == 20 && failures.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            x * 2
        });
        assert!(sup.all_ok());
        assert_eq!(sup.results[20], Some(40));
    }

    #[test]
    fn supervised_map_quarantines_deterministic_failures() {
        let items: Vec<usize> = (0..32).collect();
        let retry = RetryPolicy {
            max_retries: 1,
            backoff_base: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        };
        for threads in [1, 4] {
            let sup = ExecPool::new(threads).par_map_supervised(&items, &retry, |_, &x| {
                if x % 13 == 7 {
                    panic!("bad item {x}");
                }
                x
            });
            assert!(!sup.all_ok(), "threads={threads}");
            let bad: Vec<usize> = sup.quarantined.iter().map(|q| q.item).collect();
            assert_eq!(bad, vec![7, 20], "threads={threads}");
            for q in &sup.quarantined {
                assert_eq!(q.attempts, 2);
                assert!(q.message.contains("bad item"));
                assert!(sup.results[q.item].is_none());
            }
            // Every non-quarantined item still completed.
            assert_eq!(sup.results.iter().filter(|r| r.is_some()).count(), 30);
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(5, 1), vec![0..5]);
        // More chunks than items clamps to one item per chunk.
        assert_eq!(chunk_ranges(3, 10), vec![0..1, 1..2, 2..3]);
        // Remainder spreads over the leading chunks, largest first.
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        // chunks == 0 behaves as one chunk.
        assert_eq!(chunk_ranges(7, 0), vec![0..7]);
        for (len, chunks) in [(1, 1), (17, 4), (64, 16), (100, 7), (5760, 16)] {
            let ranges = chunk_ranges(len, chunks);
            // Contiguous cover of 0..len with no gaps or overlaps, and
            // chunk sizes never differ by more than one — the property
            // the deterministic frame-range merge relies on.
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(len));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "len={len} chunks={chunks}");
            }
            let min = ranges.iter().map(|r| r.len()).min().unwrap_or(0);
            let max = ranges.iter().map(|r| r.len()).max().unwrap_or(0);
            assert!(max - min <= 1, "len={len} chunks={chunks}");
        }
    }
}
