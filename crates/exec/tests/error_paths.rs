//! Error-path coverage for the parallel execution layer: deterministic
//! `try_par_map` short-circuit ordering under contention, panic
//! propagation without deadlock, and pool reuse after both.

use eagleeye_exec::ExecPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 8, 32];

#[test]
fn try_par_map_error_at_index_zero_wins() {
    let items: Vec<usize> = (0..200).collect();
    for threads in THREAD_COUNTS {
        let r: Result<Vec<usize>, usize> =
            ExecPool::new(threads)
                .try_par_map(&items, |_, &x| if x % 50 == 0 { Err(x) } else { Ok(x) });
        assert_eq!(r.unwrap_err(), 0, "threads={threads}");
    }
}

#[test]
fn try_par_map_error_at_last_index_is_still_found() {
    let items: Vec<usize> = (0..200).collect();
    for threads in THREAD_COUNTS {
        let r: Result<Vec<usize>, usize> =
            ExecPool::new(threads)
                .try_par_map(&items, |_, &x| if x == 199 { Err(x) } else { Ok(x) });
        assert_eq!(r.unwrap_err(), 199, "threads={threads}");
    }
}

#[test]
fn try_par_map_reports_lowest_of_many_errors_regardless_of_completion_order() {
    // Later indices finish *first* (earlier items spin longer), so a
    // completion-ordered implementation would report a high index. The
    // contract is lowest input index, at every thread count.
    let items: Vec<usize> = (0..64).collect();
    for threads in THREAD_COUNTS {
        let r: Result<Vec<usize>, usize> = ExecPool::new(threads).try_par_map(&items, |_, &x| {
            for _ in 0..(64 - x) * 500 {
                std::hint::black_box(x);
            }
            if x % 2 == 1 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(r.unwrap_err(), 1, "threads={threads}");
    }
}

#[test]
fn try_par_map_all_errors_returns_index_zero_error() {
    let items: Vec<u8> = vec![0; 33];
    for threads in THREAD_COUNTS {
        let r: Result<Vec<()>, usize> =
            ExecPool::new(threads).try_par_map(&items, |i, _| Err::<(), _>(i));
        assert_eq!(r.unwrap_err(), 0, "threads={threads}");
    }
}

#[test]
fn try_par_map_still_evaluates_every_item_after_a_failure() {
    // The documented no-early-exit contract: errors do not suppress
    // the evaluation of other items.
    let items: Vec<usize> = (0..150).collect();
    for threads in [2, 8] {
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<usize>, usize> = ExecPool::new(threads).try_par_map(&items, |_, &x| {
            executed.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(r.unwrap_err(), 3);
        assert_eq!(
            executed.load(Ordering::Relaxed),
            items.len(),
            "threads={threads}"
        );
    }
}

#[test]
fn panic_in_worker_propagates_and_does_not_deadlock() {
    let items: Vec<usize> = (0..64).collect();
    for threads in THREAD_COUNTS {
        let pool = ExecPool::new(threads);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |_, &x| {
                if x == 40 {
                    panic!("worker exploded on {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("worker exploded"), "threads={threads}: {msg}");
    }
}

#[test]
fn pool_is_reusable_after_a_worker_panic() {
    let pool = ExecPool::new(4);
    let items: Vec<usize> = (0..32).collect();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map(&items, |_, &x| {
            if x == 7 {
                panic!("first use fails");
            }
            x
        })
    }))
    .expect_err("panic propagates");
    // The pool holds no poisoned state — the next call works normally.
    let doubled = pool.par_map(&items, |_, &x| x * 2);
    assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
}

#[test]
fn panic_in_try_par_map_closure_propagates() {
    let items: Vec<usize> = (0..16).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        ExecPool::new(4).try_par_map(&items, |_, &x| {
            if x == 5 {
                panic!("fallible closure panicked");
            }
            Ok::<_, ()>(x)
        })
    }));
    assert!(result.is_err());
}

#[test]
#[should_panic(expected = "chunk_size must be positive")]
fn par_chunks_rejects_zero_chunk_size() {
    ExecPool::new(2).par_chunks(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
}
