//! Property suite for metric recording through the worker pool: both
//! the fork/absorb discipline of `par_map_observed` and concurrent
//! recording through a shared handle lose no updates at any thread
//! count.

use eagleeye_check::{check_cases, prop_assert, prop_assert_eq};
use eagleeye_check::{u64_range, usize_range, vec_of};
use eagleeye_exec::ExecPool;
use eagleeye_obs::Metrics;

#[test]
fn forked_recording_through_the_pool_loses_no_updates() {
    check_cases(
        48,
        "exec_forked_counts",
        (usize_range(1, 9), vec_of(u64_range(0, 200), 1, 33)),
        |(threads, increments)| {
            let pool = ExecPool::new(*threads);
            let metrics = Metrics::enabled();
            let order = pool.par_map_observed(&metrics, increments, |i, &n, m| {
                for _ in 0..n {
                    m.incr("prop/hits");
                }
                m.observe("prop/n", n, &[4, 64]);
                i
            });
            prop_assert_eq!(order, (0..increments.len()).collect::<Vec<_>>());
            let snap = metrics.snapshot();
            prop_assert_eq!(snap.counter("prop/hits"), increments.iter().sum::<u64>());
            let h = snap.histogram("prop/n");
            prop_assert!(h.is_some(), "histogram must survive absorb");
            let h = h.unwrap();
            prop_assert_eq!(h.count(), increments.len() as u64);
            prop_assert_eq!(h.sum(), u128::from(increments.iter().sum::<u64>()));
            Ok(())
        },
    );
}

#[test]
fn shared_handle_concurrent_increments_lose_no_updates() {
    check_cases(
        48,
        "exec_shared_counts",
        (usize_range(1, 9), vec_of(u64_range(0, 200), 1, 33)),
        |(threads, increments)| {
            let pool = ExecPool::new(*threads);
            let metrics = Metrics::enabled();
            pool.par_map(increments, |_, &n| {
                for _ in 0..n {
                    metrics.incr("prop/shared");
                }
            });
            prop_assert_eq!(
                metrics.snapshot().counter("prop/shared"),
                increments.iter().sum::<u64>()
            );
            Ok(())
        },
    );
}
